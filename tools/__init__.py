"""Repo tooling namespace (``python -m tools.repolint``)."""
