"""Per-package coverage ratchet (the ``repolint``-baseline pattern).

Reads a ``coverage.json`` -- written by ``pytest-cov`` in CI or by
:mod:`tools.covlite` locally -- aggregates line coverage per source
package, and gates each against the floors recorded in
``tools/coverage_baseline.json``.  Floors are *shrink-only debt*: they
were seeded from measured values and ``--update`` can only raise them
(a coverage regression below a floor fails; new code that lifts a
package's coverage becomes the new floor on the next update, so the
gap can never silently widen).

    python -m tools.check_coverage --coverage coverage.json
    python -m tools.check_coverage --coverage coverage.json --update

Baseline schema::

    {"version": 1, "floors": {"src/repro/distributed": 90.0, ...}}

A package key matches every file whose repo-relative path starts with
``<key>/`` (or equals ``<key>.py``); percent is aggregated over covered
and total statements, not averaged over files, so one large uncovered
module cannot hide behind many small covered ones.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

BASELINE = os.path.join(os.path.dirname(__file__), "coverage_baseline.json")

# Below-floor slack: measured percent may sit this far under the floor
# before the gate trips, absorbing line-table drift between Python
# versions (the floors were measured on one minor version).
TOLERANCE = 0.05


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != 1 or "floors" not in payload:
        raise SystemExit(f"{path}: not a version-1 coverage baseline")
    return payload


def package_percents(
    coverage: dict, packages: "list[str]"
) -> dict[str, tuple[float, int, int]]:
    """``{package: (percent, covered, statements)}`` aggregated by prefix."""
    stats = {package: [0, 0] for package in packages}
    for path, entry in coverage.get("files", {}).items():
        normalized = path.replace(os.sep, "/")
        summary = entry["summary"]
        for package in packages:
            if normalized.startswith(package + "/") or normalized == package + ".py":
                stats[package][0] += summary["covered_lines"]
                stats[package][1] += summary["num_statements"]
    return {
        package: (
            (100.0 * covered / statements if statements else 100.0),
            covered,
            statements,
        )
        for package, (covered, statements) in stats.items()
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coverage", default="coverage.json")
    parser.add_argument("--baseline", default=BASELINE)
    parser.add_argument(
        "--update",
        action="store_true",
        help="raise floors to measured values (never lowers them)",
    )
    args = parser.parse_args(argv)

    with open(args.coverage, encoding="utf-8") as fh:
        coverage = json.load(fh)
    baseline = load_baseline(args.baseline)
    floors: dict[str, float] = baseline["floors"]

    measured = package_percents(coverage, list(floors))
    failures = []
    for package, floor in sorted(floors.items()):
        percent, covered, statements = measured[package]
        status = "ok" if percent + TOLERANCE >= floor else "FAIL"
        print(
            f"{status:<4} {package:<28} {percent:6.2f}% "
            f"({covered}/{statements} lines, floor {floor:.2f}%)"
        )
        if statements == 0:
            failures.append(f"{package}: no measured files (path mismatch?)")
        elif percent + TOLERANCE < floor:
            failures.append(
                f"{package}: {percent:.2f}% is below the {floor:.2f}% floor"
            )

    if args.update:
        raised = {
            package: max(floor, math.floor(measured[package][0] * 100) / 100)
            for package, floor in floors.items()
        }
        if raised != floors:
            baseline["floors"] = raised
            with open(args.baseline, "w", encoding="utf-8") as fh:
                json.dump(baseline, fh, indent=2)
                fh.write("\n")
            print(f"updated {args.baseline}")

    if failures:
        print("\ncoverage ratchet FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
