"""Finding records and reporters for the repo-lint engine.

A :class:`Finding` is one rule violation at one source location.  Findings
are identity-keyed on ``(rule, path, symbol, message)`` -- deliberately
*not* on the line number, so a baseline entry survives unrelated edits
that shift code up or down a file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``symbol`` is the dotted in-file scope (``Class.method`` or a bare
    function name; empty at module level), which keys baselines robustly
    against line drift.
    """

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""
    col: int = 0

    @property
    def key(self) -> str:
        """Stable identity used for baseline matching."""
        raw = f"{self.rule}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line human-readable form (``path:line: RLxxx message``)."""
        where = f"{self.path}:{self.line}"
        scope = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule} {self.message}{scope}"


@dataclass
class Report:
    """The result of one engine run, renderable as text or JSON."""

    suite: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no live findings, no engine errors)."""
        return not self.findings and not self.errors

    def to_json_dict(self) -> dict:
        """JSON-serializable report (the CI artifact shape)."""
        return {
            "suite": self.suite,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "errors": list(self.errors),
            "findings": [
                {**asdict(f), "key": f.key} for f in self.findings
            ],
        }

    def render_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule)
        )]
        lines.extend(f"error: {e}" for e in self.errors)
        lines.append(
            f"repolint[{self.suite}]: {len(self.findings)} finding(s) in "
            f"{self.files_checked} file(s) "
            f"({self.suppressed} suppressed, {self.baselined} baselined)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The JSON report as a string."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)
