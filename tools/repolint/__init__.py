"""repro-lint: AST-based invariant analyzer for this repository.

Four repo-specific rule families, each encoding an invariant that a
shipped bug once violated dynamically:

- **RL1xx lock discipline** -- guarded ``self._*`` state of lock-owning
  classes is only touched under ``with self._lock``.
- **RL2xx version discipline** -- in-place buffer writes reach
  ``Storage.bump_version()`` in the same function.
- **RL3xx determinism** -- no import-time entropy, ad-hoc default
  generators, kernel wall-clock reads, or unordered-set iteration.
- **RL4xx resource lifecycle** -- shm blocks and executors are visibly
  owned at their construction site.

Plus a documentation suite (``--suite docs``) and a ThreadSanitizer-lite
runtime mode (:mod:`tools.repolint.tsan`) that validates the RL1xx model
against real concurrent executions.
"""

from tools.repolint.engine import lint_source, run_code_suite
from tools.repolint.findings import Finding, Report

__all__ = ["Finding", "Report", "lint_source", "run_code_suite"]
