"""Per-line suppression comments (``# repolint: disable=RL101 <reason>``).

Suppressions are the analyzer's pressure valve for *intentional* rule
departures (a deliberately lock-free read, a seeded benchmark generator).
Every disable must name the rule(s) it silences and carry a non-empty
reason; a malformed disable is itself a finding (RL001), and a disable
that silences nothing is dead weight the triage should remove (RL002).

Two scopes:

- ``# repolint: disable=RL101,RL102 <reason>`` -- trailing or standalone
  comment; applies to findings on that source line (a standalone comment
  line also covers the line directly below it, so long statements can
  carry the disable above them).
- ``# repolint: disable-file=RL301 <reason>`` -- anywhere in the file;
  applies to every finding of that rule in the file.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from tools.repolint.findings import Finding

_DISABLE_RE = re.compile(
    r"#\s*repolint:\s*(?P<scope>disable|disable-file)=(?P<rules>[A-Z0-9,]+)"
    r"(?P<reason>[^#\n]*)"
)


def _comment_lines(source: str) -> dict[int, str]:
    """Line -> comment text for every *real* comment token.

    Tokenizing (instead of scanning raw lines) keeps ``disable=`` prose
    inside docstrings -- this module's own docstring included -- from
    parsing as a live suppression.  On tokenize errors (the engine
    reports the syntax error separately) fall back to raw lines so a
    broken file still surfaces its suppressions.
    """
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return dict(enumerate(source.splitlines(), start=1))
    return comments


@dataclass
class Suppression:
    """One parsed disable comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    file_scope: bool
    used: bool = False


@dataclass
class SuppressionSet:
    """All disable comments of one file, with use tracking."""

    path: str
    suppressions: list[Suppression] = field(default_factory=list)
    malformed: list[Finding] = field(default_factory=list)

    def matches(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` at ``line``, if any."""
        for supp in self.suppressions:
            if rule not in supp.rules:
                continue
            if supp.file_scope or supp.line in (line, line - 1):
                return supp
        return None

    def unused(self) -> list[Suppression]:
        """Suppressions that silenced nothing this run."""
        return [s for s in self.suppressions if not s.used]


def parse_suppressions(
    path: str, source: str, known_rules: frozenset[str]
) -> SuppressionSet:
    """Extract every disable comment in ``source``.

    Unknown rule ids and empty reasons are reported as RL001 findings
    rather than silently accepted -- a typo'd disable must not look like
    a working one.
    """
    result = SuppressionSet(path=path)
    for lineno, text in sorted(_comment_lines(source).items()):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        rules = tuple(r for r in match.group("rules").split(",") if r)
        reason = match.group("reason").strip()
        unknown = [r for r in rules if r not in known_rules]
        if unknown:
            result.malformed.append(
                Finding(
                    rule="RL001",
                    path=path,
                    line=lineno,
                    message=(
                        f"disable names unknown rule(s) {', '.join(unknown)}"
                    ),
                )
            )
            continue
        if not reason:
            result.malformed.append(
                Finding(
                    rule="RL001",
                    path=path,
                    line=lineno,
                    message=(
                        "disable comment must carry a reason: "
                        "# repolint: disable=RLxxx <why this is intentional>"
                    ),
                )
            )
            continue
        result.suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                reason=reason,
                file_scope=match.group("scope") == "disable-file",
            )
        )
    return result
