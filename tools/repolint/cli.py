"""Command-line entry point: ``python -m tools.repolint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.  The CI
gates are::

    python -m tools.repolint src/ --baseline tools/repolint/baseline.json
    python -m tools.repolint --suite docs --report docs-lint.json
"""

from __future__ import annotations

import argparse
import os
import sys

from tools.repolint.baseline import load_baseline, write_baseline
from tools.repolint.docs import run_docs_suite
from tools.repolint.engine import run_code_suite
from tools.repolint.findings import Report
from tools.repolint.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tools.repolint",
        description=(
            "AST-based invariant analyzer: lock discipline (RL1xx), "
            "Storage.version discipline (RL2xx), determinism (RL3xx), "
            "resource lifecycle (RL4xx), plus the docs suite."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--suite",
        choices=("code", "docs", "all"),
        default="code",
        help="which checks to run (default: code)",
    )
    parser.add_argument("--baseline", help="baseline JSON for the code suite")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current code-suite findings to --baseline (entries get "
            "empty justifications you must fill in) and exit"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report", help="also write the JSON report to this path"
    )
    parser.add_argument(
        "--root",
        default=os.getcwd(),
        help="repo root for relative paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def _merge(into: Report, other: Report) -> None:
    into.findings.extend(other.findings)
    into.errors.extend(other.errors)
    into.suppressed += other.suppressed
    into.baselined += other.baselined
    into.files_checked += other.files_checked


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0

    root = os.path.abspath(args.root)
    report = Report(suite=args.suite)

    if args.suite in ("code", "all"):
        paths = [
            p if os.path.isabs(p) else os.path.join(root, p)
            for p in args.paths
        ]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            print(f"error: no such path: {missing[0]}", file=sys.stderr)
            return 2
        if args.write_baseline:
            if not args.baseline:
                print(
                    "error: --write-baseline requires --baseline",
                    file=sys.stderr,
                )
                return 2
            fresh = run_code_suite(paths, root, baseline=None)
            write_baseline(args.baseline, fresh.findings)
            print(
                f"wrote {len(fresh.findings)} entries to {args.baseline} "
                "(fill in the justifications)"
            )
            return 0
        baseline = None
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except (ValueError, OSError, KeyError) as exc:
                print(f"error: bad baseline: {exc}", file=sys.stderr)
                return 2
        _merge(report, run_code_suite(paths, root, baseline=baseline))

    if args.suite in ("docs", "all"):
        _merge(report, run_docs_suite(root))

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.render_json())
            fh.write("\n")
    return 0 if report.ok else 1
