"""The ``--suite docs`` checks: Markdown links plus docstring coverage.

Unifies the two documentation gates that used to be separate CI steps:

- **DOC001** -- a relative Markdown link that resolves to nothing
  (the ``tools/check_docs_links.py`` check, reused via import).
- **DOC100/101/102/103/104** -- a public module/class/method/function in
  a docstring-gated package without a docstring (the coverage half of
  ruff's D100-D104, without pulling ruff into the runtime).  Dunder and
  private names are exempt, as are nested functions.

One invocation, one exit code, one JSON report artifact for CI.
"""

from __future__ import annotations

import ast
import glob
import os

from tools.check_docs_links import DEFAULT_TARGETS, is_checkable, iter_links
from tools.repolint.engine import iter_python_files, relpath_posix
from tools.repolint.findings import Finding, Report

#: Packages whose public surface must be fully docstringed (mirrors the
#: old ``ruff check --select D100..D104`` CI scope, plus the analyzer
#: itself -- the tool is held to its own gate).
DOCSTRING_PACKAGES = (
    "src/repro/core",
    "src/repro/serving",
    "tools/repolint",
)


def check_markdown_links(root: str, report: Report) -> None:
    """Append DOC001 findings for broken relative links under ``root``."""
    files = [
        path
        for pattern in DEFAULT_TARGETS
        for path in sorted(glob.glob(os.path.join(root, pattern)))
    ]
    for path in files:
        report.files_checked += 1
        rel = relpath_posix(path, root)
        base = os.path.dirname(os.path.abspath(path))
        for lineno, target in iter_links(path):
            if not is_checkable(target):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                report.findings.append(
                    Finding(
                        rule="DOC001",
                        path=rel,
                        line=lineno,
                        message=f"broken relative link -> {target}",
                    )
                )


def _needs_docstring(name: str) -> bool:
    return not name.startswith("_")


def _check_docstrings_in_file(
    rel: str, source: str, report: Report
) -> None:
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        report.errors.append(f"{rel}: syntax error: {exc.msg}")
        return
    is_package = rel.endswith("__init__.py")
    if ast.get_docstring(tree) is None:
        report.findings.append(
            Finding(
                rule="DOC104" if is_package else "DOC100",
                path=rel,
                line=1,
                message="missing module docstring",
            )
        )
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _needs_docstring(node.name):
            if ast.get_docstring(node) is None:
                report.findings.append(
                    Finding(
                        rule="DOC101",
                        path=rel,
                        line=node.lineno,
                        message=f"missing class docstring: {node.name}",
                        symbol=node.name,
                    )
                )
            for item in node.body:
                if (
                    isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and _needs_docstring(item.name)
                    and ast.get_docstring(item) is None
                ):
                    report.findings.append(
                        Finding(
                            rule="DOC102",
                            path=rel,
                            line=item.lineno,
                            message=(
                                f"missing method docstring: "
                                f"{node.name}.{item.name}"
                            ),
                            symbol=f"{node.name}.{item.name}",
                        )
                    )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _needs_docstring(node.name):
            if ast.get_docstring(node) is None:
                report.findings.append(
                    Finding(
                        rule="DOC103",
                        path=rel,
                        line=node.lineno,
                        message=f"missing function docstring: {node.name}",
                        symbol=node.name,
                    )
                )


def check_docstring_coverage(root: str, report: Report) -> None:
    """Append DOC1xx findings for the docstring-gated packages."""
    for package in DOCSTRING_PACKAGES:
        package_path = os.path.join(root, package)
        if not os.path.isdir(package_path):
            continue
        for file_path in iter_python_files([package_path]):
            report.files_checked += 1
            rel = relpath_posix(file_path, root)
            with open(file_path, encoding="utf-8") as fh:
                _check_docstrings_in_file(rel, fh.read(), report)


def run_docs_suite(root: str) -> Report:
    """Run both documentation checks; one report, one exit code."""
    report = Report(suite="docs")
    check_markdown_links(root, report)
    check_docstring_coverage(root, report)
    return report
