"""Checked-in baseline of grandfathered findings.

The baseline lets the CI gate turn on *strict* while legacy findings are
burned down: a finding whose identity key appears in the baseline does
not fail the run.  Every entry must carry a written justification --
an unjustified entry fails the run outright, so the baseline can never
silently become a dumping ground.  Stale entries (matching no current
finding) are surfaced so a fix also deletes its baseline row.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from tools.repolint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class BaselineEntry:
    """One grandfathered finding plus the reason it is tolerated."""

    rule: str
    path: str
    symbol: str
    message: str
    justification: str

    @property
    def key(self) -> str:
        """Identity key; must mirror :attr:`Finding.key` construction."""
        return Finding(
            rule=self.rule,
            path=self.path,
            line=0,
            message=self.message,
            symbol=self.symbol,
        ).key


@dataclass
class Baseline:
    """The parsed baseline file."""

    path: str | None = None
    entries: list[BaselineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {entry.key: entry for entry in self.entries}
        self._matched: set[str] = set()

    def match(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (marks the entry used)."""
        entry = self._by_key.get(finding.key)
        if entry is None:
            return False
        self._matched.add(finding.key)
        return True

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding this run (candidates to delete)."""
        return [e for e in self.entries if e.key not in self._matched]

    def unjustified_entries(self) -> list[BaselineEntry]:
        """Entries with an empty justification (always an error)."""
        return [e for e in self.entries if not e.justification.strip()]


def load_baseline(path: str) -> Baseline:
    """Parse the baseline JSON at ``path`` (an absent file is empty)."""
    if not os.path.exists(path):
        return Baseline(path=path)
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    if raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {raw.get('version')!r}"
        )
    entries = [
        BaselineEntry(
            rule=item["rule"],
            path=item["path"],
            symbol=item.get("symbol", ""),
            message=item["message"],
            justification=item.get("justification", ""),
        )
        for item in raw.get("entries", [])
    ]
    return Baseline(path=path, entries=entries)


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Serialize ``findings`` as a fresh baseline (justifications TODO).

    Emitted entries carry an empty justification on purpose: the engine
    refuses to *use* such a baseline until a human writes one per entry,
    which is exactly the workflow -- regenerate, then justify or fix.
    """
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "message": f.message,
                "justification": "",
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
