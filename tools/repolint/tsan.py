"""ThreadSanitizer-lite: runtime validation of the RL1xx lock model.

The static analyzer *models* which ``self._*`` attributes are guarded by
which lock; this module checks that model against real executions.  When
installed (``REPRO_TSAN=1`` in the test suite), every lock-owning class
is monkeypatch-instrumented:

- the instance's lock attributes are replaced post-``__init__`` with
  :class:`TrackedLock` proxies that record which threads currently hold
  them (``threading.Condition`` objects built over the same lock are
  re-pointed at the proxy so waits keep working);
- ``__getattribute__``/``__setattr__`` are wrapped so that any access to
  a guarded attribute from an instance whose lock is *not* held by the
  current thread records a :class:`TsanViolation`.

Violations are recorded, not raised, so a racy access surfaces as a
failed assertion in the test-suite hook (one check per test) with the
full access context instead of an exception at an arbitrary stack depth.

The guarded-attribute sets come from
:func:`tools.repolint.rules.locks.collect_lock_classes` over the actual
source tree -- attributes excluded there (``# repolint: disable=RL101``
on the ``__init__`` line) are excluded here too, keeping the static and
dynamic models in lockstep.
"""

from __future__ import annotations

import ast
import os
import threading
import traceback
from dataclasses import dataclass

from tools.repolint.rules.locks import LockClassModel, collect_lock_classes

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
_SRC_ROOT = os.path.join(_REPO_ROOT, "src")

#: Modules instrumented by :func:`install`, ordered so base classes are
#: patched before any importing module instantiates them.
DEFAULT_MODULES = (
    "repro.memory.tracker",
    "repro.memory.traffic",
    "repro.core.fastpath",
    "repro.core.marshal",
    "repro.core.procpool",
    "repro.serving.queue",
    "repro.serving.palette",
    "repro.serving.stats",
    "repro.serving.breaker",
    "repro.serving.server",
)


@dataclass
class TsanViolation:
    """One guarded-attribute access without the owning lock held."""

    cls: str
    attr: str
    op: str
    thread: str
    location: str

    def render(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.cls}.{self.attr} {self.op} without lock held "
            f"[thread {self.thread}] at {self.location}"
        )


_VIOLATIONS: list[TsanViolation] = []
_VIOLATIONS_LOCK = threading.Lock()
_IN_CHECK = threading.local()


def violations() -> list[TsanViolation]:
    """Snapshot of every violation recorded since install."""
    with _VIOLATIONS_LOCK:
        return list(_VIOLATIONS)


def violation_count() -> int:
    """Number of violations recorded so far (cheap per-test watermark)."""
    with _VIOLATIONS_LOCK:
        return len(_VIOLATIONS)


def violations_since(watermark: int) -> list[TsanViolation]:
    """Violations recorded after a :func:`violation_count` watermark."""
    with _VIOLATIONS_LOCK:
        return list(_VIOLATIONS[watermark:])


def clear_violations() -> None:
    """Drop all recorded violations (test isolation)."""
    with _VIOLATIONS_LOCK:
        _VIOLATIONS.clear()


def _record(cls_name: str, attr: str, op: str) -> None:
    frame = traceback.extract_stack(limit=4)[0]
    violation = TsanViolation(
        cls=cls_name,
        attr=attr,
        op=op,
        thread=threading.current_thread().name,
        location=f"{os.path.basename(frame.filename)}:{frame.lineno}",
    )
    with _VIOLATIONS_LOCK:
        _VIOLATIONS.append(violation)


class TrackedLock:
    """Ownership-recording proxy over a ``threading`` lock.

    Wraps the real lock object, delegating acquire/release while keeping
    a per-thread hold count, so instrumentation can ask the one question
    the stdlib ``Lock`` cannot answer: *does the current thread hold
    this lock?*  Also provides the RLock-protocol hooks ``Condition``
    probes for, delegating to the inner lock when present.
    """

    def __init__(self, inner) -> None:
        self._inner = inner  # repolint: disable=RL101 immutable delegate
        self._holds: dict[int, int] = {}
        self._holds_guard = threading.Lock()

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread currently holds the lock."""
        with self._holds_guard:
            return self._holds.get(threading.get_ident(), 0) > 0

    def _note_acquire(self) -> None:
        ident = threading.get_ident()
        with self._holds_guard:
            self._holds[ident] = self._holds.get(ident, 0) + 1

    def _note_release(self) -> None:
        ident = threading.get_ident()
        with self._holds_guard:
            count = self._holds.get(ident, 0) - 1
            if count > 0:
                self._holds[ident] = count
            else:
                self._holds.pop(ident, None)

    def acquire(self, *args, **kwargs):
        """Acquire the inner lock, recording the holder on success."""
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._note_acquire()
        return got

    def release(self) -> None:
        """Release the inner lock, dropping the hold record."""
        self._note_release()
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # Condition protocol (delegated when the inner lock is an RLock).

    def _is_owned(self):
        """RLock protocol: whether the current thread owns the lock."""
        return self.held_by_current_thread()

    def _release_save(self):
        """RLock protocol: fully release, returning the restore token."""
        ident = threading.get_ident()
        with self._holds_guard:
            count = self._holds.pop(ident, 0)
        if hasattr(self._inner, "_release_save"):
            return (count, self._inner._release_save())
        self._inner.release()
        return (count, None)

    def _acquire_restore(self, token) -> None:
        """RLock protocol: re-acquire to the saved depth."""
        count, inner_token = token
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(inner_token)
        else:
            self._inner.acquire()
        ident = threading.get_ident()
        with self._holds_guard:
            self._holds[ident] = max(count, 1)

    def locked(self):
        """Delegate ``locked()`` to the inner lock when available."""
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return inner_locked()
        with self._holds_guard:
            return bool(self._holds)


def arm_instance(instance, lock_attrs: frozenset[str]) -> None:
    """Wrap an instance's locks with :class:`TrackedLock` and arm checks.

    Conditions constructed over a wrapped lock are re-pointed at the
    proxy (``threading.Condition`` binds ``acquire``/``release`` eagerly
    in its ``__init__``).  Safe to call on an already-armed instance.
    """
    replaced: dict[int, TrackedLock] = {}
    inst_dict = object.__getattribute__(instance, "__dict__")
    for attr in lock_attrs:
        current = inst_dict.get(attr)
        if current is None or isinstance(current, TrackedLock):
            continue
        if isinstance(current, threading.Condition):
            continue  # handled below via its _lock
        tracked = TrackedLock(current)
        replaced[id(current)] = tracked
        object.__setattr__(instance, attr, tracked)
    for attr in lock_attrs:
        current = inst_dict.get(attr)
        if isinstance(current, threading.Condition):
            tracked = replaced.get(id(current._lock))
            if tracked is None:
                tracked = TrackedLock(current._lock)
                replaced[id(current._lock)] = tracked
            current._lock = tracked
            current.acquire = tracked.acquire
            current.release = tracked.release
            current._is_owned = tracked._is_owned
            current._release_save = tracked._release_save
            current._acquire_restore = tracked._acquire_restore
    object.__setattr__(instance, "_tsan_armed", True)


def _locks_held(instance, lock_attrs: frozenset[str]) -> bool:
    for attr in lock_attrs:
        try:
            lock = object.__getattribute__(instance, attr)
        except AttributeError:
            continue
        if isinstance(lock, TrackedLock) and lock.held_by_current_thread():
            return True
        if isinstance(lock, threading.Condition) and isinstance(
            lock._lock, TrackedLock
        ):
            if lock._lock.held_by_current_thread():
                return True
    return False


def instrument_class(
    cls, guarded: frozenset[str], lock_attrs: frozenset[str]
) -> None:
    """Monkeypatch ``cls`` so guarded-attribute accesses are checked.

    Idempotent: a second call on the same class is a no-op.
    """
    if getattr(cls, "_tsan_instrumented", False):
        return
    orig_init = cls.__init__
    orig_getattribute = cls.__getattribute__
    orig_setattr = cls.__setattr__
    cls_name = cls.__name__
    guarded = frozenset(guarded)
    lock_attrs = frozenset(lock_attrs)

    def _check(self, name: str, op: str) -> None:
        if getattr(_IN_CHECK, "active", False):
            return
        _IN_CHECK.active = True
        try:
            if not _locks_held(self, lock_attrs):
                _record(cls_name, name, op)
        finally:
            _IN_CHECK.active = False

    def tsan_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        arm_instance(self, lock_attrs)

    def tsan_getattribute(self, name):
        if name in guarded:
            try:
                armed = object.__getattribute__(self, "_tsan_armed")
            except AttributeError:
                armed = False
            if armed:
                _check(self, name, "read")
        return orig_getattribute(self, name)

    def tsan_setattr(self, name, value):
        if name in guarded:
            try:
                armed = object.__getattribute__(self, "_tsan_armed")
            except AttributeError:
                armed = False
            if armed:
                _check(self, name, "write")
        orig_setattr(self, name, value)

    tsan_init.__name__ = "__init__"
    cls.__init__ = tsan_init
    cls.__getattribute__ = tsan_getattribute
    cls.__setattr__ = tsan_setattr
    cls._tsan_instrumented = True
    cls._tsan_guarded = guarded
    cls._tsan_lock_attrs = lock_attrs


def _model_for_source(path: str) -> list[LockClassModel]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return collect_lock_classes(ast.parse(source), source)


def _runtime_guarded(model: LockClassModel, source: str) -> frozenset[str]:
    """The guarded set minus attrs with *any* suppressed static access.

    An attribute that carries a justified ``# repolint: disable=RL101``
    anywhere in the class is intentionally accessed lock-free on some
    path; checking it at runtime would flag exactly those sanctioned
    accesses, so it is dropped from the dynamic model too.
    """
    dropped = set(model.excluded)
    for line in source.splitlines():
        if "repolint: disable=" not in line or "RL101" not in line.split(
            "#", 1
        )[-1]:
            continue
        for attr in model.guarded:
            if f"self.{attr}" in line:
                dropped.add(attr)
    return frozenset(model.guarded - dropped)


def install(modules: tuple[str, ...] = DEFAULT_MODULES) -> list[str]:
    """Instrument every lock-owning class in ``modules``.

    Imports each module (patching classes before dependent modules
    construct instances), then retro-arms the process-global singletons
    that were created during the imports themselves.  Returns the list
    of instrumented ``Module.Class`` names.
    """
    import importlib

    instrumented: list[str] = []
    for dotted in modules:
        source_path = os.path.join(
            _SRC_ROOT, dotted.replace(".", os.sep) + ".py"
        )
        if not os.path.exists(source_path):
            continue
        with open(source_path, encoding="utf-8") as fh:
            source = fh.read()
        models = collect_lock_classes(ast.parse(source), source)
        if not models:
            continue
        module = importlib.import_module(dotted)
        for model in models:
            cls = getattr(module, model.name, None)
            if cls is None:
                continue
            instrument_class(
                cls, _runtime_guarded(model, source), model.lock_attrs
            )
            instrumented.append(f"{dotted}.{model.name}")
    _arm_known_singletons()
    return instrumented


def _arm_known_singletons() -> None:
    """Arm module-level instances created before their class was patched."""
    try:
        from repro.memory.traffic import global_ledger

        ledger = global_ledger()
        if getattr(type(ledger), "_tsan_instrumented", False):
            arm_instance(ledger, type(ledger)._tsan_lock_attrs)
    except ImportError:  # pragma: no cover - partial installs
        pass
    try:
        from repro.memory.tracker import global_registry

        registry = global_registry()
        for tracker in list(registry.snapshot_all()):
            instance = registry.get(tracker)
            if getattr(type(instance), "_tsan_instrumented", False):
                arm_instance(instance, type(instance)._tsan_lock_attrs)
    except ImportError:  # pragma: no cover - partial installs
        pass


def enabled() -> bool:
    """Whether the environment asks for tsan mode (``REPRO_TSAN=1``)."""
    return os.environ.get("REPRO_TSAN", "") == "1"
