"""The repo-lint engine: walk files, run rules, apply suppressions.

Pipeline per file: parse once into a shared :class:`FileContext`, run
every rule, drop findings covered by ``# repolint: disable`` comments
(marking them used), then drop findings matched by the baseline.  What
survives fails the run.  Malformed disables (RL001) and disables that
suppressed nothing (RL002) are themselves findings, so the suppression
surface stays honest; baseline entries must each carry a justification
and stale entries are reported as errors so fixes also clean the file.
"""

from __future__ import annotations

import os
from typing import Iterable

from tools.repolint.baseline import Baseline
from tools.repolint.findings import Finding, Report
from tools.repolint.rules import ALL_RULES, KNOWN_RULE_IDS, FileContext, Rule
from tools.repolint.suppress import parse_suppressions


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    out.append(os.path.join(dirpath, filename))
    return sorted(set(out))


def relpath_posix(path: str, root: str) -> str:
    """``path`` relative to ``root`` with forward slashes."""
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def lint_source(
    path: str,
    source: str,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> tuple[list[Finding], int, list[Finding]]:
    """Lint one in-memory file.

    Returns ``(live_findings, suppressed_count, meta_findings)`` where
    meta findings are RL001/RL002 suppression hygiene problems.
    """
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule="RL000",
                    path=path,
                    line=exc.lineno or 0,
                    message=f"syntax error: {exc.msg}",
                )
            ],
            0,
            [],
        )
    suppressions = parse_suppressions(path, source, KNOWN_RULE_IDS)
    live: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            supp = suppressions.matches(finding.rule, finding.line)
            if supp is not None:
                supp.used = True
                suppressed += 1
            else:
                live.append(finding)
    meta: list[Finding] = list(suppressions.malformed)
    for supp in suppressions.unused():
        finding = Finding(
            rule="RL002",
            path=path,
            line=supp.line,
            message=(
                f"disable={','.join(supp.rules)} suppresses nothing -- "
                "remove it (the code is already clean)"
            ),
        )
        cover = suppressions.matches("RL002", finding.line)
        if cover is not None and cover is not supp:
            cover.used = True
            suppressed += 1
        else:
            meta.append(finding)
    return live, suppressed, meta


def run_code_suite(
    paths: Iterable[str],
    root: str,
    baseline: Baseline | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> Report:
    """Run the code rules over ``paths``; apply ``baseline`` if given."""
    report = Report(suite="code")
    if baseline is not None:
        bad = baseline.unjustified_entries()
        if bad:
            for entry in bad:
                report.errors.append(
                    f"baseline entry without justification: "
                    f"{entry.rule} {entry.path} [{entry.symbol}]"
                )
            return report
    for file_path in iter_python_files(paths):
        rel = relpath_posix(file_path, root)
        try:
            with open(file_path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.errors.append(f"{rel}: unreadable ({exc})")
            continue
        report.files_checked += 1
        live, suppressed, meta = lint_source(rel, source, rules)
        report.suppressed += suppressed
        for finding in live + meta:
            if baseline is not None and baseline.match(finding):
                report.baselined += 1
            else:
                report.findings.append(finding)
    if baseline is not None:
        for entry in baseline.stale_entries():
            report.errors.append(
                f"stale baseline entry (fixed or moved -- delete it): "
                f"{entry.rule} {entry.path} [{entry.symbol}]"
            )
    return report
