"""RL1xx -- lock discipline for lock-owning classes.

A class whose ``__init__`` creates a ``threading.Lock``/``RLock``/
``Condition`` under a ``self._*`` attribute is *lock-owning*: its
underscore-prefixed instance state is treated as guarded by that lock,
and every read or write of a guarded attribute must happen lexically
inside ``with self._lock`` (or any other lock-like attribute of the same
instance).  This is the static model behind the repo's "bit-identical
under any interleaving" guarantee: ``StepCache``, ``WorkerCacheRegistry``,
``RequestQueue``, ``TileCache``, ``ServerStats``, and ``MarshalRegistry``
all follow it.

Private helper methods (leading underscore) follow the repo convention
"caller holds the lock": their unguarded accesses are accepted as long as
every in-class call site is itself inside a lock context or another
lock-requiring private method.  A call to such a helper from an unlocked
public context is the violation (RL102) -- flagged at the call site,
where the fix belongs.

``__init__`` is exempt (construction is single-threaded by contract).
An attribute can be excluded from the guarded model by putting a
``# repolint: disable=RL101 <reason>`` on its ``__init__`` assignment
line -- the exclusion also propagates to the runtime tsan mode, keeping
the static and dynamic models in sync.

Rules:

- **RL101**: guarded attribute accessed outside a lock context.
- **RL102**: lock-requiring private method called outside a lock context.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from tools.repolint.findings import Finding
from tools.repolint.rules.base import (
    FileContext,
    Rule,
    call_name,
    decorator_names,
    is_self_attribute,
)

LOCK_FACTORY_NAMES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

_UNGUARDED_MARK_RE = re.compile(r"#\s*repolint:\s*disable=[A-Z0-9,]*RL101")


@dataclass
class LockClassModel:
    """The guarded-state model of one lock-owning class."""

    name: str
    line: int
    lock_attrs: frozenset[str]
    guarded: frozenset[str]
    excluded: frozenset[str] = frozenset()
    #: attr -> line of its `disable=RL101` model-exclusion marker
    marker_lines: dict[str, int] = field(default_factory=dict)
    node: ast.ClassDef | None = field(default=None, repr=False)


def _init_method(cls: ast.ClassDef) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return item
    return None


def _assigned_self_attrs(
    init: ast.FunctionDef,
) -> Iterator[tuple[str, ast.AST, int]]:
    """Yield ``(attr, value, line)`` for every ``self.X = ...`` in init."""
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if is_self_attribute(target):
                    yield target.attr, node.value, node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if is_self_attribute(node.target):
                yield node.target.attr, node.value, node.lineno


def _is_lock_factory(value: ast.AST) -> bool:
    return isinstance(value, ast.Call) and call_name(value) in LOCK_FACTORY_NAMES


def collect_lock_classes(
    tree: ast.AST, source: str = ""
) -> list[LockClassModel]:
    """Find every lock-owning class and its guarded-attribute model.

    ``source`` (when given) is scanned for RL101 disables on ``__init__``
    assignment lines; those attributes are *excluded* from the model --
    the hook for intentionally lock-free state.
    """
    source_lines = source.splitlines()
    models: list[LockClassModel] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        init = _init_method(node)
        if init is None:
            continue
        lock_attrs: set[str] = set()
        guarded: set[str] = set()
        excluded: set[str] = set()
        marker_lines: dict[str, int] = {}
        for attr, value, line in _assigned_self_attrs(init):
            if _is_lock_factory(value):
                lock_attrs.add(attr)
                continue
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            text = (
                source_lines[line - 1] if 0 < line <= len(source_lines) else ""
            )
            if _UNGUARDED_MARK_RE.search(text):
                excluded.add(attr)
                marker_lines[attr] = line
            else:
                guarded.add(attr)
        guarded -= lock_attrs
        excluded -= lock_attrs
        if lock_attrs and any(a.startswith("_") for a in lock_attrs):
            models.append(
                LockClassModel(
                    name=node.name,
                    line=node.lineno,
                    lock_attrs=frozenset(lock_attrs),
                    guarded=frozenset(guarded),
                    excluded=frozenset(excluded),
                    marker_lines=marker_lines,
                    node=node,
                )
            )
    return models


def _holds_lock(
    ctx: FileContext, node: ast.AST, lock_attrs: frozenset[str]
) -> bool:
    """Whether ``node`` sits lexically inside ``with self.<lock>``."""
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                if isinstance(expr, ast.Attribute) and is_self_attribute(
                    expr
                ):
                    if expr.attr in lock_attrs:
                        return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Keep climbing: a nested def inside `with self._lock` only
            # runs later, but flagging closures is out of scope for the
            # lite analyzer -- treat the lexical context as authoritative.
            continue
    return False


def _methods(cls: ast.ClassDef) -> list[ast.FunctionDef]:
    out = []
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name != "__init__":
            if "staticmethod" in decorator_names(item):
                continue
            if "classmethod" in decorator_names(item):
                continue
            out.append(item)
    return out


def _guarded_accesses(
    method: ast.FunctionDef, guarded: frozenset[str]
) -> list[ast.Attribute]:
    return [
        node
        for node in ast.walk(method)
        if isinstance(node, ast.Attribute)
        and is_self_attribute(node)
        and node.attr in guarded
    ]


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


class LockDisciplineRule(Rule):
    """RL101: guarded state touched outside the owning lock."""

    id = "RL101"
    summary = (
        "mutable self._* state of a lock-owning class must be accessed "
        "inside `with self._lock`"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unlocked guarded-attribute accesses and unlocked calls to
        lock-requiring private helpers (the latter under RL102's id via
        :class:`LockHelperCallRule`, which shares this analysis)."""
        for model, method, access in iter_unlocked_public_accesses(ctx):
            verb = (
                "writes" if isinstance(access.ctx, (ast.Store, ast.Del))
                else "reads"
            )
            yield self.finding(
                ctx,
                access,
                f"{model.name}.{method.name} {verb} guarded attribute "
                f"'self.{access.attr}' outside `with self.<lock>` "
                f"(locks: {', '.join(sorted(model.lock_attrs))})",
            )
        # A model-exclusion marker on an __init__ line never suppresses a
        # concrete access finding, so emit one at the marker itself: the
        # marker's own disable comment catches it, keeping the suppression
        # "used" -- and if the marker line stops matching an assignment,
        # the orphaned disable resurfaces as RL002.
        for model in collect_lock_classes(ctx.tree, ctx.source):
            for attr, line in sorted(model.marker_lines.items()):
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=line,
                    message=(
                        f"{model.name}: 'self.{attr}' excluded from the "
                        "guarded model by this marker"
                    ),
                    symbol=f"{model.name}.__init__",
                )


class LockHelperCallRule(Rule):
    """RL102: lock-requiring private helper called without the lock."""

    id = "RL102"
    summary = (
        "private methods that touch guarded state unlocked must only be "
        "called while holding the lock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unlocked in-class call sites of lock-requiring helpers."""
        for model, caller, call, callee in iter_unlocked_helper_calls(ctx):
            yield self.finding(
                ctx,
                call,
                f"{model.name}.{caller.name} calls lock-requiring helper "
                f"'self.{callee}()' outside `with self.<lock>`",
            )


def _class_analysis(ctx: FileContext):
    """Per lock-owning class: methods, unlocked accesses, helper calls."""
    for model in collect_lock_classes(ctx.tree, ctx.source):
        assert model.node is not None
        methods = _methods(model.node)
        unlocked: dict[str, list[ast.Attribute]] = {}
        for method in methods:
            unlocked[method.name] = [
                access
                for access in _guarded_accesses(method, model.guarded)
                if not _holds_lock(ctx, access, model.lock_attrs)
            ]
        requires_lock = {
            name for name, accesses in unlocked.items() if accesses
        }
        yield model, methods, unlocked, requires_lock


def iter_unlocked_public_accesses(ctx: FileContext):
    """Yield ``(model, method, access)`` for RL101 violations.

    A private method's unlocked accesses are excused only when it has at
    least one in-class call site and every call site holds the lock (or
    sits in another lock-requiring private helper, i.e. further up a
    caller-holds-the-lock chain).
    """
    for model, methods, unlocked, requires_lock in _class_analysis(ctx):
        call_sites = _call_sites(ctx, model, methods)
        for method in methods:
            accesses = unlocked[method.name]
            if not accesses:
                continue
            if _is_private(method.name):
                sites = call_sites.get(method.name, [])
                if sites and all(
                    held or _is_private(caller.name)
                    for caller, _, held in sites
                ):
                    continue
                if sites:
                    # Mixed call sites: the unlocked *call* is the bug,
                    # reported by RL102 -- do not double-report here.
                    continue
            for access in accesses:
                yield model, method, access


def iter_unlocked_helper_calls(ctx: FileContext):
    """Yield ``(model, caller, call_node, callee_name)`` for RL102."""
    for model, methods, unlocked, requires_lock in _class_analysis(ctx):
        call_sites = _call_sites(ctx, model, methods)
        for callee, sites in call_sites.items():
            if callee not in requires_lock or not _is_private(callee):
                continue
            for caller, call, held in sites:
                if held or _is_private(caller.name):
                    continue
                yield model, caller, call, callee


def _call_sites(
    ctx: FileContext, model: LockClassModel, methods: list[ast.FunctionDef]
) -> dict[str, list[tuple[ast.FunctionDef, ast.Call, bool]]]:
    """In-class call sites per method name: (caller, call, lock-held)."""
    sites: dict[str, list[tuple[ast.FunctionDef, ast.Call, bool]]] = {}
    names = {m.name for m in methods}
    for method in methods:
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if is_self_attribute(func) and func.attr in names:
                held = _holds_lock(ctx, node, model.lock_attrs)
                sites.setdefault(func.attr, []).append(
                    (method, node, held)
                )
    return sites
