"""Shared AST plumbing for repo-lint rules.

Rules are stateless objects with an ``id``, a one-line ``summary``, and a
``check(ctx)`` generator of findings.  :class:`FileContext` carries one
parsed file plus a parent map so rules can walk *up* the tree (lock
contexts, ownership of a constructor call) as well as down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from tools.repolint.findings import Finding


@dataclass
class FileContext:
    """One source file, parsed once and shared by every rule."""

    path: str
    source: str
    tree: ast.AST
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        """Parse ``source`` and build the child->parent map."""
        tree = ast.parse(source, filename=path)
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(path=path, source=source, tree=tree, parents=parents)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def symbol_for(self, node: ast.AST) -> str:
        """Dotted in-file scope of ``node`` (``Class.method`` style)."""
        parts: list[str] = []
        for anc in self.ancestors(node):
            if isinstance(
                anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(anc.name)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            parts.insert(0, node.name)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclasses set ``id``/``summary`` and yield findings."""

    id = "RL000"
    summary = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (default: none)."""
        return iter(())

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=ctx.symbol_for(node),
        )


def call_name(node: ast.Call) -> str:
    """The final identifier of a call target (``a.b.C()`` -> ``C``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        inner = dotted_name(current.func)
        parts.append(f"{inner}()" if inner else "()")
    else:
        return ""
    return ".".join(reversed(parts))


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when ``None``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def enclosing_function(
    ctx: FileContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest enclosing function definition, if any."""
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Final identifiers of a function's decorators."""
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.add(name.split(".")[-1])
    return names
