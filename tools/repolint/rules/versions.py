"""RL2xx -- ``Storage.version`` discipline for in-place buffer writes.

Every cache key in the system -- ``StepCache``'s uniquify memo, the
eval-path hard-weight snapshot, worker delta staleness, checkpoint
digests -- hinges on one invariant: **an in-place write to a tensor's
backing buffer bumps ``Storage.version`` before anyone can observe the
new bytes**.  PR 7's stale eval ``_hard_cache`` was exactly a write that
did not flow into version-keyed invalidation.

The rule recognizes the repo's buffer-mutation shapes:

- subscript stores / augmented assigns into ``x._np()[...]`` views or
  ``storage.data`` buffers (including one level of local aliasing:
  ``buf = x._np(); buf[...] = v``),
- ``np.copyto(buf, ...)`` into such a buffer.

Any function containing one of these must also call ``bump_version()``
(or delegate to an in-place Tensor method, which bumps internally).
``tensor/storage.py`` -- where the version counter lives -- is exempt.

Rules:

- **RL201**: in-place buffer mutation without ``bump_version()`` in the
  same function.
- **RL202**: ``np.copyto`` into a tensor/storage buffer without
  ``bump_version()`` in the same function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.findings import Finding
from tools.repolint.rules.base import FileContext, Rule, dotted_name

EXEMPT_SUFFIXES = ("tensor/storage.py",)

#: In-place Tensor methods that bump the version themselves; a function
#: that only mutates through these needs no explicit bump.
DELEGATING_MUTATORS = frozenset({"copy_", "fill_", "zero_", "_unsafe_add_"})


def _is_buffer_expr(node: ast.AST, tainted: set[str]) -> bool:
    """Whether ``node`` denotes a tensor/storage backing buffer."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr == "_np":
                return True
        if isinstance(sub, ast.Attribute) and sub.attr == "data":
            base = dotted_name(sub.value)
            if base.endswith("storage") or base == "self.storage":
                return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def _tainted_locals(fn: ast.AST) -> set[str]:
    """Local names bound to ``x._np()`` or ``*.storage.data`` results."""
    tainted: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_buffer = False
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute
        ):
            if value.func.attr == "_np":
                is_buffer = True
        if isinstance(value, ast.Attribute) and value.attr == "data":
            base = dotted_name(value.value)
            if base.endswith("storage"):
                is_buffer = True
        if not is_buffer:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tainted.add(target.id)
    return tainted


def _has_version_bump(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr == "bump_version":
                return True
            if node.func.attr in DELEGATING_MUTATORS:
                return True
    return False


def _iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class VersionBumpRule(Rule):
    """RL201: subscript/augmented buffer mutation without a version bump."""

    id = "RL201"
    summary = (
        "in-place writes to tensor/storage buffers must reach "
        "bump_version() in the same function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag buffer stores in functions that never bump the version."""
        if ctx.path.endswith(EXEMPT_SUFFIXES):
            return
        for fn in _iter_functions(ctx.tree):
            tainted = _tainted_locals(fn)
            bumps = _has_version_bump(fn)
            for node in ast.walk(fn):
                target = None
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(t, ast.Subscript):
                            target = t
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Subscript
                ):
                    target = node.target
                if target is None:
                    continue
                if not _is_buffer_expr(target.value, tainted):
                    continue
                if bumps:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "in-place write to a tensor/storage buffer without "
                    "bump_version() in the same function (stale "
                    "version-keyed caches would serve old bytes)",
                )


class CopytoVersionRule(Rule):
    """RL202: ``np.copyto`` into a buffer without a version bump."""

    id = "RL202"
    summary = "np.copyto into tensor/storage buffers must bump the version"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag np.copyto(buffer, ...) in bump-free functions."""
        if ctx.path.endswith(EXEMPT_SUFFIXES):
            return
        for fn in _iter_functions(ctx.tree):
            tainted = _tainted_locals(fn)
            bumps = _has_version_bump(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if dotted_name(node.func) not in ("np.copyto", "numpy.copyto"):
                    continue
                if not node.args or not _is_buffer_expr(
                    node.args[0], tainted
                ):
                    continue
                if bumps:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "np.copyto into a tensor/storage buffer without "
                    "bump_version() in the same function",
                )
