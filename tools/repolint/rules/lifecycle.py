"""RL4xx -- resource lifecycle for shm blocks and executors.

A leaked ``SharedMemory`` block outlives the process (POSIX shm survives
in ``/dev/shm``), and a leaked executor strands worker processes; both
classes of leak have bitten this repo's chaos tests.  Every construction
of a leak-prone resource must therefore be visibly owned at the
construction site:

- the context expression of a ``with`` block,
- a local that a ``try/finally`` (or an exception handler re-raising
  after cleanup) disposes of,
- handed straight to another call / container / ``self`` attribute --
  i.e. a registry or wrapper that owns ``close()``,
- returned to the caller (factory functions transfer ownership).

Anything else is **RL401**.

**RL402** guards the serving layer's shutdown paths: a
``Thread.join()`` with no timeout inside ``src/repro/serving`` can
deadlock ``stop()``/``close()`` forever behind a hung decode step (the
exact seed bug the supervised scheduler fixed), so every zero-argument
``.join()`` there must either pass a deadline or carry a
``# repolint: disable=RL402 <reason>`` stating why blocking forever is
safe.  The zero-argument restriction keeps ``str.join(parts)`` (always
one argument) out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.findings import Finding
from tools.repolint.rules.base import (
    FileContext,
    Rule,
    call_name,
    enclosing_function,
)

RESOURCE_FACTORIES = frozenset(
    {
        "SharedMemory",
        "ShmExport",
        "ShmLease",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }
)


def _assigned_names(node: ast.Assign) -> list[str]:
    names = []
    for target in node.targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
    return names


SERVING_PATH_FRAGMENT = "src/repro/serving"


class JoinTimeoutRule(Rule):
    """RL402: timeout-less ``.join()`` in the serving layer."""

    id = "RL402"
    summary = (
        "Thread.join() without a timeout in src/repro/serving can "
        "deadlock shutdown behind a hung step; pass a deadline or "
        "suppress with a reason"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag zero-argument ``.join()`` calls in serving source files."""
        if SERVING_PATH_FRAGMENT not in ctx.path.replace("\\", "/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr != "join" or node.args or node.keywords:
                continue
            yield self.finding(
                ctx,
                node,
                ".join() without a timeout can deadlock stop()/close() "
                "behind a hung step -- pass join(timeout=...) and "
                "escalate on overrun",
            )


class ResourceLifecycleRule(Rule):
    """RL401: shm/executor constructed without a visible owner."""

    id = "RL401"
    summary = (
        "SharedMemory/ShmExport/ShmLease/executor constructions must be "
        "owned: with-block, try/finally, registry hand-off, or returned"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag resource constructions with no enclosing ownership."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in RESOURCE_FACTORIES:
                continue
            if self._is_owned(ctx, node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{name}(...) constructed without a visible owner -- "
                "use `with`, try/finally, hand it to a registry/wrapper, "
                "or return it to the caller",
            )

    def _is_owned(self, ctx: FileContext, node: ast.Call) -> bool:
        parent = ctx.parents.get(node)
        # Walk up through pure expression wrappers (list comps, tuples,
        # conditional expressions) to the owning statement.
        stmt_child: ast.AST = node
        stmt = parent
        while stmt is not None and not isinstance(stmt, ast.stmt):
            if isinstance(stmt, ast.Call) and stmt_child is not stmt.func:
                return True  # argument of another call: handed off
            if isinstance(stmt, ast.withitem):
                return True
            stmt_child = stmt
            stmt = ctx.parents.get(stmt)
        if stmt is None:
            return False
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True  # self attribute / container slot
            names = _assigned_names(stmt)
            if names and self._locals_owned(ctx, stmt, names):
                return True
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, (ast.Attribute, ast.Subscript)
        ):
            return True
        return False

    def _locals_owned(
        self, ctx: FileContext, assign: ast.Assign, names: list[str]
    ) -> bool:
        """Whether a local-bound resource is later disposed or handed off."""
        fn = enclosing_function(ctx, assign)
        scope: ast.AST | None = fn if fn is not None else ctx.tree
        target_names = set(names)

        # (a) a try whose finally/handler mentions the name
        for anc in ctx.ancestors(assign):
            if isinstance(anc, ast.Try):
                cleanup_nodes: list[ast.AST] = list(anc.finalbody)
                for handler in anc.handlers:
                    cleanup_nodes.extend(handler.body)
                for cleanup in cleanup_nodes:
                    for sub in ast.walk(cleanup):
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id in target_names
                        ):
                            return True
            if anc is scope:
                break

        # (b) later in the same scope: returned, stored into an
        # attribute/container, or passed to a call.  (ast.walk order is
        # not source order, so "later" is by line number.)
        for sub in ast.walk(scope):
            if sub is assign or getattr(sub, "lineno", -1) < assign.lineno:
                continue
            if isinstance(sub, ast.Try):
                cleanup_nodes = list(sub.finalbody)
                for handler in sub.handlers:
                    cleanup_nodes.extend(handler.body)
                for cleanup in cleanup_nodes:
                    for leaf in ast.walk(cleanup):
                        if (
                            isinstance(leaf, ast.Name)
                            and leaf.id in target_names
                        ):
                            return True
            if isinstance(sub, ast.Return) and sub.value is not None:
                for leaf in ast.walk(sub.value):
                    if isinstance(leaf, ast.Name) and leaf.id in target_names:
                        return True
            if isinstance(sub, ast.Assign):
                stores_elsewhere = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in sub.targets
                )
                if stores_elsewhere:
                    for leaf in ast.walk(sub.value):
                        if (
                            isinstance(leaf, ast.Name)
                            and leaf.id in target_names
                        ):
                            return True
            if isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    for leaf in ast.walk(arg):
                        if (
                            isinstance(leaf, ast.Name)
                            and leaf.id in target_names
                        ):
                            return True
        return False
