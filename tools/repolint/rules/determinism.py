"""RL3xx -- determinism discipline.

The engine's correctness bar is "bit-identical to serial" (PAPER.md §2):
every backend, recovery path, and serving path must reproduce the serial
sweep exactly.  Hidden entropy breaks that silently, so:

- **RL301**: no module-level ``np.random.*`` calls -- a module import
  must not consume or create entropy.  ``repro/tensor/random.py`` is the
  one sanctioned construction site for default generators.
- **RL302**: no ad-hoc default-generator construction in function bodies
  (``rng or np.random.default_rng(0)`` fallbacks, seedless
  ``np.random.default_rng()``, or generator defaults in signatures)
  outside ``repro/tensor/random.py`` -- thread a ``Generator`` in, or
  take the fallback from :func:`repro.tensor.random.default_rng`.
- **RL303**: no wall-clock (``time.time``) or stdlib ``random.*`` calls
  in kernel modules (``tensor/ops/``, ``core/fastpath.py``,
  ``serving/palette.py``) -- kernels must be pure functions of their
  inputs.
- **RL304**: no direct iteration over unordered ``set(...)`` /set
  literals/set comprehensions -- wrap in ``sorted(...)`` so downstream
  collections have deterministic order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.findings import Finding
from tools.repolint.rules.base import FileContext, Rule, dotted_name

#: The one module allowed to construct default generators.
RNG_HOME_SUFFIX = "tensor/random.py"

KERNEL_SUFFIXES = ("core/fastpath.py", "serving/palette.py")
KERNEL_DIR_FRAGMENT = "tensor/ops/"


def _in_rng_home(path: str) -> bool:
    return path.endswith(RNG_HOME_SUFFIX)


def _is_kernel_module(path: str) -> bool:
    posix = path.replace("\\", "/")
    return posix.endswith(KERNEL_SUFFIXES) or KERNEL_DIR_FRAGMENT in posix


def _np_random_call(node: ast.Call) -> str | None:
    """The dotted name when ``node`` is an ``np.random.*`` call."""
    name = dotted_name(node.func)
    if name.startswith(("np.random.", "numpy.random.")):
        return name
    return None


class ModuleLevelRandomRule(Rule):
    """RL301: entropy consumed or created at import time."""

    id = "RL301"
    summary = "no module-level np.random.* calls (import must be pure)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag np.random calls outside any function or class method."""
        if _in_rng_home(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _np_random_call(node)
            if name is None:
                continue
            if any(
                isinstance(
                    anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                for anc in ctx.ancestors(node)
            ):
                continue
            yield self.finding(
                ctx,
                node,
                f"module-level call to {name} -- construct generators "
                "inside functions (repro.tensor.random owns the module "
                "default)",
            )


class DefaultGeneratorRule(Rule):
    """RL302: ad-hoc default-generator fallbacks."""

    id = "RL302"
    summary = (
        "default generators come from repro.tensor.random.default_rng(); "
        "do not inline np.random.default_rng fallbacks"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag seedless constructions, `or`-fallbacks, and signature
        defaults built from np.random.default_rng outside the rng home."""
        if _in_rng_home(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _np_random_call(node)
            if name is None or not name.endswith(".default_rng"):
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "seedless np.random.default_rng() draws OS entropy -- "
                    "thread a Generator in or use "
                    "repro.tensor.random.default_rng()",
                )
                continue
            reason = self._fallback_context(ctx, node)
            if reason is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.default_rng as {reason} -- use "
                    "repro.tensor.random.default_rng(seed) so default "
                    "generators have one construction site",
                )

    def _fallback_context(
        self, ctx: FileContext, node: ast.Call
    ) -> str | None:
        parent = ctx.parents.get(node)
        if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.Or):
            if node in parent.values[1:]:
                return "an `or` fallback"
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.arguments):
                return "a signature default"
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return None


class KernelClockRule(Rule):
    """RL303: wall-clock / stdlib random inside kernel modules."""

    id = "RL303"
    summary = (
        "kernel modules (tensor/ops/, core/fastpath.py, serving/palette.py)"
        " must not call time.time() or random.*"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag time.time and random.* calls in kernel modules."""
        if not _is_kernel_module(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "time.time" or name.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"kernel module calls {name} -- kernels must be pure "
                    "functions of their inputs",
                )


class SetIterationRule(Rule):
    """RL304: iteration order of a bare set leaks into results."""

    id = "RL304"
    summary = (
        "do not iterate directly over set(...)/set literals -- "
        "wrap in sorted() for deterministic order"
    )

    def _is_bare_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "set":
                return True
            if name in {"frozenset"}:
                return True
            # set algebra on calls: set(a) - set(b) handled below
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_bare_set(node.left) or self._is_bare_set(
                node.right
            )
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag for-loops and comprehensions iterating a set expression."""
        iters: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_bare_set(it):
                yield self.finding(
                    ctx,
                    it,
                    "iteration over an unordered set feeds downstream "
                    "state -- wrap in sorted(...) for deterministic order",
                )
