"""Rule registry for the repo-lint engine.

``ALL_RULES`` is the ordered catalog; ``KNOWN_RULE_IDS`` additionally
includes the meta rules the engine itself emits (RL001 malformed
suppression, RL002 unused suppression) so disables can reference them.
"""

from __future__ import annotations

from tools.repolint.rules.base import FileContext, Rule
from tools.repolint.rules.determinism import (
    DefaultGeneratorRule,
    KernelClockRule,
    ModuleLevelRandomRule,
    SetIterationRule,
)
from tools.repolint.rules.lifecycle import (
    JoinTimeoutRule,
    ResourceLifecycleRule,
)
from tools.repolint.rules.locks import LockDisciplineRule, LockHelperCallRule
from tools.repolint.rules.versions import CopytoVersionRule, VersionBumpRule

ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    LockHelperCallRule(),
    VersionBumpRule(),
    CopytoVersionRule(),
    ModuleLevelRandomRule(),
    DefaultGeneratorRule(),
    KernelClockRule(),
    SetIterationRule(),
    ResourceLifecycleRule(),
    JoinTimeoutRule(),
)

META_RULE_IDS = ("RL001", "RL002")

KNOWN_RULE_IDS = frozenset(
    [rule.id for rule in ALL_RULES] + list(META_RULE_IDS)
)

__all__ = [
    "ALL_RULES",
    "KNOWN_RULE_IDS",
    "META_RULE_IDS",
    "FileContext",
    "Rule",
]
