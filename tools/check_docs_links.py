#!/usr/bin/env python
"""Relative-link checker for the repo's Markdown documentation.

Scans the given Markdown files (default: README.md, docs/*.md,
benchmarks/README.md) for inline links and verifies that every *relative*
target resolves to an existing file or directory. External links
(``http(s)://``, ``mailto:``), pure in-page anchors (``#...``), and badge
image paths that GitHub resolves outside the tree (``../../actions/...``)
are skipped; a ``#fragment`` suffix on a relative link is stripped before
checking. Exits non-zero listing every broken link -- the CI docs gate.

    python tools/check_docs_links.py [files...]
"""

from __future__ import annotations

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DEFAULT_TARGETS = ["README.md", "benchmarks/README.md", "docs/*.md"]


def iter_links(path: str):
    """Yield ``(line_number, target)`` for every inline link in ``path``."""
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def is_checkable(target: str) -> bool:
    """Whether ``target`` is a relative path this repo should contain."""
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return False
    # Badge/workflow links resolve on GitHub above the repo root.
    if target.startswith("../../"):
        return False
    return True


def main(argv: list[str]) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv or [
        path
        for pattern in DEFAULT_TARGETS
        for path in sorted(glob.glob(os.path.join(repo_root, pattern)))
    ]
    broken: list[str] = []
    checked = 0
    for path in files:
        base = os.path.dirname(os.path.abspath(path))
        for lineno, target in iter_links(path):
            if not is_checkable(target):
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, repo_root)
                broken.append(f"{rel}:{lineno}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(
        f"checked {checked} relative links in {len(files)} files: "
        f"{len(broken)} broken"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
