"""Zero-dependency line-coverage collector (``coverage.py``-compatible JSON).

The container has no ``coverage``/``pytest-cov``; CI installs the real
thing, but the ratchet in :mod:`tools.check_coverage` must also be
runnable locally.  This module is the local stand-in: a ``sys.settrace``
line collector scoped to one source root, plus a reporter that emits the
subset of the ``coverage.py`` JSON schema the ratchet consumes
(``files -> {executed_lines, missing_lines, summary}`` and ``totals``).

Activated by the repo-level ``conftest.py`` when ``REPRO_COV=1``:

    REPRO_COV=1 PYTHONPATH=src python -m pytest -q   # writes coverage.json

Statements are derived from the compiled code objects' line tables
(:func:`dis.findlinestarts`, recursively), the same source of truth
``coverage.py`` uses -- docstrings, ``else:`` lines, and blank lines are
naturally excluded.  Only the tracing process is observed: code running
in spawned worker processes must be exercised in-process somewhere for
its lines to count (see ``tests/test_sharded.py``'s registry tests).
"""

from __future__ import annotations

import dis
import json
import os
import sys
import threading
from types import CodeType

_executed: dict[str, set[int]] = {}
_root: str | None = None


def _trace(frame, event, arg):
    if event == "call":
        filename = frame.f_code.co_filename
        if _root is None or not filename.startswith(_root):
            return None  # never line-trace foreign frames (keeps cost sane)
        return _trace
    if event == "line":
        _executed.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _trace


def install(root: str) -> None:
    """Start collecting line hits for files under ``root`` (absolute)."""
    global _root
    _root = os.path.abspath(root) + os.sep
    threading.settrace(_trace)
    sys.settrace(_trace)


def uninstall() -> None:
    sys.settrace(None)
    threading.settrace(None)  # type: ignore[arg-type]


def statement_lines(path: str) -> set[int]:
    """The executable line numbers of ``path``, from its code objects."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack: list[CodeType] = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(
            line
            for _, line in dis.findlinestarts(code)
            # line 0 is the synthetic RESUME prologue, None is art-less
            # bytecode (3.13's findlinestarts can emit it): neither is a
            # source statement.
            if line is not None and line > 0
        )
        stack.extend(
            const for const in code.co_consts if isinstance(const, CodeType)
        )
    return lines


def report(source_root: str, output: str, relative_to: str) -> dict:
    """Write the ``coverage.json`` payload for every ``.py`` under
    ``source_root``, paths relative to ``relative_to``."""
    files: dict[str, dict] = {}
    total_statements = total_covered = 0
    for dirpath, _, filenames in os.walk(os.path.abspath(source_root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                statements = statement_lines(path)
            except SyntaxError:
                continue
            executed = _executed.get(path, set()) & statements
            rel = os.path.relpath(path, os.path.abspath(relative_to))
            percent = 100.0 * len(executed) / len(statements) if statements else 100.0
            files[rel] = {
                "executed_lines": sorted(executed),
                "missing_lines": sorted(statements - executed),
                "summary": {
                    "covered_lines": len(executed),
                    "num_statements": len(statements),
                    "percent_covered": percent,
                },
            }
            total_statements += len(statements)
            total_covered += len(executed)
    payload = {
        "meta": {"collector": "tools.covlite"},
        "files": files,
        "totals": {
            "covered_lines": total_covered,
            "num_statements": total_statements,
            "percent_covered": (
                100.0 * total_covered / total_statements
                if total_statements
                else 100.0
            ),
        },
    }
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    return payload
