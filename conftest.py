"""Repo-level pytest config: make src-layout imports work uninstalled.

Also the install point for two opt-in runtime modes that must activate
*before* any test module imports construct instances, so both happen
here at collection start rather than in a fixture:

- ThreadSanitizer-lite (``REPRO_TSAN=1``): patches the lock-owning
  classes with lockset instrumentation.
- Line coverage (``REPRO_COV=1``): installs the zero-dependency
  ``tools.covlite`` tracer over ``src/`` and writes a
  ``coverage.py``-compatible ``coverage.json`` at session end, feeding
  the ``tools.check_coverage`` ratchet on hosts without ``pytest-cov``.
"""

import os
import sys

_REPO_ROOT = os.path.dirname(__file__)
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
sys.path.insert(0, _REPO_ROOT)  # for `import tools.repolint`

from tools.repolint import tsan  # noqa: E402

if tsan.enabled():
    _TSAN_CLASSES = tsan.install()

_COV_ENABLED = os.environ.get("REPRO_COV") == "1"
if _COV_ENABLED:
    from tools import covlite

    covlite.install(os.path.join(_REPO_ROOT, "src"))


def pytest_report_header(config):
    """Surface the active runtime modes in the pytest header."""
    headers = []
    if tsan.enabled():
        headers.append(
            f"repro tsan-lite: instrumenting {len(_TSAN_CLASSES)} "
            f"lock-owning classes ({', '.join(_TSAN_CLASSES)})"
        )
    if _COV_ENABLED:
        headers.append("repro covlite: tracing src/ -> coverage.json")
    return headers or None


def pytest_sessionfinish(session, exitstatus):
    """Flush the covlite report once the run (and its workers) are done."""
    if _COV_ENABLED:
        covlite.uninstall()
        covlite.report(
            os.path.join(_REPO_ROOT, "src"),
            os.path.join(_REPO_ROOT, "coverage.json"),
            _REPO_ROOT,
        )
