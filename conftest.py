"""Repo-level pytest config: make src-layout imports work uninstalled.

Also the install point for the ThreadSanitizer-lite runtime mode
(``REPRO_TSAN=1``): instrumentation must patch the lock-owning classes
*before* any test module imports construct instances, so it happens here
at collection start rather than in a fixture.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
sys.path.insert(0, os.path.dirname(__file__))  # for `import tools.repolint`

from tools.repolint import tsan  # noqa: E402

if tsan.enabled():
    _TSAN_CLASSES = tsan.install()


def pytest_report_header(config):
    """Surface tsan mode in the pytest header so CI logs show it."""
    if tsan.enabled():
        return (
            f"repro tsan-lite: instrumenting {len(_TSAN_CLASSES)} "
            f"lock-owning classes ({', '.join(_TSAN_CLASSES)})"
        )
    return None
