"""Repo-level pytest config: make src-layout imports work uninstalled."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
