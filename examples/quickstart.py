"""Quickstart: cluster a weight tensor with DKM, then make it memory-cheap
with eDKM.

Walks the paper's story on one tensor:

1. dense DKM -- differentiable clustering whose attention map costs
   ``O(|W| * |C|)`` saved bytes;
2. the same clustering through eDKM's uniquified op + offload pipeline
   (marshal / uniquify / shard) -- same output, same gradients, a fraction
   of the saved-tensor footprint;
3. palettize the result into the deployable LUT + packed-indices artifact.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.tensor as rt
from repro.core import (
    DKMConfig,
    EDKMConfig,
    PalettizedTensor,
    SavedTensorPipeline,
)
from repro.core.dkm import DKMClusterer
from repro.core.edkm import edkm_cluster
from repro.distributed import LearnerGroup
from repro.memory import format_bytes, global_ledger, profile_memory


def main() -> None:
    rng = np.random.default_rng(0)
    # A bf16 "weight matrix" -- 16-bit training dtype is what uniquification
    # keys on (at most 2^16 distinct bit patterns).
    weights_np = (rng.standard_normal(256 * 256) * 0.05).astype(np.float32)

    config = DKMConfig(bits=3, iters=5)  # 2^3 = 8 centroids, as in the paper
    gpu, cpu = rt.GPU, rt.CPU

    # ------------------------------------------------------------------
    # 1. Dense DKM: the memory wall.
    # ------------------------------------------------------------------
    w_dense = rt.Tensor.from_numpy(
        weights_np, dtype="bfloat16", device=gpu, requires_grad=True
    )
    clusterer = DKMClusterer(config)
    pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
    with profile_memory([cpu.tracker], global_ledger()) as dense_prof:
        with pipeline.step():
            out = clusterer.cluster_dense(w_dense)
            (out * out).sum().backward()
    print("dense DKM saved-tensor footprint:",
          format_bytes(dense_prof.peak_delta("cpu")))

    # ------------------------------------------------------------------
    # 2. eDKM: marshal + uniquify + shard over 8 simulated learners.
    # ------------------------------------------------------------------
    w_edkm = rt.Tensor.from_numpy(
        weights_np, dtype="bfloat16", device=gpu, requires_grad=True
    )
    clusterer_e = DKMClusterer(config)
    edkm_pipeline = SavedTensorPipeline(EDKMConfig(group=LearnerGroup(8)))
    with profile_memory([cpu.tracker], global_ledger()) as edkm_prof:
        with edkm_pipeline.step():
            out_e = edkm_cluster(w_edkm, clusterer_e)
            (out_e * out_e).sum().backward()
    print("eDKM saved-tensor footprint:   ",
          format_bytes(edkm_prof.peak_delta("cpu")))
    reduction = dense_prof.peak_delta("cpu") / max(edkm_prof.peak_delta("cpu"), 1)
    print(f"memory reduction: {reduction:.1f}x "
          f"(paper reports ~130x at LLaMA-7B scale)")

    # Same math: outputs and gradients agree between the two paths.
    grad_gap = np.abs(w_dense.grad.numpy() - w_edkm.grad.numpy()).max()
    print(f"max gradient difference dense vs eDKM: {grad_gap:.2e}")

    # ------------------------------------------------------------------
    # 3. Palettize: the deployable artifact.
    # ------------------------------------------------------------------
    state = clusterer_e.refine(w_edkm)
    assignments = clusterer_e.hard_assign(w_edkm)
    palette = PalettizedTensor.from_assignments(
        state.centroids, assignments, config.bits, tuple(w_edkm.shape)
    )
    fp16_bytes = 2 * w_edkm.numel
    print(f"palettized artifact: {format_bytes(palette.nbytes)} "
          f"({palette.bits_per_weight:.2f} bits/weight) "
          f"vs fp16 {format_bytes(fp16_bytes)}")
    error = np.mean((palette.dequantize().reshape(-1) - weights_np) ** 2)
    print(f"reconstruction MSE: {error:.2e} (weight variance "
          f"{weights_np.var():.2e})")


if __name__ == "__main__":
    main()
