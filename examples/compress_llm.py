"""End-to-end LLM compression: the paper's headline experiment in miniature.

Fine-tunes a LLaMA-architecture model on a synthetic instruction dataset
*while clustering its weights to 3 bits with eDKM*, then palettizes and
evaluates against the uncompressed model and a 3-bit RTN baseline on seven
lm-eval-style suites -- the Table 3 pipeline at substrate scale.

Run:  python examples/compress_llm.py         (~2-3 minutes on a laptop)
"""


import repro.tensor as rt
from repro.baselines import quantize_model_rtn
from repro.core import DKMConfig, EDKMConfig, ModelCompressor, SavedTensorPipeline
from repro.data import (
    FactWorld,
    alpaca_batches,
    corpus_batches,
    generate_alpaca,
    generate_corpus,
    standard_suites,
)
from repro.data.corpus import corpus_vocabulary
from repro.distributed import LearnerGroup
from repro.evalsuite import evaluate_suites, model_size_gb, paper_schemes
from repro.llm import LLAMA_7B, MICRO, FinetuneConfig, WordTokenizer, build_model, train_causal_lm
from repro.memory import format_bytes


def pretrain(world, tokenizer):
    """The 'pretrained LLaMA' stand-in: fit the fact corpus + instructions."""
    corpus = generate_corpus(world, 2400, seed=1)
    alpaca = generate_alpaca(world, 800, seed=2)
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    model.to(rt.GPU)
    config = FinetuneConfig(lr=3e-3)
    train_causal_lm(
        model, corpus_batches(corpus, tokenizer, 16, rt.GPU, epochs=2, seed=3), config
    )
    train_causal_lm(
        model, alpaca_batches(alpaca, tokenizer, 16, rt.GPU, epochs=1, seed=4), config
    )
    return model, alpaca


def clone_weights(model, tokenizer, state):
    fresh = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    fresh.to(rt.GPU)
    for name, param in fresh.state_dict().items():
        param.copy_(state[name])
    return fresh


def main() -> None:
    world = FactWorld(seed=0)
    tokenizer = WordTokenizer(corpus_vocabulary(world))
    suites = standard_suites(world, n_items=25)

    print("pre-training the fp16 stand-in model...")
    model, alpaca = pretrain(world, tokenizer)
    snapshot = {k: v.numpy().copy() for k, v in model.state_dict().items()}

    fp16_report = evaluate_suites(model, tokenizer, suites, rt.GPU)
    print(f"fp16 mean accuracy: {fp16_report.mean_accuracy:.1f}%")

    # --- RTN 3-bit post-training baseline --------------------------------
    rtn_model = clone_weights(model, tokenizer, snapshot)
    quantize_model_rtn(rtn_model, bits=3, per_channel=False)
    rtn_report = evaluate_suites(rtn_model, tokenizer, suites, rt.GPU)
    print(f"RTN 3-bit mean accuracy: {rtn_report.mean_accuracy:.1f}%")

    # --- eDKM 3-bit train-time clustering ---------------------------------
    print("fine-tuning with eDKM 3-bit train-time clustering...")
    edkm_model = clone_weights(model, tokenizer, snapshot)
    compressor = ModelCompressor(DKMConfig(bits=3, iters=4))
    compressor.compress(edkm_model)
    pipeline = SavedTensorPipeline(EDKMConfig(group=LearnerGroup(8)))
    result = train_causal_lm(
        edkm_model,
        alpaca_batches(alpaca, tokenizer, 16, rt.GPU, epochs=2, seed=7),
        FinetuneConfig(lr=1e-3),
        pipeline=pipeline,
    )
    print(f"  compression fine-tune loss: "
          f"{result.losses[0]:.3f} -> {result.final_loss:.3f}")
    print(f"  saved-tensor copies avoided by marshaling: "
          f"{pipeline.stats.copies_avoided}, sharded tensors: "
          f"{pipeline.stats.tensors_sharded}")

    edkm_report = evaluate_suites(edkm_model, tokenizer, suites, rt.GPU)
    print(f"eDKM 3-bit mean accuracy: {edkm_report.mean_accuracy:.1f}%")

    # --- palettize and report sizes ---------------------------------------
    report = compressor.finalize(edkm_model)
    fp16_bytes = 2 * sum(p.numel for p in edkm_model.parameters())
    print(f"\npalettized model: {format_bytes(report.total_bytes)} vs fp16 "
          f"{format_bytes(fp16_bytes)} "
          f"({fp16_bytes / report.total_bytes:.1f}x smaller)")

    schemes = paper_schemes()
    print(f"at true LLaMA-7B dimensions this configuration is "
          f"{model_size_gb(LLAMA_7B, schemes['edkm3']):.2f} GB "
          f"(paper: 2.5 GB; fp16: 12.6 GB)")

    print("\nper-suite accuracy (fp16 / RTN-3bit / eDKM-3bit):")
    for name in fp16_report.results:
        print(f"  {name:20s} {fp16_report.results[name].accuracy:5.1f}  "
              f"{rtn_report.results[name].accuracy:5.1f}  "
              f"{edkm_report.results[name].accuracy:5.1f}")


if __name__ == "__main__":
    main()
