"""Compare every compression baseline on one weight matrix + calibration set.

A compact, model-free view of the Table 3 contenders: quantize the same
Linear weight with RTN / GPTQ / AWQ / SmoothQuant / k-means palettization /
DKM clustering at 3 and 4 bits, and report both raw weight error and -- the
metric GPTQ/AWQ actually optimize -- the layer *output* error on calibration
inputs.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

import repro.tensor as rt
from repro.baselines import fake_quantize, gptq_quantize_weight
from repro.baselines.awq import awq_scale_search
from repro.baselines.calibration import LayerCalibration
from repro.baselines.smoothquant import smoothquant_scales
from repro.bench.tables import render_table
from repro.core import DKMConfig
from repro.core.dkm import DKMClusterer
from repro.core.palettize import kmeans_palettize


def build_problem(out_features=64, in_features=128, n_samples=512, seed=0):
    """A weight matrix and correlated calibration activations."""
    rng = np.random.default_rng(seed)
    weight = (rng.standard_normal((out_features, in_features)) * 0.08).astype(
        np.float32
    )
    # Correlated activations with a few dominant channels (AWQ's regime).
    base = rng.standard_normal((n_samples, 8))
    mix = rng.standard_normal((8, in_features))
    x = (base @ mix).astype(np.float64)
    x[:, : in_features // 8] *= 6.0  # salient channels
    calibration = LayerCalibration(in_features=in_features)
    calibration.update(x)
    return weight, calibration, x.astype(np.float32)


def evaluate(name, weight, reconstructed, x, rows):
    reference = x @ weight.T
    output_err = float(np.mean((x @ reconstructed.T - reference) ** 2))
    weight_err = float(np.mean((reconstructed - weight) ** 2))
    rows.append([name, weight_err, output_err])


def run_bits(bits: int):
    weight, calibration, x = build_problem()
    rows = []

    evaluate(f"RTN per-tensor", weight,
             fake_quantize(weight, bits, per_channel=False), x, rows)
    evaluate(f"RTN per-channel", weight,
             fake_quantize(weight, bits, per_channel=True), x, rows)

    gptq = gptq_quantize_weight(weight, calibration.hessian, bits, group_size=32)
    evaluate(f"GPTQ g32", weight, gptq, x, rows)

    scales, alpha, _ = awq_scale_search(weight, calibration, bits, group_size=32)
    awq = fake_quantize(weight * scales[None, :], bits, group_size=32) / scales[None, :]
    evaluate(f"AWQ g32 (alpha={alpha})", weight, awq, x, rows)

    sq_scales = smoothquant_scales(weight, calibration, alpha=0.5)
    sq = fake_quantize(weight * sq_scales[None, :], bits) / sq_scales[None, :]
    evaluate("SmoothQuant", weight, sq, x, rows)

    km = kmeans_palettize(weight, bits)
    evaluate("k-means palette (PTQ)", weight, km.dequantize(), x, rows)

    w_t = rt.Tensor.from_numpy(weight, dtype="bfloat16", device="gpu")
    clusterer = DKMClusterer(DKMConfig(bits=bits, iters=25))
    clusterer.refine(w_t)
    assignments = clusterer.hard_assign(w_t)
    dkm = clusterer.state.centroids[assignments].reshape(weight.shape)
    evaluate("DKM clustering (hard)", weight, dkm, x, rows)

    print(render_table(
        ["method", "weight MSE", "output MSE"],
        rows,
        title=f"\n{bits}-bit compression of one (64 x 128) Linear weight",
        float_fmt="{:.3e}",
    ))


def main() -> None:
    for bits in (4, 3):
        run_bits(bits)
    print(
        "\nReading: GPTQ/AWQ minimize *output* error via calibration;"
        "\nnon-linear codebooks (k-means / DKM) beat uniform grids on weight"
        "\nerror at equal bits -- and DKM's train-time version additionally"
        "\nadapts the task loss (see examples/compress_llm.py)."
    )


if __name__ == "__main__":
    main()
