"""Cross-device tensor marshaling, from first principles.

Recreates the paper's Table 1 and Fig. 2 step by step:

1. Table 1 -- a view is free on GPU (shared storage) but each ``.to('cpu')``
   allocates a fresh host storage, so the CPU ends up holding the same data
   twice;
2. Fig. 2  -- the marshaling layer interposes on saved-tensor offloads,
   walks the forward graph through view-type ops (<= 4 hops), and replaces
   the duplicate copy with a reference plus the view-replay metadata.

Run:  python examples/marshaling_demo.py
"""

from repro.bench import run_fig2, run_table1
from repro.bench.tables import render_table


def main() -> None:
    print("--- Table 1: what cross-device moves cost ---")
    rows = run_table1()
    print(render_table(
        ["line", "code", "GPU (MB)", "CPU (MB)"],
        [[r.line, r.code, r.gpu_mb, r.cpu_mb] for r in rows],
    ))
    print(
        "\nLines 0-1: the view shares the GPU storage, so GPU stays at 4 MB."
        "\nLines 2-3: each .to('cpu') materializes its own host storage --"
        "\n8 MB on CPU for 4 MB of distinct data.  That redundancy, repeated"
        "\nacross a training step's saved tensors, is what marshaling removes."
    )

    print("\n--- Fig. 2: the marshaling layer at work ---")
    base = run_fig2(marshal=False)
    marshal = run_fig2(marshal=True)
    print(render_table(
        ["config", "CPU peak (MB)", "GPU->CPU traffic (MB)",
         "copies", "refs (avoided)", "hits by hop distance"],
        [
            ["offload only", base.cpu_peak_mb, base.offload_traffic_mb,
             base.copies_made, base.copies_avoided, str(base.hops_histogram)],
            ["offload + marshaling", marshal.cpu_peak_mb,
             marshal.offload_traffic_mb, marshal.copies_made,
             marshal.copies_avoided, str(marshal.hops_histogram)],
        ],
    ))
    print(
        "\nThe 0-hop hit is a tensor saved twice by the same graph; the"
        "\n1-hop hit is the view x1 resolved to x0's existing host copy by"
        "\nwalking one View edge in the forward graph -- exactly Fig. 2(b):"
        "\nthe reference is stored together with the ops needed to rebuild"
        "\nthe view at unpack time."
    )


if __name__ == "__main__":
    main()
