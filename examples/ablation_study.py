"""Ablation study: reproduce the paper's Table 2 and its design sweeps.

Measures the saved-tensor CPU footprint of one DKM-compressed attention
layer under every combination of the paper's three techniques --
M(arshaling), U(niquification), S(harding) -- plus the design-choice sweeps
called out in DESIGN.md: learner count and bit width.

Run:  python examples/ablation_study.py        (~1 minute)
"""

from repro.bench import PAPER_TABLE2, run_learner_sweep, run_table2
from repro.bench.tables import render_table
from repro.memory import format_bytes


def main() -> None:
    print("running the M/U/S ablation (one attention layer, 3-bit, |L|=8)...")
    result = run_table2(dim=256, n_heads=8, seq_len=16, bits=3, n_learners=8)

    rows = []
    for row in result.rows:
        paper_mb, paper_red, paper_rt = PAPER_TABLE2[row.name]
        rows.append(
            [
                row.name,
                format_bytes(row.cpu_peak_bytes),
                f"{result.reduction(row):.1f}x",
                f"{row.runtime_s:.2f}s",
                f"{paper_mb:.0f} MB",
                f"{paper_red}x",
            ]
        )
    print(render_table(
        ["config", "CPU peak", "reduction", "runtime",
         "paper MB (7B scale)", "paper reduction"],
        rows,
        title="\nTable 2 reproduction",
    ))

    print("\nsharding scaling with learner count (M+U+S):")
    sweep = run_learner_sweep(n_learners_options=(1, 2, 4, 8))
    rows = [
        [n, format_bytes(res.rows[1].cpu_peak_bytes),
         f"{res.reduction(res.rows[1]):.1f}x"]
        for n, res in sweep.items()
    ]
    print(render_table(["|L|", "per-learner CPU peak", "reduction"], rows))

    print(
        "\nReading: M alone deduplicates repeated saves (the paper's 2.9x);"
        "\nU collapses the attention map to a table + index list (23.5x);"
        "\nS splits the big saved tensors across learners (16.4x);"
        "\ntogether they land two orders of magnitude (paper: 129.9x)."
    )


if __name__ == "__main__":
    main()
