"""Regenerates paper Table 3: accuracy of compressed LLaMA models.

Full end-to-end run at substrate scale: pre-train the MICRO model on the
synthetic world, apply each compression scheme, score the seven suites.
The absolute accuracies belong to the synthetic world; the paper's claims
are the *relative* ones asserted at the bottom:

- eDKM 3-bit >= the 3-bit uniform baselines on mean accuracy;
- eDKM 3-bit within a few points of fp16;
- 4-bit schemes sit close to fp16, 3-bit uniform schemes degrade;
- eDKM has the smallest model size (asserted in bench_claims_analytic).

This is the slowest benchmark (several minutes: one pre-train plus two
compression fine-tunes and nine evaluation sweeps).
"""

from repro.bench import PAPER_TABLE3, SUITE_ORDER, Table3Harness
from repro.bench.tables import render_table

from conftest import emit

_PAPER_KEYS = {
    "LLaMA (fp16)": "fp16",
    "RTN": None,  # bits-dependent, resolved below
    "GPTQ": None,
    "AWQ": None,
    "LLM-QAT": "llmqat4",
    "eDKM": "edkm3",
}

_COLUMNS = ["piqa", "hellaswag", "winogrande", "arc_e", "arc_c", "triviaqa", "mmlu"]


def _paper_row(method: str, bits: int):
    key = {
        ("LLaMA (fp16)", 16): "fp16",
        ("RTN", 4): "rtn4",
        ("GPTQ", 4): "gptq4",
        ("AWQ", 4): "awq4",
        ("LLM-QAT", 4): "llmqat4",
        ("GPTQ", 3): "gptq3",
        ("AWQ", 3): "awq3",
        ("eDKM", 3): "edkm3",
    }.get((method, bits))
    return PAPER_TABLE3.get(key) if key else None


def test_table3_accuracy(benchmark, results_dir):
    harness = Table3Harness(n_items=25)

    def run_all():
        rows = [harness.run_fp16()]
        rows.append(harness.run_rtn(4))
        rows.append(harness.run_gptq(4))
        rows.append(harness.run_awq(4))
        rows.append(harness.run_llm_qat(4))
        rows.append(harness.run_gptq(3))
        rows.append(harness.run_awq(3))
        rows.append(harness.run_edkm(3))
        rows.append(harness.run_rtn(3))  # extra row: 3-bit RTN reference
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        accs = row.accuracies()
        table_rows.append(
            [row.method, row.bits, row.size_gb] + accs + [row.mean_accuracy]
        )
    rendered = render_table(
        ["method", "bits", "size (GB)"] + SUITE_ORDER + ["mean"],
        table_rows,
        title="Table 3: accuracy of compressed models (synthetic suites, MICRO scale)",
    )

    # Paper-vs-measured appendix for rows the paper reports.
    lines = [rendered, "", "paper reference rows (percent):"]
    for row in rows:
        paper = _paper_row(row.method, row.bits)
        if paper is None:
            continue
        cells = "  ".join(
            f"{col}={paper[col]!s:>5}" for col in _COLUMNS
        )
        lines.append(f"  {row.method:<12} {row.bits}bit  {cells}")
    emit(results_dir, "table3", "\n".join(lines))

    by_key = {(r.method, r.bits): r for r in rows}
    fp16 = by_key[("LLaMA (fp16)", 16)]
    edkm3 = by_key[("eDKM", 3)]
    gptq3 = by_key[("GPTQ", 3)]
    awq3 = by_key[("AWQ", 3)]
    rtn3 = by_key[("RTN", 3)]
    rtn4 = by_key[("RTN", 4)]

    # Paper claim 1: eDKM-3bit outperforms the other 3-bit schemes.
    assert edkm3.mean_accuracy >= gptq3.mean_accuracy - 1.0
    assert edkm3.mean_accuracy >= awq3.mean_accuracy - 1.0
    assert edkm3.mean_accuracy >= rtn3.mean_accuracy - 1.0
    # Paper claim 2: eDKM-3bit is close to the fp16 source model.
    assert edkm3.mean_accuracy >= fp16.mean_accuracy - 8.0
    # Paper shape: 4-bit RTN is mild; the fp16 model is clearly above chance.
    assert rtn4.mean_accuracy >= fp16.mean_accuracy - 8.0
    assert fp16.mean_accuracy > 60.0
