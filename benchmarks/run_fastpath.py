#!/usr/bin/env python
"""Deterministic fast-path micro-benchmark entry point.

Runs the old-vs-new comparison of the eDKM hot loop (histogram uniquify,
bincount segment reductions, per-layer step cache), asserts the fast path
is not slower than the legacy path on the reference shapes, and writes the
machine-readable artifact ``benchmarks/results/BENCH_fastpath.json``.

Kept out of the tier-1 pytest run (timing assertions do not belong in the
correctness suite); run it as a single command:

    PYTHONPATH=src python benchmarks/run_fastpath.py

Exit status is non-zero if any bit-exactness or not-slower assertion fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.fastpath import REFERENCE_SHAPES, run_fastpath  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_fastpath.json")

# The histogram uniquify must beat the sort by this factor at N >= 1M
# (acceptance criterion); at small N it only has to not be slower.
LARGE_N = 1 << 20
LARGE_N_MIN_SPEEDUP = 2.0

# The bincount scatter must beat the float64-accurate legacy outright, and
# may not drift past this multiple of the fastest (dtype-matched float32)
# legacy formulation -- the guardrail that catches a real regression even
# though the accuracy-equivalent baseline is the headline comparison.
MATCHED_RATIO_CEILING = 3.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min is reported)"
    )
    parser.add_argument("--steps", type=int, default=4, help="training steps timed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller shapes and fewer repeats (CI smoke configuration); "
        "all bit-exactness and not-slower assertions still apply",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    if args.quick:
        uniquify_sizes = (1 << 16, 1 << 20)
        repeats = min(args.repeats, 2)
        step_weights = 1 << 16
        steps = min(args.steps, 2)
    else:
        uniquify_sizes = REFERENCE_SHAPES
        repeats = args.repeats
        step_weights = 1 << 18
        steps = args.steps
    result = run_fastpath(
        uniquify_sizes=uniquify_sizes,
        repeats=repeats,
        step_weights=step_weights,
        steps=steps,
        seed=args.seed,
    )

    failures: list[str] = []
    for row in result.uniquify:
        label = f"uniquify N={row.n_weights}"
        print(
            f"{label:<28} sort {row.sort_seconds:.5f}s  "
            f"histogram {row.histogram_seconds:.5f}s  "
            f"speedup {row.speedup:.1f}x  bit-identical={row.bit_identical}"
        )
        if not row.bit_identical:
            failures.append(f"{label}: histogram output differs from np.unique")
        if row.speedup < 1.0:
            failures.append(f"{label}: fast path slower ({row.speedup:.2f}x)")
        if row.n_weights >= LARGE_N and row.speedup < LARGE_N_MIN_SPEEDUP:
            failures.append(
                f"{label}: speedup {row.speedup:.2f}x below the "
                f"{LARGE_N_MIN_SPEEDUP}x floor for N >= 1M"
            )
    for row in result.scatter:
        label = f"{row.kind} N={row.n_elements}"
        print(
            f"{label:<28} add.at(f64) {row.add_at_mixed_seconds:.5f}s  "
            f"add.at(f32) {row.add_at_matched_seconds:.5f}s  "
            f"bincount {row.bincount_seconds:.5f}s  "
            f"speedup {row.speedup:.1f}x  "
            f"vs-matched {row.matched_ratio:.2f}  max|err| {row.max_abs_error:.2e}"
        )
        if row.max_abs_error > 1e-3:
            failures.append(f"{label}: bincount result diverges from np.add.at")
        if row.speedup < 1.0:
            failures.append(
                f"{label}: slower than the float64-accurate legacy "
                f"({row.speedup:.2f}x)"
            )
        if row.matched_ratio > MATCHED_RATIO_CEILING:
            failures.append(
                f"{label}: bincount is {row.matched_ratio:.2f}x the "
                f"dtype-matched add.at (ceiling {MATCHED_RATIO_CEILING}x)"
            )
    for row in result.step:
        label = f"train step N={row.n_weights}"
        print(
            f"{label:<28} legacy {row.legacy_seconds_per_step:.5f}s/step  "
            f"fastpath {row.fastpath_seconds_per_step:.5f}s/step  "
            f"speedup {row.speedup:.1f}x  uniquify/step "
            f"{row.legacy_uniquify_per_step:.0f}->{row.fastpath_uniquify_per_step:.0f}"
        )
        if row.fastpath_uniquify_per_step != 1.0:
            failures.append(
                f"{label}: expected exactly one uniquify per step, got "
                f"{row.fastpath_uniquify_per_step}"
            )
        if row.speedup < 1.0:
            failures.append(f"{label}: fast path slower ({row.speedup:.2f}x)")

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload = result.to_json_dict()
    # Record the *effective* configuration (--quick clamps both knobs).
    payload["seed"] = args.seed
    payload["repeats"] = repeats
    payload["steps"] = steps
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all fast-path assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
