#!/usr/bin/env python
"""Compression-backend benchmark entry point.

Times a multi-layer ``precluster`` sweep through every
``CompressorConfig.backend`` (``serial`` / ``thread`` / ``process``),
asserts the pooled backends are bit-identical to serial (centroids,
assignments, reconstruction errors, per-layer step-cache counters),
isolates each backend's dispatch overhead on tiny layers, verifies every
shared-memory block the process engine exported is unlinked after the
run, and writes ``benchmarks/results/BENCH_backends.json``
(schema: ``docs/benchmarks.md``).

There is deliberately no wall-clock speedup gate: pool backends cannot
beat serial without spare cores, and CI runners are noisy -- the recorded
wall times and per-layer dispatch costs are there to read, while the
bit-identity, counter, and shm-cleanup assertions always fail the run.

    PYTHONPATH=src python benchmarks/bench_backends.py          # full
    PYTHONPATH=src python benchmarks/bench_backends.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.backends import run_backends  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_backends.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--layers", type=int, default=8)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min is reported)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller shapes and a single repeat (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    if args.quick:
        result = run_backends(
            n_layers=args.layers,
            in_features=128,
            out_features=128,
            workers=min(args.workers, 2),
            repeats=1,
            seed=args.seed,
        )
    else:
        result = run_backends(
            n_layers=args.layers,
            workers=args.workers,
            repeats=args.repeats,
            seed=args.seed,
        )

    failures: list[str] = []
    payload = result.to_json_dict()
    for section, label in (("sweeps", "sweep"), ("dispatch", "dispatch")):
        for row in payload[section]:
            speedup = row["speedup"]
            print(
                f"{label:<9} {row['backend']:<8} "
                f"{row['n_layers']}x{row['weights_per_layer']}w  "
                f"{row['wall_seconds']:.4f}s"
                + (f"  speedup {speedup:.2f}x" if speedup is not None else "")
                + f"  bit-identical={row['bit_identical']}"
                f"  stats-identical={row['stats_identical']}"
            )
            if not row["bit_identical"]:
                failures.append(
                    f"{label} {row['backend']}: outputs differ from serial"
                )
            if not row["stats_identical"]:
                failures.append(
                    f"{label} {row['backend']}: step-cache counters differ"
                )
    if not result.shm_cleaned:
        failures.append("process backend left shared-memory blocks linked")
    print(f"shm-cleaned={result.shm_cleaned}  cpu_count={result.cpu_count}")

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all backend assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
