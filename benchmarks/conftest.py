"""Benchmark-suite config: src-layout imports and a results directory.

Every benchmark renders a paper-style table and writes it under
``benchmarks/results/`` so the numbers survive the pytest run (captured
stdout is otherwise only shown on failure).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a rendered table and persist it under results/."""
    print(f"\n{text}\n")
    with open(os.path.join(results_dir, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
