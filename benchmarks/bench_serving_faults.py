#!/usr/bin/env python
"""Chaos-serving benchmark entry point.

Trains one small model, compresses it, and replays the same request
load through a matrix of injected serving faults (fault kind x client
count) with clients that retry on the typed ``StepFailed`` crash
boundary, plus a breaker-repromotion scenario and a draining-shutdown
scenario.  The run is *gated* on:

- bit-identical completions in **every** scenario -- including the runs
  where the watchdog revoked a hung loop or the circuit breaker tripped
  a layer onto the dense path -- matching offline ``generate`` on the
  same compressed weights;
- every armed fault spec actually fired (reconciled in the injector's
  fault log), so green cannot mean "the chaos never happened";
- no stranded futures: every client thread joins, every submitted
  request resolves;
- ``stop()`` returning within a fixed deadline in every scenario;
- the breaker round-trip ending with every breaker closed, and
  ``stop(drain=True)`` completing all in-flight requests.

Wall times are recorded but not gated -- CI runners are noisy.  Writes
``benchmarks/results/BENCH_serving_faults.json`` (schema:
``docs/benchmarks.md``).

    PYTHONPATH=src python benchmarks/bench_serving_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_serving_faults.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.serving_faults import (  # noqa: E402
    STOP_DEADLINE_S,
    run_serving_faults,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_serving_faults.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--prompts", type=int, default=4)
    parser.add_argument("--max-new-tokens", type=int, default=6)
    parser.add_argument("--bits", type=int, default=4)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller corpus and single client count (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    result = run_serving_faults(
        n_prompts=args.prompts,
        max_new_tokens=4 if args.quick else args.max_new_tokens,
        bits=args.bits,
        sentences=120 if args.quick else 400,
        epochs=1 if args.quick else 2,
        client_matrix=(4,) if args.quick else (1, 4),
        seed=args.seed,
    )

    payload = result.to_json_dict()
    failures: list[str] = []
    for row in payload["rows"]:
        events = ", ".join(
            f"{kind}x{count}" for kind, count in sorted(row["fault_events"].items())
        )
        print(
            f"{row['scenario']:<22} clients={row['clients']}  "
            f"completed={row['completed']}/{row['submitted']}  "
            f"retries={row['client_retries']}  "
            f"identical={row['tokens_identical']}  "
            f"stop={row['stop_s']:.2f}s  "
            f"events=[{events or '-'}]"
        )
        if not row["tokens_identical"]:
            failures.append(
                f"{row['scenario']}: completions differ from the offline "
                "reference (faults were not survived bit-identically)"
            )
        if row["stranded"]:
            failures.append(
                f"{row['scenario']}: a client thread never joined -- "
                "a submitted request was stranded"
            )
        if row["unfired_specs"]:
            failures.append(
                f"{row['scenario']}: {row['unfired_specs']} armed fault "
                "spec(s) never fired (the chaos did not happen)"
            )
        if row["stop_s"] > STOP_DEADLINE_S:
            failures.append(
                f"{row['scenario']}: stop() took {row['stop_s']:.2f}s "
                f"(deadline {STOP_DEADLINE_S:.0f}s)"
            )

    breaker = payload["breaker"]
    print(
        f"breaker: trips={breaker['trips']} "
        f"repromotions={breaker['repromotions']} "
        f"final_states_closed={breaker['final_states_closed']}"
    )
    if breaker["trips"] == 0:
        failures.append("breaker never tripped (kernel faults went unnoticed)")
    if breaker["repromotions"] == 0:
        failures.append(
            "breaker never re-promoted (probation path was not exercised)"
        )
    if not breaker["final_states_closed"]:
        failures.append(
            "breaker-repromotion scenario ended with a non-closed breaker"
        )
    drain = payload["drain"]
    print(
        f"drain: completed={drain['completed']}/{payload['n_prompts']} "
        f"ok={drain['ok']}"
    )
    if not drain["ok"]:
        failures.append(
            "stop(drain=True) did not finish all in-flight requests "
            "bit-identically within the deadline"
        )
    hang_rows = [r for r in payload["rows"] if r["kind"] == "hang_step"]
    if hang_rows and not any(r["watchdog_kills"] for r in hang_rows):
        failures.append(
            "hang_step scenario ran without a watchdog kill "
            "(the hang was not injected or not detected)"
        )
    print(
        f"tokens-identical={payload['tokens_identical']}  "
        f"faults-reconciled={payload['faults_reconciled']}  "
        f"no-stranded-futures={payload['no_stranded_futures']}  "
        f"shutdown-bounded={payload['shutdown_bounded']}  "
        f"cpu_count={payload['cpu_count']}"
    )

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all chaos-serving assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
