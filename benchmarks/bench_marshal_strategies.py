#!/usr/bin/env python
"""Marshal search-strategy benchmark entry point.

Runs one deterministic transformer forward+backward under the saved-tensor
pipeline for each marshal ``search_strategy`` -- ``graph`` (paper),
``storage-id`` (oracle), ``fingerprint`` (sampled-stride content hash) --
plus the ``fingerprint+content`` variant that dedups verified
byte-identical storages, and writes hit rate, probe cost, and wall time to
``benchmarks/results/BENCH_marshal.json``.

Hard assertions (non-zero exit on failure):

- ``fingerprint`` dedups the *identical* set of storages as ``storage-id``
  (pack-order event streams compared element-wise);
- per-strategy counters reconcile:
  ``copies_made + copies_avoided == tensors_packed == hits + misses``;
- the content variant never dedups less than the oracle.

Kept out of the tier-1 pytest run (timing does not belong in the
correctness suite); run it as a single command:

    PYTHONPATH=src python benchmarks/bench_marshal_strategies.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.marshal_strategies import run_marshal_strategies  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_marshal.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min is reported)"
    )
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--seq-len", type=int, default=16)
    parser.add_argument("--hop-budget", type=int, default=4)
    parser.add_argument("--fingerprint-max-samples", type=int, default=64)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: overrides --dim/--seq-len/--repeats "
        "with a smaller model and a single repeat (the effective values "
        "are recorded in the JSON payload)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    if args.quick:
        dim, hidden_dim, seq_len, repeats = 32, 64, 8, 1
    else:
        dim, hidden_dim, seq_len, repeats = args.dim, 128, args.seq_len, args.repeats
    effective = {
        "dim": dim,
        "hidden_dim": hidden_dim,
        "n_layers": args.layers,
        "seq_len": seq_len,
        "repeats": repeats,
        "hop_budget": args.hop_budget,
        "fingerprint_max_samples": args.fingerprint_max_samples,
    }
    result = run_marshal_strategies(
        dim=dim,
        n_layers=args.layers,
        hidden_dim=hidden_dim,
        seq_len=seq_len,
        hop_budget=args.hop_budget,
        fingerprint_max_samples=args.fingerprint_max_samples,
        repeats=repeats,
        seed=args.seed,
    )

    failures: list[str] = []
    rows = {row.strategy: row for row in result.rows}
    for row in result.rows:
        print(
            f"{row.strategy:<20} packed {row.tensors_packed:>4}  "
            f"hit-rate {row.hit_rate:.3f}  probe-cost {row.probe_cost:8.1f}  "
            f"wall {row.wall_seconds:.4f}s  reconcile={row.counters_reconcile}"
        )
        if not row.counters_reconcile:
            failures.append(
                f"{row.strategy}: copies_made + copies_avoided != tensors_packed "
                "or per-strategy hit/miss counters do not reconcile"
            )
    if not result.fingerprint_matches_oracle:
        failures.append(
            "fingerprint deduped a different set of storages than storage-id "
            "(pack-order event streams differ)"
        )
    oracle, content = rows.get("storage-id"), rows.get("fingerprint+content")
    if oracle and content and content.copies_avoided < oracle.copies_avoided:
        failures.append(
            "fingerprint+content deduped less than the storage-id oracle"
        )

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload = result.to_json_dict()
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["config"] = effective
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all marshal-strategy assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
