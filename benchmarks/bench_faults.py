#!/usr/bin/env python
"""Chaos-suite benchmark entry point (fault injection + crash recovery).

Runs the process backend's multi-sweep ``precluster`` workload under
every injectable fault class -- worker kill, hang (watchdog), delay,
transient op failure, corrupted delta payload, reaped shm block -- plus
the quarantine and backend-degradation policy scenarios, and gates on
the robustness contract: every chaotic run must end *bit-identical*
(centroids, assignments, temperatures, per-layer step-cache counters) to
an undisturbed serial run; every planned fault must appear in the fault
log; every shared-memory block must be unlinked after ``close()``; and a
run checkpointed after sweep 1, "crashed", and resumed into a fresh
compressor must match the uninterrupted run exactly.  Recovery wall-time
overhead is reported but not gated (respawn cost is host-dependent).
Writes ``benchmarks/results/BENCH_faults.json`` (schema:
``docs/benchmarks.md``).

    PYTHONPATH=src python benchmarks/bench_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.faults import run_faults  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_faults.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller layers + tighter watchdog (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    features = 48 if args.quick else 96
    result = run_faults(
        n_layers=args.layers,
        in_features=features,
        out_features=features,
        workers=args.workers,
        seed=args.seed,
        watchdog_s=1.0 if args.quick else 2.0,
    )

    payload = result.to_json_dict()
    failures: list[str] = []
    for row in payload["rows"]:
        overhead = row["recovery_overhead_seconds"]
        print(
            f"{row['scenario']:<14} ({'+'.join(row['kinds'])}) "
            f"{row['wall_seconds']:.3f}s ({overhead:+.3f}s vs clean)  "
            f"faults={row['faults_logged']} respawns={row['respawns']} "
            f"quarantined={row['quarantined']} "
            f"degraded_to={row['degraded_to'] or '-'}  "
            f"bit-identical={row['bit_identical']}  "
            f"stats-identical={row['stats_identical']}"
        )
        if not row["bit_identical"]:
            failures.append(
                f"{row['scenario']}: outputs differ from undisturbed serial run"
            )
        if not row["stats_identical"]:
            failures.append(
                f"{row['scenario']}: step-cache counters differ from serial"
            )
        if not row["log_reconciled"]:
            failures.append(
                f"{row['scenario']}: planned fault kind(s) "
                f"{row['kinds']} never appeared in the fault log"
            )
        if not row["shm_cleaned"]:
            failures.append(
                f"{row['scenario']}: shared-memory blocks left linked"
            )
        if not row["expectation_met"]:
            failures.append(
                f"{row['scenario']}: expected recovery action "
                "(respawn/quarantine/degrade) did not happen"
            )
    resume = payload["resume"]
    print(
        f"resume: checkpoint@sweep {resume['sweeps_completed_at_checkpoint']} "
        f"digest={resume['checkpoint_digest'][:12]}...  "
        f"bit-identical={resume['bit_identical']}  "
        f"stats-identical={resume['stats_identical']}"
    )
    if not resume["bit_identical"]:
        failures.append(
            "kill-then-resume: final outputs differ from uninterrupted run"
        )
    if not resume["stats_identical"]:
        failures.append(
            "kill-then-resume: step-cache counters differ from "
            "uninterrupted run"
        )

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all chaos assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
