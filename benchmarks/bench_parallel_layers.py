#!/usr/bin/env python
"""Parallel compression-engine benchmark entry point.

Times a multi-layer ``precluster`` sweep (per-layer refine + hard assign)
serially vs through the thread-pool layer fan-out, asserts the parallel
results are bit-identical to the serial sweep (centroids, assignments, and
per-layer step-cache hit/miss counters), demonstrates the chunked
``cluster_dense`` fallback on a layer the monolithic dense composition
refuses, and writes ``benchmarks/results/BENCH_parallel.json``.

Kept out of the tier-1 pytest run (timing assertions do not belong in the
correctness suite); run it as a single command:

    PYTHONPATH=src python benchmarks/bench_parallel_layers.py

The >= 1.5x speedup gate only applies on hosts with at least 4 CPUs (a
thread pool cannot beat serial on fewer cores); bit-exactness and the
chunked-fallback assertions always apply.  Exit status is non-zero on any
failed assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.parallel_layers import run_parallel_layers  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_parallel.json")

MIN_CORES_FOR_SPEEDUP_GATE = 4


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min is reported)"
    )
    parser.add_argument("--layers", type=int, default=8)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="speedup floor enforced when the host has >= 4 CPUs "
        "(0 disables the gate; correctness assertions always run)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller shapes and a single repeat (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    if args.quick:
        result = run_parallel_layers(
            n_layers=args.layers,
            in_features=256,
            out_features=512,
            workers=args.workers,
            repeats=max(1, min(args.repeats, 2)),
            # 4.7M weights: ~25% smaller than the 6M default while still
            # over the 4.19M threshold of the default dense limit at k=16.
            dense_weights=(1 << 22) + (1 << 19),
            seed=args.seed,
        )
    else:
        result = run_parallel_layers(
            n_layers=args.layers,
            workers=args.workers,
            repeats=args.repeats,
            seed=args.seed,
        )

    failures: list[str] = []
    gate_active = (
        args.min_speedup > 0 and result.cpu_count >= MIN_CORES_FOR_SPEEDUP_GATE
    )
    for row in result.sweeps:
        label = f"sweep layers={row.n_layers} x {row.weights_per_layer}w"
        print(
            f"{label:<36} serial {row.serial_seconds:.4f}s  "
            f"parallel({row.workers}w) {row.parallel_seconds:.4f}s  "
            f"speedup {row.speedup:.2f}x  bit-identical={row.bit_identical}  "
            f"stats-identical={row.stats_identical}"
        )
        if not row.bit_identical:
            failures.append(f"{label}: parallel outputs differ from serial")
        if not row.stats_identical:
            failures.append(f"{label}: per-layer step-cache counters differ")
        if gate_active and row.speedup < args.min_speedup:
            failures.append(
                f"{label}: speedup {row.speedup:.2f}x below the "
                f"{args.min_speedup}x floor ({result.cpu_count} cores)"
            )
    if not gate_active:
        print(
            f"speedup gate skipped (cpu_count={result.cpu_count}, "
            f"min_speedup={args.min_speedup})"
        )
    for row in result.chunked:
        label = f"chunked dense N={row.n_weights} k={row.n_clusters}"
        print(
            f"{label:<36} monolithic-raises={row.monolithic_raises}  "
            f"chunked({row.row_chunk}) {row.chunked_seconds:.3f}s  "
            f"matches-edkm={row.matches_edkm_forward}"
        )
        if not row.monolithic_raises:
            failures.append(
                f"{label}: monolithic dense composition did not refuse a "
                "layer over the saved-bytes limit"
            )
        if not row.matches_edkm_forward:
            failures.append(f"{label}: chunked output diverges from eDKM forward")

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload = result.to_json_dict()
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["min_speedup"] = args.min_speedup
    payload["speedup_gate_active"] = gate_active
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all parallel-engine assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
