"""Regenerates paper Table 2: the M/U/S memory-footprint ablation.

Workload: one DKM-compressed attention layer (dimension-scaled from the
LLaMA-7B layer the paper uses), forward + backward with saved tensors
overflowing to the CPU.  Paper reference (MB, reduction, runtime s):

    baseline 1600  1.0x   8.67      M+S     97  16.4x  15.9
    M         544  2.9x   8.97      M+U+S   12 129.9x  14.9
    M+U        68 23.5x   9.5

Absolute MBs differ (scaled workload); the *reductions* are the claim.
Also includes the learner-count and bit-width sweeps called out in
DESIGN.md, and the factorized-backward extension ablation.
"""

import numpy as np

from repro.bench import PAPER_TABLE2, run_learner_sweep, run_table2
from repro.bench.tables import render_table

from conftest import emit

MB = 1024 * 1024


def test_table2_mus_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        run_table2,
        kwargs=dict(dim=256, n_heads=8, seq_len=16, bits=3, iters=3, n_learners=8),
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in result.rows:
        paper_mb, paper_red, paper_rt = PAPER_TABLE2[row.name]
        rows.append(
            [
                row.name,
                row.cpu_peak_mb,
                f"{result.reduction(row):.1f}x",
                row.runtime_s,
                f"{result.slowdown(row):.2f}x",
                row.copies_avoided,
                row.tensors_sharded,
                f"{paper_red}x",
            ]
        )
    rendered = render_table(
        ["config", "CPU peak (MB)", "reduction", "runtime (s)", "rel. runtime",
         "dedup hits", "sharded", "paper reduction"],
        rows,
        title="Table 2: eDKM ablation (one attention layer, 3-bit, |L|=8)",
        float_fmt="{:.2f}",
    )
    emit(results_dir, "table2", rendered)

    by_name = {r.name: r for r in result.rows}
    # Shape assertions mirroring the paper's ordering.
    assert result.reduction(by_name["M"]) > 1.5
    assert result.reduction(by_name["M+U"]) > 10
    assert result.reduction(by_name["M+S"]) > 5
    assert result.reduction(by_name["M+U+S"]) > 100
    assert by_name["M+U+S"].cpu_peak_bytes == min(
        r.cpu_peak_bytes for r in result.rows
    )
    # M+U beats M+S here as in the paper (23.5x vs 16.4x).
    assert by_name["M+U"].cpu_peak_bytes < by_name["M+S"].cpu_peak_bytes


def test_table2_learner_sweep(benchmark, results_dir):
    sweep = benchmark.pedantic(
        run_learner_sweep,
        kwargs=dict(n_learners_options=(1, 2, 4, 8), dim=256, seq_len=16),
        rounds=1,
        iterations=1,
    )
    rows = []
    reductions = {}
    for n, result in sweep.items():
        full = result.rows[1]
        reductions[n] = result.reduction(full)
        rows.append([n, full.cpu_peak_mb, f"{reductions[n]:.1f}x"])
    rendered = render_table(
        ["learners |L|", "M+U+S CPU peak (MB)", "reduction vs baseline"],
        rows,
        title="Table 2 ablation: sharding benefit vs learner count",
        float_fmt="{:.3f}",
    )
    emit(results_dir, "table2_learners", rendered)
    assert reductions[8] > reductions[2] > reductions[1] * 0.9


def test_table2_bits_sweep(benchmark, results_dir):
    def run():
        from repro.bench import run_bits_sweep

        return run_bits_sweep(bits_options=(2, 3, 4), dim=192, seq_len=16)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for bits, result in sweep.items():
        base = result.rows[0]
        full = result.rows[-1]
        rows.append(
            [bits, 2**bits, base.cpu_peak_mb, full.cpu_peak_mb,
             f"{result.reduction(full):.1f}x"]
        )
    rendered = render_table(
        ["bits", "|C|", "baseline (MB)", "M+U+S (MB)", "reduction"],
        rows,
        title="Table 2 ablation: bit width (map scales with 2^bits)",
        float_fmt="{:.3f}",
    )
    emit(results_dir, "table2_bits", rendered)
    baselines = [sweep[b].rows[0].cpu_peak_bytes for b in (2, 3, 4)]
    # The dense map grows with the codebook.
    assert baselines[0] < baselines[1] < baselines[2]


def test_backward_mode_ablation(benchmark, results_dir):
    """Extension: paper-faithful map reconstruction vs factorized backward."""
    import time

    import repro.tensor as rt
    from repro.core import DKMConfig
    from repro.core.dkm import DKMClusterer
    from repro.core.edkm import edkm_cluster

    values = (np.random.default_rng(0).standard_normal(1 << 16) * 0.05).astype(
        np.float32
    )

    def run_mode(reconstruct):
        w = rt.Tensor.from_numpy(
            values, dtype="bfloat16", device="gpu", requires_grad=True
        )
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        start = time.perf_counter()
        out = edkm_cluster(w, clusterer, reconstruct_backward=reconstruct)
        (out * out).sum().backward()
        return time.perf_counter() - start, w.grad.numpy()

    def run_both():
        return run_mode(True), run_mode(False)

    (t_recon, g_recon), (t_fact, g_fact) = benchmark.pedantic(
        run_both, rounds=3, iterations=1
    )
    rendered = render_table(
        ["backward mode", "fwd+bwd time (s)", "max |grad diff|"],
        [
            ["reconstruct dense map (paper)", t_recon, 0.0],
            ["factorized unique-space (ext.)", t_fact,
             float(np.abs(g_recon - g_fact).max())],
        ],
        title="Extension ablation: eDKM backward implementation",
        float_fmt="{:.4f}",
    )
    emit(results_dir, "backward_mode", rendered)
    assert np.allclose(g_recon, g_fact, atol=1e-4 * max(np.abs(g_recon).max(), 1))
