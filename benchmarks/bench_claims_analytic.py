"""Regenerates the paper's Section 1/2 analytic claims at LLaMA-7B scale.

All values are architecture-spec arithmetic: fp16 model size (12.6 GB),
the 4-bit attention-map wall (>= 224 GB), and the eDKM 3-bit artifact
(2.5 GB), plus the full Table 3 size column.
"""

import pytest

from repro.bench import run_claims
from repro.bench.tables import render_table
from repro.evalsuite import model_size_gb, paper_schemes
from repro.llm import LLAMA_7B

from conftest import emit

PAPER_SIZES_GB = {
    "fp16": 12.6, "rtn4": 3.5, "gptq4_g128": 3.7, "awq4_g128": 3.7,
    "llmqat4": 3.5, "gptq3_g128": 3.0, "awq3_g128": 3.0, "edkm3": 2.5,
}


def test_analytic_claims(benchmark, results_dir):
    claims = benchmark.pedantic(run_claims, rounds=1, iterations=1)
    rendered = render_table(
        ["claim", "paper", "measured", "unit", "rel. err"],
        [
            [c.label, c.paper_value, c.measured_value, c.unit,
             f"{c.relative_error * 100:.1f}%"]
            for c in claims
        ],
        title="Section 1/2 analytic claims at true LLaMA-7B dimensions",
        float_fmt="{:.2f}",
    )
    emit(results_dir, "claims", rendered)
    for claim in claims:
        assert claim.relative_error < 0.10, claim.label


def test_table3_size_column(benchmark, results_dir):
    def compute():
        schemes = paper_schemes()
        return {k: model_size_gb(LLAMA_7B, schemes[k]) for k in PAPER_SIZES_GB}

    sizes = benchmark.pedantic(compute, rounds=1, iterations=1)
    rendered = render_table(
        ["scheme", "measured (GB)", "paper (GB)"],
        [[k, sizes[k], PAPER_SIZES_GB[k]] for k in PAPER_SIZES_GB],
        title="Table 3 'Model Size (GB)' column (analytic)",
        float_fmt="{:.2f}",
    )
    emit(results_dir, "table3_sizes", rendered)
    for key, expected in PAPER_SIZES_GB.items():
        assert sizes[key] == pytest.approx(expected, abs=0.4), key
    assert sizes["edkm3"] == min(sizes.values())
