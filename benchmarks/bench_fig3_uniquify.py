"""Regenerates paper Fig. 3: uniquification + sharding of the attention map.

Reports the exact byte arithmetic of the decomposition on a realistic
bf16 weight tensor, verifies the reconstruction is bit-exact, and ablates
the 16-bit pattern dtype (bf16 vs fp16) and the learner count.
"""

from repro.bench import run_dtype_sweep, run_fig3
from repro.bench.tables import render_table

from conftest import emit


def test_fig3_uniquify_and_shard(benchmark, results_dir):
    result = benchmark.pedantic(
        run_fig3, kwargs=dict(n_weights=1 << 18, bits=3, n_learners=8),
        rounds=1, iterations=1,
    )
    rendered = render_table(
        ["quantity", "value"],
        [
            ["|W| weights", result.n_weights],
            ["unique 16-bit patterns u", result.n_unique],
            ["|C| centroids", result.n_clusters],
            ["dense attention map (bytes)", result.dense_map_bytes],
            ["attention table (bytes)", result.table_bytes],
            ["index list (bytes)", result.index_bytes],
            ["index list / learner, |L|=8 (bytes)", result.index_bytes_per_learner],
            ["U reduction (map -> table+index)", f"{result.uniquify_reduction:.1f}x"],
            ["U+S per-learner reduction", f"{result.total_reduction_per_learner:.1f}x"],
            ["reconstruction bit-exact", result.reconstruction_exact],
        ],
        title="Fig. 3: attention-map decomposition (bf16 weights, 3-bit clustering)",
    )
    emit(results_dir, "fig3", rendered)

    assert result.reconstruction_exact
    assert result.n_unique <= 1 << 16
    assert result.uniquify_reduction > 5
    assert result.total_reduction_per_learner > result.uniquify_reduction


def test_fig3_pattern_dtype_ablation(benchmark, results_dir):
    sweep = benchmark.pedantic(
        run_dtype_sweep, kwargs=dict(n_weights=1 << 18), rounds=1, iterations=1
    )
    rendered = render_table(
        ["pattern dtype", "unique patterns", "table bytes", "U reduction"],
        [
            [name, r.n_unique, r.table_bytes, f"{r.uniquify_reduction:.1f}x"]
            for name, r in sweep.items()
        ],
        title="Fig. 3 ablation: uniquification key dtype (both bounded by 2^16)",
    )
    emit(results_dir, "fig3_dtype", rendered)
    for r in sweep.values():
        assert r.n_unique <= 1 << 16
        assert r.reconstruction_exact
    # bf16 has fewer mantissa bits than fp16 -> fewer distinct patterns.
    assert sweep["bfloat16"].n_unique <= sweep["float16"].n_unique
