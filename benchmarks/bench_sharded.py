#!/usr/bin/env python
"""Sharded cluster-scheduler benchmark entry point.

Compresses a heterogeneous model (one embedding-sized layer dominating
several small projections) on 1, 2, and 4 nodes and asserts what the
cluster scheduler promises: every node count stays *bit-identical* to
the serial backend -- centroids, assignments, reconstruction errors, and
per-layer step-cache counters -- across a cold sweep, a warm
delta-shipped sweep, and a sweep after a node worker is hard-killed;
byte-balanced placement holds the ``mean + largest layer`` bound at
every point; and the headline: a model whose total weight bytes exceed a
single node's ``node_memory_budget`` (provably unplaceable on one node)
compresses across two, bit-identical, with no node over budget.  Every
exported shared-memory block must be unlinked after the run.  Writes
``benchmarks/results/BENCH_sharded.json`` (schema: ``docs/benchmarks.md``).

Wall times are recorded but not gated: on a core-starved host the
process transport dominates and CI runners are noisy -- the identity,
placement, budget, and shm-cleanup assertions always fail the run.

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.sharded import run_sharded  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_sharded.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--small-layers", type=int, default=5)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller shapes (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    features = 32 if args.quick else 96
    result = run_sharded(
        features=features, n_small=args.small_layers, seed=args.seed
    )

    payload = result.to_json_dict()
    failures: list[str] = []
    for row in payload["rows"]:
        print(
            f"nodes={row['nodes']} sweep {row['sweep']} "
            f"({row['scenario']:<14}) {row['wall_seconds']:.4f}s  "
            f"{row['bytes_shipped']:>7}B shipped "
            f"({row['full_tasks']} full / {row['delta_tasks']} delta)  "
            f"bit-identical={row['bit_identical']}  "
            f"stats-identical={row['stats_identical']}"
        )
        if not row["bit_identical"]:
            failures.append(
                f"nodes={row['nodes']} sweep {row['sweep']} "
                f"({row['scenario']}): outputs differ from serial"
            )
        if not row["stats_identical"]:
            failures.append(
                f"nodes={row['nodes']} sweep {row['sweep']} "
                f"({row['scenario']}): step-cache counters differ from serial"
            )
        if row["scenario"] == "warm" and row["full_tasks"] != 0:
            failures.append(
                f"nodes={row['nodes']} sweep {row['sweep']}: warm sweep "
                f"still shipped {row['full_tasks']} full task(s)"
            )
    for nodes, point in payload["scaling"].items():
        print(
            f"scaling nodes={nodes}: warm {point['warm_wall_seconds']:.4f}s  "
            f"{point['warm_bytes_shipped']}B  loads={point['loads']}  "
            f"balanced={point['balanced']}"
        )
        if not point["balanced"]:
            failures.append(f"nodes={nodes}: placement violates balance bound")
    print(
        f"over-budget: total={payload['total_bytes']}B "
        f"budget={payload['node_budget']}B  "
        f"single-node-infeasible={payload['single_node_infeasible']}  "
        f"max-load={payload['over_budget_max_load']}B  "
        f"identical={payload['over_budget_identical']}  "
        f"stats={payload['over_budget_stats_identical']}"
    )
    if payload["total_bytes"] <= payload["node_budget"]:
        failures.append("headline model does not exceed the per-node budget")
    if not payload["single_node_infeasible"]:
        failures.append("single-node placement unexpectedly fit the budget")
    if not payload["over_budget_identical"]:
        failures.append("over-budget run: outputs differ from serial")
    if not payload["over_budget_stats_identical"]:
        failures.append("over-budget run: step-cache counters differ from serial")
    if payload["over_budget_max_load"] > payload["node_budget"]:
        failures.append(
            f"over-budget run: node load {payload['over_budget_max_load']}B "
            f"exceeds the {payload['node_budget']}B budget"
        )
    if not payload["shm_cleaned"]:
        failures.append("sharded backend left shared-memory blocks linked")
    print(f"shm-cleaned={payload['shm_cleaned']}  cpu_count={payload['cpu_count']}")

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all sharded assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
