"""Regenerates paper Fig. 2: marshaling removes cross-device duplicates.

The Table 1 scenario as autograd saved tensors: without marshaling three
4 MB host copies are made (x0 saved twice plus the view x1); with marshaling
one copy plus two references.  Includes the hop-budget ablation (the paper
found 4 hops sufficient; this workload needs 1) and the storage-id oracle.
"""

from repro.bench import run_fig2, run_hop_budget_sweep
from repro.bench.tables import render_table

from conftest import emit


def test_fig2_marshaling(benchmark, results_dir):
    def run_both():
        return run_fig2(marshal=False), run_fig2(marshal=True)

    base, marshal = benchmark.pedantic(run_both, rounds=3, iterations=1)

    rendered = render_table(
        ["config", "CPU peak (MB)", "offload traffic (MB)", "copies", "avoided", "hits by hop"],
        [
            ["no marshaling", base.cpu_peak_mb, base.offload_traffic_mb,
             base.copies_made, base.copies_avoided, str(base.hops_histogram)],
            ["with marshaling", marshal.cpu_peak_mb, marshal.offload_traffic_mb,
             marshal.copies_made, marshal.copies_avoided, str(marshal.hops_histogram)],
        ],
        title="Fig. 2: cross-device tensor marshaling (x0, x1 = x0.view scenario)",
    )
    emit(results_dir, "fig2", rendered)

    assert marshal.cpu_peak_mb < base.cpu_peak_mb
    assert marshal.offload_traffic_mb < base.offload_traffic_mb
    assert marshal.copies_avoided == 2


def test_fig2_hop_budget_ablation(benchmark, results_dir):
    budgets = (0, 1, 2, 4, 6)
    sweep = benchmark.pedantic(
        run_hop_budget_sweep, args=(budgets,), rounds=1, iterations=1
    )
    rendered = render_table(
        ["hop budget", "CPU peak (MB)", "copies avoided", "hits by hop"],
        [
            [b, r.cpu_peak_mb, r.copies_avoided, str(r.hops_histogram)]
            for b, r in zip(budgets, sweep)
        ],
        title="Fig. 2 ablation: graph-walk hop budget (paper: 4 suffices)",
    )
    emit(results_dir, "fig2_hops", rendered)

    # Budget 0 misses the view-chain case; budget >= 1 is converged here.
    assert sweep[0].copies_avoided < sweep[1].copies_avoided
    assert sweep[1].cpu_peak_mb == sweep[-1].cpu_peak_mb


def test_fig2_lookup_strategy(benchmark, results_dir):
    def run():
        return (
            run_fig2(marshal=True, strategy="graph"),
            run_fig2(marshal=True, strategy="storage-id"),
        )

    graph, oracle = benchmark.pedantic(run, rounds=3, iterations=1)
    rendered = render_table(
        ["strategy", "CPU peak (MB)", "copies avoided"],
        [
            ["graph walk (paper)", graph.cpu_peak_mb, graph.copies_avoided],
            ["storage-id oracle", oracle.cpu_peak_mb, oracle.copies_avoided],
        ],
        title="Fig. 2 ablation: lookup strategy",
    )
    emit(results_dir, "fig2_strategy", rendered)
    assert graph.copies_avoided == oracle.copies_avoided
