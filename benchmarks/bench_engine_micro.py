"""Micro-benchmarks of the substrate hot paths (pytest-benchmark native).

Not a paper table; tracks the cost of the operations the eDKM pipeline
leans on: dense map construction, uniquification, packing, and the
marshaling graph walk.
"""

import numpy as np

import repro.tensor as rt
from repro.core.dkm import DKMClusterer
from repro.core import DKMConfig
from repro.core.palettize import pack_indices
from repro.core.uniquify import attention_table, uniquify
from repro.tensor.dtype import bfloat16


def _weights(n=1 << 16, seed=0):
    values = (np.random.default_rng(seed).standard_normal(n) * 0.05).astype(np.float32)
    return bfloat16.project(values)


def test_uniquify_speed(benchmark):
    weights = _weights()
    result = benchmark(uniquify, weights, bfloat16)
    assert result.n_unique > 0


def test_attention_table_speed(benchmark):
    unique = uniquify(_weights(), bfloat16)
    centroids = np.linspace(-0.15, 0.15, 8).astype(np.float32)
    table = benchmark(attention_table, unique.values, centroids, 1e-3)
    assert table.shape[1] == 8


def test_dense_map_speed(benchmark):
    """The O(|W|·|C|) computation eDKM avoids (reference cost)."""
    weights = _weights(1 << 14)
    centroids = np.linspace(-0.15, 0.15, 8).astype(np.float32)

    def dense():
        diff = weights[:, None] - centroids[None, :]
        logits = -(diff**2) / 1e-3
        logits -= logits.max(axis=1, keepdims=True)
        e = np.exp(logits)
        return e / e.sum(axis=1, keepdims=True)

    assert benchmark(dense).shape == (1 << 14, 8)


def test_pack_indices_speed(benchmark):
    indices = np.random.default_rng(0).integers(0, 8, 1 << 16).astype(np.uint8)
    packed = benchmark(pack_indices, indices, 3)
    assert packed.size == (1 << 16) * 3 // 8


def test_dkm_refine_speed(benchmark):
    w = rt.Tensor.from_numpy(_weights(), dtype="bfloat16", device="gpu")

    def refine():
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=5))
        return clusterer.refine(w)

    state = benchmark(refine)
    assert state.centroids.shape == (8,)


def test_matmul_speed(benchmark):
    rt.manual_seed(0)
    a = rt.randn(128, 128, device="gpu")
    b = rt.randn(128, 128, device="gpu")
    out = benchmark(lambda: a @ b)
    assert out.shape == (128, 128)


def test_marshal_graph_walk_speed(benchmark):
    from repro.core.marshal import MarshalRegistry, OffloadEntry

    registry = MarshalRegistry()
    x0 = rt.randn(64, 64, device="gpu", requires_grad=True)
    # Keep every view alive so the 4-hop walk has live endpoints.
    v1 = x0.view(-1)
    v2 = v1.view(64, 64)
    v3 = v2.transpose(0, 1)
    host = rt.Tensor.from_numpy(x0.numpy().reshape(-1), device="cpu")
    registry.register(x0, OffloadEntry(host, x0.storage, x0.device))

    result = benchmark(registry.find, v3, 4, "graph")
    assert result[0] is not None
    assert result[1] == 3  # hops
