#!/usr/bin/env python
"""Palette-serving benchmark entry point.

Trains one small model, compresses it, and serves the same concurrent
request load through three scenarios (uncompressed, compressed-dense,
compressed-palette), reporting requests/sec, p50/p99 latency, batch
occupancy, and weight bytes for each.  The run is *gated* on:

- bit-identical completions between the palette and dense eval paths
  under concurrent load, both also matching offline single-prompt
  ``generate`` on the same compressed weights;
- admission control shedding load (a burst past the queue bound yields
  ``AdmissionError``s, and every submitted request is accounted for);
- a microscopic deadline being rejected with ``DeadlineExceeded``;
- per-request byte accounting flowing through the traffic ledger.

Wall times and throughput are recorded but not gated -- CI runners are
noisy.  Writes ``benchmarks/results/BENCH_serving.json`` (schema:
``docs/benchmarks.md``).

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.serving import run_serving  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_serving.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--max-new-tokens", type=int, default=8)
    parser.add_argument("--bits", type=int, default=4)
    parser.add_argument(
        "--tile-cache-bytes",
        type=int,
        default=0,
        help="hot-tile LRU budget for the palette scenario (0 = unlimited)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller corpus and request load (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    result = run_serving(
        n_requests=6 if args.quick else args.requests,
        max_new_tokens=4 if args.quick else args.max_new_tokens,
        bits=args.bits,
        sentences=120 if args.quick else 400,
        epochs=1 if args.quick else 2,
        tile_cache_bytes_limit=args.tile_cache_bytes,
        seed=args.seed,
    )

    payload = result.to_json_dict()
    failures: list[str] = []
    for row in payload["rows"]:
        p50 = row["latency_p50_s"]
        p99 = row["latency_p99_s"]
        print(
            f"{row['scenario']:<19} ({row['eval_path']:<7}) "
            f"{row['requests_per_s']:>7.2f} req/s  "
            f"p50={p50 if p50 is None else f'{p50:.4f}s'} "
            f"p99={p99 if p99 is None else f'{p99:.4f}s'}  "
            f"occupancy={row['mean_batch_occupancy']:.2f}  "
            f"weights={row['weight_bytes_resident']}B resident / "
            f"{row['weight_bytes_read']}B read"
        )
        if row["completed"] != payload["n_requests"]:
            failures.append(
                f"{row['scenario']}: completed {row['completed']} of "
                f"{payload['n_requests']} requests"
            )
    if not payload["tokens_identical"]:
        failures.append(
            "palette completions differ from dense/offline reference "
            "(eval paths are not bit-identical under concurrent load)"
        )
    ratio = payload["palette_vs_uncompressed_weight_bytes"]
    if ratio is not None:
        print(f"palette/uncompressed resident weight bytes: {ratio:.3f}")
        if ratio >= 1.0:
            failures.append(
                "palette artifact is not smaller than the uncompressed "
                f"weights (ratio {ratio:.3f})"
            )
    admission = payload["admission"]
    print(
        f"admission: {admission['rejected']} rejected / "
        f"{admission['completed']} completed of "
        f"{admission['submit_attempts']} attempts  "
        f"deadline_rejected={payload['deadline_rejected']}"
    )
    if admission["rejected"] == 0:
        failures.append("admission probe: burst past queue bound shed nothing")
    if not admission["accounted"]:
        failures.append(
            "admission probe: rejected + completed != submitted "
            f"({admission['rejected']} + {admission['completed']} vs "
            f"{admission['submit_attempts']})"
        )
    if payload["deadline_rejected"] == 0:
        failures.append("microscopic deadline was not rejected")
    if payload["request_bytes_tagged"] != 4:
        failures.append(
            "per-request ledger accounting: expected 4 tagged requests, "
            f"got {payload['request_bytes_tagged']}"
        )
    print(
        f"tokens-identical={payload['tokens_identical']}  "
        f"cpu_count={payload['cpu_count']}"
    )

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all serving assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
