#!/usr/bin/env python
"""Sticky worker-affinity benchmark entry point.

Replays the same multi-layer ``precluster`` sweeps through the process
backend's two affinity modes and asserts what sticky affinity promises:
a warm sticky sweep ships *only deltas* and *strictly fewer pickled bytes
per layer* than the chunked task pool, while centroids, assignments,
reconstruction errors, and per-layer step-cache counters stay
bit-identical to the serial backend across a cold sweep, a warm sweep, a
simulated worker crash, and a pool-resize rebalance.  Every exported
shared-memory block must be unlinked after the run.  Writes
``benchmarks/results/BENCH_affinity.json`` (schema: ``docs/benchmarks.md``).

Wall times are recorded but not gated: on a core-starved host the
process transport dominates and CI runners are noisy -- the byte
accounting, task-kind counts, bit-identity, counter, and shm-cleanup
assertions always fail the run.

    PYTHONPATH=src python benchmarks/bench_affinity.py          # full
    PYTHONPATH=src python benchmarks/bench_affinity.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.affinity import run_affinity  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_affinity.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--layers", type=int, default=8)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller shapes (CI smoke configuration)",
    )
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args(argv)

    features = 96 if args.quick else 256
    result = run_affinity(
        n_layers=args.layers,
        in_features=features,
        out_features=features,
        workers=args.workers,
        seed=args.seed,
    )

    payload = result.to_json_dict()
    failures: list[str] = []
    for row in payload["rows"]:
        print(
            f"{row['affinity']:<8} sweep {row['sweep']} "
            f"({row['scenario']:<14}) {row['wall_seconds']:.4f}s  "
            f"{row['bytes_shipped']:>7}B shipped "
            f"({row['full_tasks']} full / {row['delta_tasks']} delta)  "
            f"bit-identical={row['bit_identical']}  "
            f"stats-identical={row['stats_identical']}"
        )
        if not row["bit_identical"]:
            failures.append(
                f"{row['affinity']} sweep {row['sweep']} ({row['scenario']}): "
                "outputs differ from serial"
            )
        if not row["stats_identical"]:
            failures.append(
                f"{row['affinity']} sweep {row['sweep']} ({row['scenario']}): "
                "step-cache counters differ from serial"
            )
        if row["affinity"] == "sticky" and row["scenario"] == "warm":
            if row["full_tasks"] != 0:
                failures.append(
                    f"sticky sweep {row['sweep']}: warm sweep still shipped "
                    f"{row['full_tasks']} full task(s)"
                )
            if row["delta_tasks"] != payload["n_layers"]:
                failures.append(
                    f"sticky sweep {row['sweep']}: expected "
                    f"{payload['n_layers']} deltas, got {row['delta_tasks']}"
                )
    warm = payload["warm_bytes_per_layer"]
    print(
        f"warm bytes/layer: sticky={warm['sticky']:.1f} "
        f"chunked={warm['chunked']:.1f}  "
        f"warm wall: sticky={payload['warm_wall_seconds']['sticky']:.4f}s "
        f"chunked={payload['warm_wall_seconds']['chunked']:.4f}s"
    )
    if not payload["sticky_ships_fewer_warm_bytes"]:
        failures.append(
            "sticky warm sweep did not ship strictly fewer bytes per layer "
            f"than chunked ({warm['sticky']} vs {warm['chunked']})"
        )
    if not payload["shm_cleaned"]:
        failures.append("process backend left shared-memory blocks linked")
    print(f"shm-cleaned={payload['shm_cleaned']}  cpu_count={payload['cpu_count']}")

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    payload["seed"] = args.seed
    payload["quick"] = args.quick
    payload["ok"] = not failures
    payload["failures"] = failures
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all affinity assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
