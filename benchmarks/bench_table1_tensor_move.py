"""Regenerates paper Table 1: cross-device copies duplicate storage.

Expected to match the paper byte-for-byte (it is an arithmetic property of
the storage model): GPU stays at 4 MB through the view; CPU grows 0 -> 4 ->
8 MB across the two ``.to('cpu')`` calls.
"""

from repro.bench import PAPER_TABLE1, run_table1
from repro.bench.tables import render_table

from conftest import emit


def test_table1_tensor_move(benchmark, results_dir):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)

    rendered = render_table(
        ["line", "code", "GPU (MB)", "CPU (MB)", "paper GPU", "paper CPU"],
        [
            [r.line, r.code, r.gpu_mb, r.cpu_mb, p[1], p[2]]
            for r, p in zip(rows, PAPER_TABLE1)
        ],
        title="Table 1: memory footprint of cross-device tensor moves",
    )
    emit(results_dir, "table1", rendered)

    for row, (line, gpu_mb, cpu_mb) in zip(rows, PAPER_TABLE1):
        assert row.gpu_mb == gpu_mb, f"line {line}: GPU {row.gpu_mb} != {gpu_mb}"
        assert row.cpu_mb == cpu_mb, f"line {line}: CPU {row.cpu_mb} != {cpu_mb}"
