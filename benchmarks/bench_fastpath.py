"""Fast-path engine micro-benchmark (ISSUE 1): old vs new hot-loop kernels.

Verifies and reports the three fast-path rewrites: the O(N) histogram
uniquify vs sort-based ``np.unique`` (bit-identical, >= 2x at N >= 1M), the
bincount segment reductions vs ``np.add.at``, and the per-layer step cache
(exactly one uniquify per layer per training step).
"""

from repro.bench import run_fastpath
from repro.bench.tables import render_table

from conftest import emit


def test_fastpath_engine(benchmark, results_dir):
    result = benchmark.pedantic(run_fastpath, rounds=1, iterations=1)

    rendered = render_table(
        ["component", "shape", "legacy (s)", "fast (s)", "speedup", "exact"],
        [
            *[
                [
                    "uniquify",
                    f"N={r.n_weights}",
                    f"{r.sort_seconds:.5f}",
                    f"{r.histogram_seconds:.5f}",
                    f"{r.speedup:.1f}x",
                    r.bit_identical,
                ]
                for r in result.uniquify
            ],
            *[
                [
                    r.kind,
                    f"N={r.n_elements}",
                    f"{r.add_at_mixed_seconds:.5f}",
                    f"{r.bincount_seconds:.5f}",
                    f"{r.speedup:.1f}x (vs f32 {r.matched_ratio:.2f})",
                    f"err<={r.max_abs_error:.1e}",
                ]
                for r in result.scatter
            ],
            *[
                [
                    "train step",
                    f"N={r.n_weights}",
                    f"{r.legacy_seconds_per_step:.5f}",
                    f"{r.fastpath_seconds_per_step:.5f}",
                    f"{r.speedup:.1f}x",
                    f"uniq/step {r.legacy_uniquify_per_step:.0f}->"
                    f"{r.fastpath_uniquify_per_step:.0f}",
                ]
                for r in result.step
            ],
        ],
        title="Fast-path engine: legacy vs histogram/bincount/step-cache",
    )
    emit(results_dir, "fastpath", rendered)

    for row in result.uniquify:
        assert row.bit_identical
        if row.n_weights >= 1 << 20:
            assert row.speedup >= 2.0
    for row in result.scatter:
        assert row.max_abs_error < 1e-3
        assert row.speedup >= 1.0  # vs the float64-accurate legacy
        assert row.matched_ratio <= 3.0  # near the dtype-matched f32 legacy
    for row in result.step:
        assert row.fastpath_uniquify_per_step == 1.0
        assert row.legacy_uniquify_per_step == 2.0
