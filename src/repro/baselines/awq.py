"""AWQ: activation-aware weight quantization (Lin et al., 2023).

Salient weight channels -- those multiplying large activations -- are
protected by scaling them up before quantization and folding the inverse
scale into the layer's input side.  The per-channel scale is
``s_j = act_mean_j ** alpha`` with ``alpha`` grid-searched per layer to
minimize the reconstruction error of layer outputs on calibration data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.calibration import LayerCalibration, collect_calibration
from repro.baselines.common import fake_quantize
from repro.data.loader import Batch
from repro.nn import Linear, Module


def awq_scale_search(
    weight: np.ndarray,
    calibration: LayerCalibration,
    bits: int,
    group_size: int | None,
    alphas: tuple[float, ...] = (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
) -> tuple[np.ndarray, float, float]:
    """Return (best per-channel scales, best alpha, best output error)."""
    x = calibration.stacked_samples().astype(np.float32)
    w = np.asarray(weight, dtype=np.float32)
    reference = x @ w.T

    act = np.maximum(calibration.abs_mean.astype(np.float32), 1e-8)
    best = (np.ones(w.shape[1], dtype=np.float32), 0.0, np.inf)
    for alpha in alphas:
        scales = act**alpha
        scales = scales / np.sqrt(scales.max() * scales.min())  # normalize range
        scales = np.maximum(scales, 1e-8)
        scaled = w * scales[None, :]
        quantized = fake_quantize(scaled, bits, symmetric=True, group_size=group_size)
        restored = quantized / scales[None, :]
        err = float(np.mean((x @ restored.T - reference) ** 2))
        if err < best[2]:
            best = (scales, alpha, err)
    return best


@dataclass
class AWQReport:
    bits: int
    group_size: int | None
    layer_alpha: dict[str, float] = field(default_factory=dict)
    layer_error: dict[str, float] = field(default_factory=dict)


def quantize_model_awq(
    model: Module,
    calibration_batches: list[Batch],
    bits: int,
    group_size: int | None = None,
    skip_names: tuple[str, ...] = (),
    records: dict[str, LayerCalibration] | None = None,
) -> AWQReport:
    """AWQ-quantize every Linear weight in place (scales folded back)."""
    if records is None:
        records = collect_calibration(model, calibration_batches)
    report = AWQReport(bits=bits, group_size=group_size)
    for name, module in model.named_modules():
        if not isinstance(module, Linear) or name not in records:
            continue
        if any(name.startswith(skip) for skip in skip_names):
            continue
        original = module.weight._compute()
        scales, alpha, err = awq_scale_search(
            original, records[name], bits, group_size
        )
        quantized = fake_quantize(
            original * scales[None, :], bits, symmetric=True, group_size=group_size
        )
        module.weight.copy_(quantized / scales[None, :])
        report.layer_alpha[name] = alpha
        report.layer_error[name] = err
    if not report.layer_alpha:
        raise ValueError("no Linear layers quantized")
    return report
