"""Calibration-data capture for activation-aware baselines (GPTQ, AWQ).

Runs the model over calibration batches while recording, per Linear layer,
the inputs it saw -- from which GPTQ builds its Hessian ``2 X^T X`` and AWQ
its per-channel activation magnitudes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.nn import Linear, Module
from repro.tensor.autograd import no_grad
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.data.loader import Batch


@dataclass
class LayerCalibration:
    """Accumulated input statistics for one Linear."""

    in_features: int
    hessian: np.ndarray = field(init=False)  # (in, in) running 2 X^T X
    abs_mean: np.ndarray = field(init=False)  # (in,) running mean |x|
    n_samples: int = 0
    sample_inputs: list[np.ndarray] = field(default_factory=list)
    max_samples: int = 4096

    def __post_init__(self) -> None:
        self.hessian = np.zeros((self.in_features, self.in_features), dtype=np.float64)
        self.abs_mean = np.zeros(self.in_features, dtype=np.float64)

    def update(self, x: np.ndarray) -> None:
        """``x``: (n, in_features) flattened layer inputs."""
        n = x.shape[0]
        self.hessian += 2.0 * (x.T @ x)
        total = self.abs_mean * self.n_samples + np.abs(x).sum(axis=0)
        self.n_samples += n
        self.abs_mean = total / max(self.n_samples, 1)
        budget = self.max_samples - sum(s.shape[0] for s in self.sample_inputs)
        if budget > 0:
            self.sample_inputs.append(x[:budget].copy())

    def stacked_samples(self) -> np.ndarray:
        if not self.sample_inputs:
            raise ValueError("no calibration samples recorded")
        return np.concatenate(self.sample_inputs, axis=0)


@contextlib.contextmanager
def record_linear_inputs(
    model: Module,
) -> Iterator[dict[str, LayerCalibration]]:
    """Patch every Linear's forward to record inputs; restore on exit."""
    records: dict[str, LayerCalibration] = {}
    originals: list[tuple[Linear, object]] = []
    for name, module in model.named_modules():
        if not isinstance(module, Linear):
            continue
        calibration = LayerCalibration(in_features=module.in_features)
        records[name] = calibration

        def recording_forward(
            x: Tensor, _inner=module, _cal=calibration
        ) -> Tensor:
            flat = x._compute().reshape(-1, _inner.in_features)
            _cal.update(flat.astype(np.float64))
            return Linear.forward(_inner, x)

        originals.append((module, module.forward))
        object.__setattr__(module, "forward", recording_forward)
    try:
        yield records
    finally:
        for module, original in originals:
            object.__setattr__(module, "forward", original)


def collect_calibration(
    model: Module, batches: Iterable[Batch], max_batches: int = 8
) -> dict[str, LayerCalibration]:
    """Run ``model`` over calibration batches, returning per-layer stats."""
    with record_linear_inputs(model) as records:
        with no_grad():
            for i, batch in enumerate(batches):
                if i >= max_batches:
                    break
                model(batch.tokens)
    return records
