"""GPTQ: Hessian-guided post-training quantization (Frantar et al., 2023).

Quantizes weight columns one at a time; the rounding error of each column is
propagated into the not-yet-quantized columns using the inverse Hessian of
the layer's inputs, so later columns compensate for earlier mistakes.  This
is the standard OBQ/GPTQ recursion with Cholesky-based inverse and dampening.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.calibration import LayerCalibration, collect_calibration
from repro.baselines.common import quantization_mse
from repro.data.loader import Batch
from repro.nn import Linear, Module


def _grid_for_columns(
    w_cols: np.ndarray, bits: int, symmetric: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row scale/zero for a column block (rows x block)."""
    qmax = 2**bits - 1
    if symmetric:
        limit = 2 ** (bits - 1) - 1
        scales = np.maximum(np.abs(w_cols).max(axis=1) / max(limit, 1), 1e-12)
        zeros = np.zeros_like(scales)
    else:
        lo = w_cols.min(axis=1)
        hi = w_cols.max(axis=1)
        scales = np.maximum((hi - lo) / qmax, 1e-12)
        zeros = np.round(-lo / scales)
    return scales, zeros


def _quantize_column(
    col: np.ndarray, scales: np.ndarray, zeros: np.ndarray, bits: int, symmetric: bool
) -> np.ndarray:
    if symmetric:
        limit = 2 ** (bits - 1) - 1
        codes = np.clip(np.round(col / scales), -limit, limit)
        return codes * scales
    qmax = 2**bits - 1
    codes = np.clip(np.round(col / scales + zeros), 0, qmax)
    return (codes - zeros) * scales


def gptq_quantize_weight(
    weight: np.ndarray,
    hessian: np.ndarray,
    bits: int,
    group_size: int | None = 128,
    percdamp: float = 0.01,
    symmetric: bool = False,
) -> np.ndarray:
    """Quantize one (out, in) weight with input Hessian (in, in)."""
    w = np.asarray(weight, dtype=np.float64).copy()
    rows, cols = w.shape
    h = np.asarray(hessian, dtype=np.float64).copy()

    dead = np.diag(h) <= 0
    if dead.any():
        h[dead, dead] = 1.0
        w[:, dead] = 0.0

    damp = percdamp * float(np.mean(np.diag(h)))
    h[np.arange(cols), np.arange(cols)] += max(damp, 1e-10)

    # Inverse Hessian in upper-Cholesky form, as in the reference code.
    hinv = np.linalg.inv(h)
    hinv = np.linalg.cholesky(hinv).T  # upper triangular

    q = np.zeros_like(w)
    effective_group = group_size if group_size is not None else cols
    scales = zeros = None
    for col in range(cols):
        if col % effective_group == 0:
            block = w[:, col : col + effective_group]
            scales, zeros = _grid_for_columns(block, bits, symmetric)
        d = hinv[col, col]
        quantized = _quantize_column(w[:, col], scales, zeros, bits, symmetric)
        q[:, col] = quantized
        err = (w[:, col] - quantized) / d
        if col + 1 < cols:
            w[:, col + 1 :] -= np.outer(err, hinv[col, col + 1 :])
    return q.astype(np.float32)


@dataclass
class GPTQReport:
    bits: int
    group_size: int | None
    layer_mse: dict[str, float] = field(default_factory=dict)


def quantize_model_gptq(
    model: Module,
    calibration_batches: list[Batch],
    bits: int,
    group_size: int | None = None,
    percdamp: float = 0.01,
    skip_names: tuple[str, ...] = (),
    records: dict[str, LayerCalibration] | None = None,
) -> GPTQReport:
    """Calibrate then GPTQ-quantize every Linear weight in place."""
    if records is None:
        records = collect_calibration(model, calibration_batches)
    report = GPTQReport(bits=bits, group_size=group_size)
    for name, module in model.named_modules():
        if not isinstance(module, Linear) or name not in records:
            continue
        if any(name.startswith(skip) for skip in skip_names):
            continue
        original = module.weight._compute()
        quantized = gptq_quantize_weight(
            original,
            records[name].hessian,
            bits,
            group_size=group_size,
            percdamp=percdamp,
        )
        module.weight.copy_(quantized)
        report.layer_mse[name] = quantization_mse(original, quantized)
    if not report.layer_mse:
        raise ValueError("no Linear layers quantized")
    return report
