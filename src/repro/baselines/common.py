"""Shared uniform-quantization machinery for the baseline compressors.

Weights are laid out ``(out_features, in_features)`` (rows are output
channels).  Grids can be per-tensor, per-channel (one scale per row), or
group-wise along the input dimension (one scale per ``group_size`` columns
of a row -- the "g128" of GPTQ/AWQ rows in Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedWeight:
    """Integer codes plus the affine grid to reconstruct values."""

    codes: np.ndarray  # int32, same shape as weight
    scales: np.ndarray  # broadcastable to weight
    zeros: np.ndarray  # broadcastable to weight (integer zero points)
    bits: int
    symmetric: bool

    def dequantize(self) -> np.ndarray:
        return ((self.codes - self.zeros) * self.scales).astype(np.float32)


def _grid_minmax(
    w: np.ndarray, bits: int, symmetric: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Scales and zero points for the last axis of ``w`` (reduced)."""
    qmax = 2**bits - 1
    if symmetric:
        # Signed symmetric grid: codes in [-(2^{b-1}-1), 2^{b-1}-1].
        limit = 2 ** (bits - 1) - 1
        absmax = np.abs(w).max(axis=-1, keepdims=True)
        scales = np.maximum(absmax / max(limit, 1), 1e-12)
        zeros = np.zeros_like(scales)
        return scales, zeros
    lo = w.min(axis=-1, keepdims=True)
    hi = w.max(axis=-1, keepdims=True)
    scales = np.maximum((hi - lo) / qmax, 1e-12)
    zeros = np.round(-lo / scales)
    return scales, zeros


def quantize_uniform(
    weight: np.ndarray,
    bits: int,
    symmetric: bool = True,
    group_size: int | None = None,
    per_channel: bool = True,
) -> QuantizedWeight:
    """Round-to-nearest onto a uniform grid.

    ``group_size`` groups columns within each row; ``per_channel`` without a
    group size gives one grid per row; neither gives a per-tensor grid.
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weight, got shape {w.shape}")
    rows, cols = w.shape

    if group_size is not None:
        if cols % group_size != 0:
            raise ValueError(
                f"in_features {cols} not divisible by group size {group_size}"
            )
        grouped = w.reshape(rows, cols // group_size, group_size)
        scales, zeros = _grid_minmax(grouped, bits, symmetric)
    elif per_channel:
        grouped = w.reshape(rows, 1, cols)
        scales, zeros = _grid_minmax(grouped, bits, symmetric)
    else:
        grouped = w.reshape(1, 1, rows * cols)
        scales, zeros = _grid_minmax(grouped, bits, symmetric)

    if symmetric:
        limit = 2 ** (bits - 1) - 1
        codes = np.clip(np.round(grouped / scales), -limit, limit)
    else:
        qmax = 2**bits - 1
        codes = np.clip(np.round(grouped / scales + zeros), 0, qmax)

    shape = grouped.shape
    return QuantizedWeight(
        codes=codes.astype(np.int32).reshape(shape),
        scales=scales,
        zeros=zeros,
        bits=bits,
        symmetric=symmetric,
    )


def fake_quantize(
    weight: np.ndarray,
    bits: int,
    symmetric: bool = True,
    group_size: int | None = None,
    per_channel: bool = True,
) -> np.ndarray:
    """Quantize-dequantize: the weight projected onto its uniform grid."""
    w = np.asarray(weight, dtype=np.float32)
    q = quantize_uniform(
        w, bits, symmetric=symmetric, group_size=group_size, per_channel=per_channel
    )
    return q.dequantize().reshape(w.shape)


def quantization_mse(weight: np.ndarray, reconstructed: np.ndarray) -> float:
    w = np.asarray(weight, dtype=np.float32)
    return float(np.mean((w - reconstructed) ** 2))
