"""Round-to-nearest (RTN) post-training quantization.

The simplest Table 3 baseline: project every Linear weight onto a
per-channel uniform grid, no calibration data, no error compensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import fake_quantize, quantization_mse
from repro.nn import Linear, Module


@dataclass
class RTNReport:
    bits: int
    layer_mse: dict[str, float] = field(default_factory=dict)

    @property
    def mean_mse(self) -> float:
        return sum(self.layer_mse.values()) / max(len(self.layer_mse), 1)


def quantize_model_rtn(
    model: Module,
    bits: int,
    symmetric: bool = True,
    per_channel: bool = True,
    skip_names: tuple[str, ...] = (),
) -> RTNReport:
    """Quantize every Linear weight in place; returns per-layer MSE."""
    report = RTNReport(bits=bits)
    for name, module in model.named_modules():
        if not isinstance(module, Linear):
            continue
        if any(name.startswith(skip) for skip in skip_names):
            continue
        original = module.weight._compute()
        projected = fake_quantize(
            original, bits, symmetric=symmetric, per_channel=per_channel
        )
        module.weight.copy_(projected)
        report.layer_mse[name] = quantization_mse(original, projected)
    if not report.layer_mse:
        raise ValueError("no Linear layers found to quantize")
    return report
