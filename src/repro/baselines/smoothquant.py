"""SmoothQuant-style difficulty migration (Xiao et al., 2023).

Balances quantization difficulty between activations and weights with the
per-channel smoothing factor ``s_j = max|X_j|^alpha / max|W_.j|^(1-alpha)``;
weights are scaled by ``s`` (and quantized), activations conceptually by
``1/s``.  The paper cites SmoothQuant as a comparison point; we implement
the weight-side projection so it slots into the same Table 3 harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.calibration import LayerCalibration, collect_calibration
from repro.baselines.common import fake_quantize
from repro.data.loader import Batch
from repro.nn import Linear, Module


def smoothquant_scales(
    weight: np.ndarray, calibration: LayerCalibration, alpha: float = 0.5
) -> np.ndarray:
    """Per-input-channel smoothing factors."""
    x = calibration.stacked_samples()
    act_max = np.maximum(np.abs(x).max(axis=0), 1e-8)
    w_max = np.maximum(np.abs(np.asarray(weight)).max(axis=0), 1e-8)
    scales = act_max**alpha / w_max ** (1.0 - alpha)
    return np.maximum(scales.astype(np.float32), 1e-8)


@dataclass
class SmoothQuantReport:
    bits: int
    alpha: float
    layers: list[str] = field(default_factory=list)


def quantize_model_smoothquant(
    model: Module,
    calibration_batches: list[Batch],
    bits: int = 8,
    alpha: float = 0.5,
    skip_names: tuple[str, ...] = (),
    records: dict[str, LayerCalibration] | None = None,
) -> SmoothQuantReport:
    """Apply smoothing + weight quantization in place."""
    if records is None:
        records = collect_calibration(model, calibration_batches)
    report = SmoothQuantReport(bits=bits, alpha=alpha)
    for name, module in model.named_modules():
        if not isinstance(module, Linear) or name not in records:
            continue
        if any(name.startswith(skip) for skip in skip_names):
            continue
        original = module.weight._compute()
        scales = smoothquant_scales(original, records[name], alpha)
        smoothed = original * scales[None, :]
        quantized = fake_quantize(smoothed, bits, symmetric=True, per_channel=True)
        module.weight.copy_(quantized / scales[None, :])
        report.layers.append(name)
    if not report.layers:
        raise ValueError("no Linear layers quantized")
    return report
