"""LLM-QAT-style quantization-aware training (Liu et al., 2023).

Weights pass through a fake-quantizer on every forward; the backward uses a
straight-through estimator (identity gradient), so the optimizer learns
weights that sit well on the quantization grid.  Structurally this is the
uniform-grid sibling of DKM's non-linear clustering and shares the
fine-tuning loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.common import fake_quantize
from repro.nn import Linear, Module
from repro.tensor.autograd import Context, Function
from repro.tensor.tensor import Tensor


class FakeQuantSTE(Function):
    """Project onto the uniform grid forward; identity gradient backward."""

    @staticmethod
    def forward(ctx: Context, weight: Tensor, bits: int, symmetric: bool) -> Tensor:
        from repro.tensor.ops._common import make_result

        projected = fake_quantize(
            weight._compute(), bits, symmetric=symmetric, per_channel=True
        )
        return make_result(projected, weight.dtype, weight.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad,)


class QATLinear(Module):
    """A Linear whose weight is fake-quantized on every training forward."""

    def __init__(self, inner: Linear, bits: int, symmetric: bool = True) -> None:
        super().__init__()
        self.inner = inner
        self.bits = bits
        self.symmetric = symmetric

    def forward(self, x: Tensor) -> Tensor:
        weight = FakeQuantSTE.apply(self.inner.weight, self.bits, self.symmetric)
        out = x @ weight.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def freeze(self) -> None:
        """Bake the quantized weight into the inner Linear (deployment)."""
        projected = fake_quantize(
            self.inner.weight._compute(),
            self.bits,
            symmetric=self.symmetric,
            per_channel=True,
        )
        self.inner.weight.copy_(projected)

    def __repr__(self) -> str:
        return f"QATLinear({self.inner!r}, bits={self.bits})"


def apply_qat(
    model: Module, bits: int, skip_names: tuple[str, ...] = ()
) -> dict[str, QATLinear]:
    """Wrap every Linear in ``model`` with a :class:`QATLinear`."""
    wrapped: dict[str, QATLinear] = {}

    def _wrap(module: Module, prefix: str) -> None:
        for name, child in list(module._modules.items()):
            full_name = f"{prefix}{name}"
            if any(full_name.startswith(skip) for skip in skip_names):
                continue
            if isinstance(child, Linear):
                qat = QATLinear(child, bits)
                setattr(module, name, qat)
                wrapped[full_name] = qat
            else:
                _wrap(child, prefix=f"{full_name}.")

    _wrap(model, "")
    if not wrapped:
        raise ValueError("no Linear layers found to wrap")
    return wrapped


def freeze_qat(wrapped: dict[str, QATLinear]) -> None:
    """Finalize all QAT layers to their quantized weights."""
    for qat in wrapped.values():
        qat.freeze()
