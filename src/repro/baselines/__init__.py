"""Baseline compression schemes compared against eDKM in Table 3."""

from repro.baselines.awq import AWQReport, awq_scale_search, quantize_model_awq
from repro.baselines.calibration import (
    LayerCalibration,
    collect_calibration,
    record_linear_inputs,
)
from repro.baselines.common import (
    QuantizedWeight,
    fake_quantize,
    quantization_mse,
    quantize_uniform,
)
from repro.baselines.gptq import GPTQReport, gptq_quantize_weight, quantize_model_gptq
from repro.baselines.llm_qat import (
    FakeQuantSTE,
    QATLinear,
    apply_qat,
    freeze_qat,
)
from repro.baselines.rtn import RTNReport, quantize_model_rtn
from repro.baselines.smoothquant import (
    SmoothQuantReport,
    quantize_model_smoothquant,
    smoothquant_scales,
)

__all__ = [
    "AWQReport",
    "awq_scale_search",
    "quantize_model_awq",
    "LayerCalibration",
    "collect_calibration",
    "record_linear_inputs",
    "QuantizedWeight",
    "fake_quantize",
    "quantization_mse",
    "quantize_uniform",
    "GPTQReport",
    "gptq_quantize_weight",
    "quantize_model_gptq",
    "FakeQuantSTE",
    "QATLinear",
    "apply_qat",
    "freeze_qat",
    "RTNReport",
    "quantize_model_rtn",
    "SmoothQuantReport",
    "quantize_model_smoothquant",
    "smoothquant_scales",
]
