"""eDKM: memory-efficient train-time weight clustering for LLMs.

Reproduction of Cho et al., "eDKM: An Efficient and Accurate Train-time
Weight Clustering for Large Language Models" (HPCA 2025 / arXiv:2309.00964),
grown into a compress-then-serve system.

Quickstart -- compress::

    import repro

    model = ...                        # a repro.nn model
    compressor = repro.compress(model, bits=3)
    # Linears now re-cluster every forward; fine-tune, then:
    report = compressor.finalize(model)

Quickstart -- serve::

    import repro
    from repro.llm import MICRO, WordTokenizer, build_model

    tokenizer = WordTokenizer.from_corpus(["the quick brown fox ..."])
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size)
    repro.compress(model, bits=3)
    with repro.serve(model, tokenizer, max_batch_size=8) as server:
        request = server.submit("the quick", max_new_tokens=8)
        print(request.result(timeout=30))
        print(server.stats().to_json_dict())

``repro.compress`` wraps the model's Linears with
:class:`~repro.core.compressor.ClusteredLinear` (train-time clustering);
``repro.serve`` starts a :class:`~repro.serving.server.PaletteServer` --
an admission-controlled, continuously-batched generation server whose
eval-mode clustered layers execute against the k-entry palette.  The
memory pipeline of the paper (offload + marshal + uniquify + shard)
lives on :class:`SavedTensorPipeline`::

    pipeline = repro.SavedTensorPipeline(repro.EDKMConfig())
    with pipeline.step():              # saved tensors offloaded + marshaled
        loss = ...; loss.backward()    # + uniquified + sharded (M/U/S)

Subpackages: ``tensor`` (autograd substrate), ``memory`` (byte accounting),
``nn``/``optim`` (model library), ``distributed`` (learner simulation),
``core`` (DKM + eDKM), ``serving`` (palette-aware inference serving),
``baselines`` (RTN/GPTQ/AWQ/SmoothQuant/LLM-QAT), ``llm``/``data``/
``evalsuite`` (end-to-end experiments), ``bench`` (table/figure
regeneration).
"""

__version__ = "1.1.0"

from repro import (  # noqa: F401
    baselines,
    core,
    data,
    distributed,
    evalsuite,
    llm,
    memory,
    nn,
    optim,
    serving,
    tensor,
)
from repro.core import (
    CompressorConfig,
    DKMConfig,
    EDKMConfig,
    ModelCompressor,
    SavedTensorPipeline,
    get_default_compressor_config,
    get_default_dkm_config,
)
from repro.serving import (
    PaletteServer,
    ServingConfig,
    get_default_serving_config,
)


def compress(
    model,
    bits: int = 3,
    *,
    dkm_config: DKMConfig | None = None,
    edkm_config: EDKMConfig | None = None,
    config: CompressorConfig | None = None,
) -> ModelCompressor:
    """Wrap ``model``'s Linears with train-time clustering; return the compressor.

    The one-call front door to :class:`~repro.core.compressor.
    ModelCompressor`: ``repro.compress(model, bits=3)`` swaps every
    eligible ``Linear`` for a :class:`~repro.core.compressor.
    ClusteredLinear` at ``2**bits`` palette entries and returns the
    compressor for sweeps (``refine_all``/``precluster``/``finalize``).
    Pass ``dkm_config`` to control clustering beyond ``bits`` (they are
    mutually exclusive with each other only when they disagree:
    ``bits`` is ignored when an explicit ``dkm_config`` is given),
    ``config`` for engine knobs (backend, workers, skip lists).
    """
    compressor = ModelCompressor(
        dkm_config or DKMConfig(bits=bits),
        edkm_config=edkm_config,
        config=config,
    )
    compressor.compress(model)
    return compressor


def serve(
    model,
    tokenizer,
    *,
    config: ServingConfig | None = None,
    device=None,
    ledger=None,
    start: bool = True,
    **overrides,
) -> PaletteServer:
    """Start a palette-aware generation server over ``model``.

    The one-call front door to :class:`~repro.serving.server.
    PaletteServer`: switches the model to eval mode, routes any
    :class:`~repro.core.compressor.ClusteredLinear` through the palette
    kernels (per ``config.eval_path``), and -- unless ``start=False`` --
    launches the scheduler thread so :meth:`~repro.serving.server.
    PaletteServer.submit` / :meth:`~repro.serving.server.PaletteServer.
    generate` are immediately usable.  Keyword ``overrides`` are
    :class:`~repro.serving.config.ServingConfig` fields
    (``repro.serve(m, tok, max_batch_size=16)``); they are mutually
    exclusive with an explicit ``config``.
    """
    if config is not None and overrides:
        raise ValueError(
            "pass ServingConfig fields either via config= or as keyword "
            f"overrides, not both (got overrides {sorted(overrides)})"
        )
    server = PaletteServer(
        model,
        tokenizer,
        config=config or get_default_serving_config(**overrides),
        device=device,
        ledger=ledger,
    )
    return server.start() if start else server


__all__ = [
    "__version__",
    "compress",
    "serve",
    "CompressorConfig",
    "DKMConfig",
    "EDKMConfig",
    "ModelCompressor",
    "PaletteServer",
    "SavedTensorPipeline",
    "ServingConfig",
    "get_default_compressor_config",
    "get_default_dkm_config",
    "get_default_serving_config",
    "baselines",
    "core",
    "data",
    "distributed",
    "evalsuite",
    "llm",
    "memory",
    "nn",
    "optim",
    "serving",
    "tensor",
]
