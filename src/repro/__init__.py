"""eDKM: memory-efficient train-time weight clustering for LLMs.

Reproduction of Cho et al., "eDKM: An Efficient and Accurate Train-time
Weight Clustering for Large Language Models" (HPCA 2025 / arXiv:2309.00964).

Quickstart::

    import repro
    from repro.core import DKMConfig, EDKMConfig, ModelCompressor, SavedTensorPipeline
    from repro.distributed import LearnerGroup

    model = ...                       # a repro.nn model on repro.tensor.GPU
    compressor = ModelCompressor(DKMConfig(bits=3))
    compressor.compress(model)        # Linears now re-cluster every forward

    pipeline = SavedTensorPipeline(
        EDKMConfig(group=LearnerGroup(8))
    )
    with pipeline.step():             # saved tensors offloaded + marshaled
        loss = ...; loss.backward()   # + uniquified + sharded (M/U/S)

Subpackages: ``tensor`` (autograd substrate), ``memory`` (byte accounting),
``nn``/``optim`` (model library), ``distributed`` (learner simulation),
``core`` (DKM + eDKM), ``baselines`` (RTN/GPTQ/AWQ/SmoothQuant/LLM-QAT),
``llm``/``data``/``evalsuite`` (end-to-end experiments), ``bench``
(table/figure regeneration).
"""

__version__ = "1.0.0"

from repro import (  # noqa: F401
    baselines,
    core,
    data,
    distributed,
    evalsuite,
    llm,
    memory,
    nn,
    optim,
    tensor,
)

__all__ = [
    "__version__",
    "baselines",
    "core",
    "data",
    "distributed",
    "evalsuite",
    "llm",
    "memory",
    "nn",
    "optim",
    "tensor",
]
