"""Crash-safe checkpoint/resume for the compression engine.

A days-long train-time clustering run must survive being killed at any
point -- by a preempted node, an OOM reaper, or the chaos suite -- and
resume *bit-identically*: the sweeps after a kill-and-resume must
produce the same centroids, assignments, palettized artifacts, and step
cache counters as a run that was never interrupted.  This module is the
persistence layer that makes that claim checkable.

A checkpoint is sweep-granular: :meth:`~repro.core.compressor.
ModelCompressor.save_checkpoint` snapshots, per wrapped layer, the exact
clustering state (centroids / temperature / iteration count, round-
tripped through hex-encoded IEEE-754 bytes so not one ulp is lost), the
layer's *warm token* (whether its step cache covers the current weight
bytes), and its hit/miss counters -- plus the compressor's sweep count
and a config epoch digest.  ``resume`` restores all of it: states are
reassigned, warm layers get a phantom :meth:`~repro.core.fastpath.
StepCache.mark_computed` entry (so the first post-resume sweep counts a
hit exactly as the uninterrupted run would), counters are overwritten
via :meth:`~repro.core.fastpath.StepCache.restore_counters`.

Durability contract:

- **Atomic**: the payload is written to a same-directory temp file,
  fsynced, then ``os.replace``d over the target -- a crash mid-save
  leaves either the old checkpoint or the new one, never a torn file.
- **Tamper-evident**: a blake2b digest over the canonical JSON payload
  is stored inside the file and re-verified on load; bit-rot surfaces
  as :class:`CheckpointCorrupt`, never as silently-wrong weights.
- **Config-pinned**: resuming under a different clustering config would
  silently diverge, so the payload pins a digest of the
  :class:`~repro.core.config.DKMConfig` and load refuses on mismatch.
- **Journaled**: every save appends a one-line record (sweep count,
  digest, layer count) to a ``<path>.journal`` sidecar, so operators
  can audit the checkpoint history of a long run.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dkm import ClusterState
from repro.core.fastpath import FastPathStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compressor import ModelCompressor

CHECKPOINT_VERSION = 1
"""Schema version stamped into (and verified from) every checkpoint."""


class CheckpointError(RuntimeError):
    """A checkpoint cannot be written or does not fit this compressor."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed its integrity digest or does not parse."""


def _config_epoch(compressor: "ModelCompressor") -> str:
    """Digest of the clustering configuration a checkpoint is valid for.

    ``repr`` of the frozen config dataclasses is deterministic and covers
    every field that influences clustering math; two runs agree on the
    epoch iff resuming one from the other's checkpoint is bit-safe.
    """
    text = f"{compressor.dkm_config!r}|{compressor.edkm_config!r}"
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def _state_to_record(state: "ClusterState | None") -> dict | None:
    """Encode a cluster state with exact (hex-byte) float round-tripping."""
    if state is None:
        return None
    centroids = np.ascontiguousarray(state.centroids, dtype=np.float32)
    return {
        "centroids": centroids.tobytes().hex(),
        "k": int(centroids.size),
        "temperature": struct.pack("<d", float(state.temperature)).hex(),
        "iterations_run": int(state.iterations_run),
    }


def _state_from_record(record: dict | None) -> "ClusterState | None":
    """Decode :func:`_state_to_record`'s output back to a live state."""
    if record is None:
        return None
    centroids = np.frombuffer(
        bytes.fromhex(record["centroids"]), dtype=np.float32
    ).copy()
    if centroids.size != record["k"]:
        raise CheckpointCorrupt(
            f"centroid payload holds {centroids.size} values, header says "
            f"{record['k']}"
        )
    return ClusterState(
        centroids=centroids,
        temperature=struct.unpack("<d", bytes.fromhex(record["temperature"]))[0],
        iterations_run=int(record["iterations_run"]),
    )


def _payload_digest(payload: dict) -> str:
    """Blake2b over the canonical JSON of ``payload`` sans its digest."""
    stripped = {key: value for key, value in payload.items() if key != "digest"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def build_payload(compressor: "ModelCompressor") -> dict:
    """The complete, digested, JSON-serializable checkpoint payload."""
    layers = {}
    for name, wrapper in compressor.wrapped.items():
        cache = wrapper.step_cache
        stats = cache.stats
        layers[name] = {
            "state": _state_to_record(wrapper.clusterer.state),
            "warm": cache.is_warm(
                wrapper.inner.weight, wrapper.dkm_config.weight_dtype
            ),
            "stats": {
                "uniquify_hits": stats.uniquify_hits,
                "uniquify_misses": stats.uniquify_misses,
                "table_hits": stats.table_hits,
                "table_misses": stats.table_misses,
            },
        }
    payload = {
        "version": CHECKPOINT_VERSION,
        "config_epoch": _config_epoch(compressor),
        "sweeps_completed": compressor.sweeps_completed,
        "backend": compressor.config.backend,
        "active_backend": compressor.active_backend,
        "layers": layers,
    }
    payload["digest"] = _payload_digest(payload)
    return payload


def write_checkpoint(compressor: "ModelCompressor", path: str) -> str:
    """Atomically persist ``compressor``'s state to ``path``; return digest.

    tmp + fsync + ``os.replace`` in the target's directory, so the
    rename is atomic on POSIX and a crash at any byte offset leaves a
    valid file.  A one-line history record is appended to
    ``<path>.journal`` after the rename lands.
    """
    payload = build_payload(compressor)
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    data = json.dumps(payload, sort_keys=True, indent=1)
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    journal_line = json.dumps(
        {
            "sweeps_completed": payload["sweeps_completed"],
            "digest": payload["digest"],
            "layers": len(payload["layers"]),
        },
        sort_keys=True,
    )
    with open(f"{path}.journal", "a", encoding="utf-8") as handle:
        handle.write(journal_line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return payload["digest"]


def read_checkpoint(path: str) -> dict:
    """Load and integrity-check a checkpoint file (no compressor needed)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointCorrupt(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "digest" not in payload:
        raise CheckpointCorrupt(f"checkpoint {path!r} has no digest field")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} is schema version {payload.get('version')}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    expected = _payload_digest(payload)
    if payload["digest"] != expected:
        raise CheckpointCorrupt(
            f"checkpoint {path!r} failed its integrity digest "
            f"(stored {payload['digest']}, computed {expected})"
        )
    return payload


def restore_payload(compressor: "ModelCompressor", payload: dict) -> None:
    """Install a verified payload into ``compressor`` (bit-exact resume)."""
    if payload["config_epoch"] != _config_epoch(compressor):
        raise CheckpointError(
            "checkpoint was written under a different clustering config; "
            "resuming would silently diverge"
        )
    names = set(compressor.wrapped)
    recorded = set(payload["layers"])
    if names != recorded:
        missing = sorted(names - recorded)
        extra = sorted(recorded - names)
        raise CheckpointError(
            f"checkpoint layer set does not match the model "
            f"(missing from checkpoint: {missing}, unknown to model: {extra})"
        )
    for name, wrapper in compressor.wrapped.items():
        record = payload["layers"][name]
        wrapper.clusterer.state = _state_from_record(record["state"])
        cache = wrapper.step_cache
        cache.invalidate()
        if record["warm"]:
            # Phantom entry: the interrupted run had already computed the
            # decomposition of these exact bytes, so the first post-resume
            # uniquify must count a hit, just as it would have.
            cache.mark_computed(
                wrapper.inner.weight, wrapper.dkm_config.weight_dtype
            )
        stats = record["stats"]
        cache.restore_counters(
            FastPathStats(
                uniquify_hits=stats["uniquify_hits"],
                uniquify_misses=stats["uniquify_misses"],
                table_hits=stats["table_hits"],
                table_misses=stats["table_misses"],
            )
        )
    compressor.restore_progress(
        sweeps_completed=int(payload["sweeps_completed"]),
        active_backend=payload.get("active_backend"),
    )


def load_checkpoint(compressor: "ModelCompressor", path: str) -> dict:
    """Read, verify, and install ``path``; return the payload for audits."""
    payload = read_checkpoint(path)
    restore_payload(compressor, payload)
    return payload


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorrupt",
    "CheckpointError",
    "build_payload",
    "load_checkpoint",
    "read_checkpoint",
    "restore_payload",
    "write_checkpoint",
]
