"""Model-level train-time compression.

``ClusteredLinear`` wraps a Linear so that every forward re-clusters its
weight through DKM/eDKM -- the train-time weight clustering the paper
fine-tunes with.  ``ModelCompressor`` swaps the wrappers into a model,
coordinates the shared :class:`~repro.core.offload.SavedTensorPipeline`,
and finalizes the fine-tuned model into palettized artifacts.

Per-layer clustering is embarrassingly parallel -- each ``ClusteredLinear``
owns its weight storage, its :class:`~repro.core.dkm.DKMClusterer`, and its
:class:`~repro.core.fastpath.StepCache` -- so the compressor fans its
no-grad sweeps (``refine_all`` / ``precluster`` / ``finalize``) out over an
execution backend selected by ``CompressorConfig.backend``:

- ``"serial"`` -- the reference loop on the calling thread;
- ``"thread"`` (default) -- a ``ThreadPoolExecutor``
  (:func:`parallel_layer_map`): numpy releases the GIL inside the big
  uniquify/gather/softmax kernels, so kernel time overlaps on multi-core
  hosts, but Python-side op dispatch still serializes;
- ``"process"`` -- the :class:`~repro.core.procpool.ProcessLayerEngine`:
  workers rebuild each layer's weight as a zero-copy shared-memory view,
  overlapping dispatch as well.  Its default ``affinity="sticky"`` mode
  pins each layer to one worker so uniquify products, attention tables,
  and shm attachments stay worker-resident across sweeps and warm sweeps
  ship only ``O(k)`` deltas (``affinity="chunked"`` keeps the stateless
  round-robin task pool).

**Bit-identity invariant** (established for the thread backend in the
parallel-engine PR and extended to processes here): every backend hands
each layer to exactly one worker, per-layer clustering is a pure function
of (weight bytes, prior cluster state, config), and results -- centroids,
assignments, palettized artifacts, per-layer
:class:`~repro.core.fastpath.StepCache` counters, and the carried
refine->forward attention table -- are merged in layer *insertion order*
regardless of completion order.  The three backends are therefore
interchangeable: same outputs, same stats, different wall time.

**Thread-safety invariant**: pool workers only *read* layer weights; all
writes (optimizer steps) happen on the thread/process that owns the
training loop.  Per-layer step caches are internally locked, so even a
mis-use that hands one layer to two workers degrades to recompute, never
to corruption (see ``StepCache``).
"""

from __future__ import annotations

import warnings
import weakref
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, TypeVar

import numpy as np

from repro.core.config import CompressorConfig, DKMConfig, EDKMConfig
from repro.core.dkm import ClusterState, DKMClusterer
from repro.core.edkm import cluster
from repro.core.fastpath import FastPathReport, FastPathStats, StepCache
from repro.core.faults import (
    PoolExhausted,
    RobustnessWarning,
    WatchdogTimeout,
)
from repro.core.palettize import PalettizedTensor, kmeans_palettize
from repro.nn.linear import Embedding, Linear
from repro.nn.module import Module
from repro.tensor.dtype import promote
from repro.tensor.serialization import ShmLost
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.faults import FaultLog
    from repro.core.procpool import ProcessLayerEngine, TransportStats

_DEGRADATION_LADDER = {"sharded": "process", "process": "thread", "thread": "serial"}
"""Backend demotion order: each infrastructure-class sweep failure steps
one rung down; ``serial`` is the floor and its errors always propagate."""

_INFRA_FAILURES = (PoolExhausted, WatchdogTimeout, BrokenExecutor, ShmLost)
"""Sweep-level failures that indicate broken *infrastructure* (pools, shm,
deadlines) rather than broken math.  Only these trigger degradation: an
op exception is deterministic and would reproduce on every backend, so
demoting for it would just re-raise more slowly."""

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_layer_map(
    fn: Callable[[_T], _R],
    items: Iterable[tuple[str, _T]],
    num_workers: int,
) -> dict[str, _R]:
    """Apply ``fn`` to named, independent layer tasks; deterministic order.

    With ``num_workers <= 1`` (or a single task) this is a plain serial
    loop on the calling thread -- the reference behavior.  Otherwise tasks
    are submitted to a :class:`ThreadPoolExecutor` in input order and the
    results are *gathered* in input order, so the returned dict is
    identical to the serial sweep's no matter how the pool interleaves.
    Exceptions propagate from the first failing task in input order.

    Callers must hand each layer to exactly one task: the per-layer
    clusterer, step cache, and cluster state are only synchronized against
    concurrent use of *different* layers (see ``StepCache``'s lock notes).
    """
    pairs = list(items)
    if num_workers <= 1 or len(pairs) <= 1:
        return {name: fn(task) for name, task in pairs}
    with ThreadPoolExecutor(max_workers=num_workers) as pool:
        futures = [(name, pool.submit(fn, task)) for name, task in pairs]
        return {name: future.result() for name, future in futures}


class ClusteredLinear(Module):
    """A Linear whose weight passes through differentiable clustering.

    The underlying fp weight remains the trainable parameter; the matmul
    consumes its clustered reconstruction, so gradients shape both the
    weights and (through the soft assignment) the clustering.
    """

    def __init__(
        self,
        inner: Linear,
        dkm_config: DKMConfig,
        uniquify_enabled: bool = True,
        reconstruct_backward: bool = True,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.dkm_config = dkm_config
        self.uniquify_enabled = uniquify_enabled
        self.reconstruct_backward = reconstruct_backward
        self.clusterer = DKMClusterer(dkm_config)
        # Eval-path state: the version-keyed hard-weight cache, the shared
        # (centroids, assignments) products both eval paths derive from,
        # and the optional palette executor (enable_palette_eval).
        self._hard_cache: tuple | None = None
        self._hard_products_cache: tuple | None = None
        self._palette_opts: tuple | None = None
        self._palette_exec = None
        # Clustering keys on 16-bit patterns: keep the master weight in the
        # configured 16-bit training dtype (paper: bfloat16).
        if inner.weight.dtype is not dkm_config.weight_dtype:
            inner.weight.copy_(inner.weight.numpy())  # re-projects in place
            inner.weight.storage = _reproject_storage(
                inner.weight, dkm_config.weight_dtype
            )
            inner.weight.dtype = dkm_config.weight_dtype

    def forward(self, x: Tensor) -> Tensor:
        """``x @ clustered(W).T + b``: soft clustering while training, the
        cached hard-palettized weight in eval mode."""
        if self.training:
            clustered = cluster(
                self.inner.weight,
                self.clusterer,
                uniquify_enabled=self.uniquify_enabled,
                reconstruct_backward=self.reconstruct_backward,
            )
        else:
            from repro.tensor.autograd import is_grad_enabled

            # Eval mode: hard palettized weights (deployment behavior).
            # Palette execution only applies off the autograd tape -- it
            # returns detached values, so a recorded eval forward (e.g.
            # probing gradients against frozen weights) keeps the dense
            # reconstruction path.
            if self._palette_opts is not None and not is_grad_enabled():
                return self._palette_forward(x)
            clustered = self._hard_weight()
        out = x @ clustered.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def train(self, mode: bool = True) -> "ClusteredLinear":
        """Switch train/eval mode, dropping the hard-weight eval cache.

        Mode changes signal intent to (stop) mutating weights, so the
        cached palettized reconstruction is conservatively dropped even
        though it is also keyed on the weight storage version.
        """
        object.__setattr__(self, "_hard_cache", None)
        super().train(mode)
        return self

    def _weight_version_key(self) -> tuple:
        """The (version, view) key a weight write invalidates."""
        weight = self.inner.weight
        return (
            weight.storage.version,
            weight.shape,
            weight.strides,
            weight.offset,
        )

    def _hard_products(self) -> tuple[np.ndarray, np.ndarray]:
        """``(centroids, assignments)`` for the current weight version.

        Computed once per version and shared by *both* eval paths:
        ``refine`` warm-starts from mutable clusterer state, so a second
        call against the same bytes can keep converging and yield a
        slightly different palette -- the dense reconstruction and the
        palette executor must consume the same snapshot or their outputs
        diverge beyond summation order.
        """
        from repro.tensor.autograd import no_grad

        weight = self.inner.weight
        key = self._weight_version_key()
        cached = self._hard_products_cache
        if (
            cached is not None
            and cached[0] == key
            and cached[1]() is weight.storage
        ):
            return cached[2], cached[3]
        with no_grad():
            state = self.clusterer.refine(weight)
            assignments = np.asarray(
                self.clusterer.hard_assign(weight), dtype=np.int64
            )
        centroids = state.centroids.copy()
        self._hard_products_cache = (
            key,
            weakref.ref(weight.storage),
            centroids,
            assignments,
        )
        return centroids, assignments

    def _hard_weight(self) -> Tensor:
        weight = self.inner.weight
        key = self._weight_version_key()
        cached = getattr(self, "_hard_cache", None)
        # Keyed on Storage.version (the counter every in-place write
        # bumps), not just on mode changes: an optimizer step or
        # weight.copy_ while the module stays in eval mode must not
        # keep serving the stale palettized reconstruction.
        if (
            cached is not None
            and cached[0] == key
            and cached[1]() is weight.storage
        ):
            return cached[2]
        centroids, assignments = self._hard_products()
        values = centroids[assignments].reshape(weight.shape)
        hard = Tensor.from_numpy(values, dtype=weight.dtype, device=weight.device)
        object.__setattr__(
            self, "_hard_cache", (key, weakref.ref(weight.storage), hard)
        )
        return hard

    # ------------------------------------------------------------------
    # Palette eval path (serving)
    # ------------------------------------------------------------------

    def enable_palette_eval(
        self,
        name: str = "",
        tile_rows: int = 32,
        cache=None,
        fault_hook=None,
    ) -> None:
        """Route no-grad eval forwards through the palette executor.

        ``cache`` is an optional shared
        :class:`~repro.serving.palette.TileCache`; ``name`` keys this
        layer's tiles in it.  ``fault_hook`` (serving chaos harness) is
        called with the layer name at every palette matmul entry.  The
        executor itself is built lazily on the first palette forward and
        rebuilt whenever the weight storage version moves, so enabling is
        cheap and never serves stale palettes.
        """
        self._palette_opts = (name, max(1, int(tile_rows)), cache, fault_hook)
        self._palette_exec = None

    def disable_palette_eval(self) -> None:
        """Restore the dense-reconstruction eval path, dropping tiles."""
        if self._palette_exec is not None:
            self._palette_exec.invalidate()
        self._palette_opts = None
        self._palette_exec = None

    @property
    def eval_path(self) -> str:
        """``"palette"`` when the executor is installed, else ``"dense"``."""
        return "dense" if self._palette_opts is None else "palette"

    @property
    def palette_exec(self):
        """The live :class:`~repro.serving.palette.PaletteLinearExec`.

        ``None`` until the first palette forward builds it (or when the
        palette path is disabled).
        """
        return self._palette_exec

    def _palette_executor(self):
        """The executor for the current weight version, (re)built lazily."""
        from repro.serving.palette import PaletteLinearExec

        name, tile_rows, cache, fault_hook = self._palette_opts
        key = self._weight_version_key()
        exec_ = self._palette_exec
        if exec_ is not None and exec_.version_token == key:
            return exec_
        if exec_ is not None:
            exec_.invalidate()
        weight = self.inner.weight
        centroids, assignments = self._hard_products()
        # Project the palette through the weight dtype's grid so palette
        # arithmetic consumes exactly the values the dense reconstruction
        # (Tensor.from_numpy(..., dtype=weight.dtype)) would.
        lut = Tensor.from_numpy(centroids, dtype=weight.dtype)._compute()
        indices = assignments.reshape(weight.shape)
        exec_ = PaletteLinearExec(
            name,
            lut,
            indices,
            tile_rows=tile_rows,
            cache=cache,
            version_token=key,
            fault_hook=fault_hook,
        )
        self._palette_exec = exec_
        return exec_

    def _palette_forward(self, x: Tensor) -> Tensor:
        """Eval forward through the palette executor (host numpy)."""
        exec_ = self._palette_executor()
        weight = self.inner.weight
        x_np = x._compute()
        flat = x_np.reshape(-1, weight.shape[1])
        y = exec_.matmul(flat)
        out_np = y.reshape(*x_np.shape[:-1], weight.shape[0])
        out = Tensor.from_numpy(
            out_np, dtype=promote(x.dtype, weight.dtype), device=x.device
        )
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    @property
    def step_cache(self) -> StepCache:
        """This layer's fast-path memo (shared by refine/assign/palettize)."""
        return self.clusterer.fastpath

    def palettize(self) -> PalettizedTensor:
        """Freeze the clustering into a deployable LUT + indices artifact."""
        return palettize_op(self.clusterer, self.inner.weight, self.dkm_config.bits)

    def __repr__(self) -> str:
        return (
            f"ClusteredLinear({self.inner!r}, bits={self.dkm_config.bits}, "
            f"uniquify={self.uniquify_enabled})"
        )


def _reproject_storage(param, dtype):
    from repro.tensor.storage import Storage

    return Storage.from_values(param._compute(), dtype, param.device)


@dataclass
class LayerClusterResult:
    """One layer's converged clustering, as returned by ``precluster``.

    ``centroids`` is a snapshot (copied out of the mutable
    :class:`~repro.core.dkm.ClusterState`), so results stay stable if
    training continues; ``assignments`` is the flat nearest-centroid index
    per weight position.
    """

    centroids: np.ndarray  # (k,) float32 snapshot
    temperature: float
    iterations_run: int
    assignments: np.ndarray  # (|W|,) int64
    reconstruction_error: float | None = None


# ----------------------------------------------------------------------
# Sweep ops
#
# One function per engine sweep, taking only (clusterer, weights, ...).
# Every backend executes these exact functions -- the serial loop and the
# thread pool call them on the wrapper's own clusterer, the process
# backend calls them inside workers on a reconstructed clusterer -- which
# is what makes backend equivalence hold by construction rather than by
# parallel-maintained code paths.
# ----------------------------------------------------------------------


def refine_op(
    clusterer: DKMClusterer, weights: Tensor, cache_table: bool = False
) -> ClusterState:
    """One layer's centroid refinement (the ``refine_all`` sweep body)."""
    return clusterer.refine(weights, cache_table=cache_table)


def precluster_op(
    clusterer: DKMClusterer, weights: Tensor, compute_error: bool = False
) -> LayerClusterResult:
    """One layer's refine + hard-assign snapshot (``precluster`` body)."""
    state = clusterer.refine(weights, cache_table=True)
    assignments = clusterer.hard_assign(weights)
    error = clusterer.reconstruction_error(weights) if compute_error else None
    return LayerClusterResult(
        centroids=state.centroids.copy(),
        temperature=state.temperature,
        iterations_run=state.iterations_run,
        assignments=np.asarray(assignments, dtype=np.int64),
        reconstruction_error=error,
    )


def palettize_op(
    clusterer: DKMClusterer, weights: Tensor, bits: int
) -> PalettizedTensor:
    """One layer's refine + hard-assign + LUT packing (``finalize`` body)."""
    state = clusterer.refine(weights)
    assignments = clusterer.hard_assign(weights)
    return PalettizedTensor.from_assignments(
        state.centroids, assignments, bits, tuple(weights.shape)
    )


SWEEP_OPS: dict[str, Callable] = {
    "refine": refine_op,
    "precluster": precluster_op,
    "palettize": palettize_op,
}
"""Sweep-op registry, keyed by the names the process backend ships to its
workers (:func:`repro.core.procpool._run_layer_batch` resolves them here)."""


@dataclass
class CompressionReport:
    """Sizes of the palettized model."""

    palettized: dict[str, PalettizedTensor] = field(default_factory=dict)
    uncompressed: dict[str, int] = field(default_factory=dict)  # name -> bytes kept

    @property
    def total_bytes(self) -> int:
        """Palettized bytes plus everything deliberately left at 16-bit."""
        return sum(p.nbytes for p in self.palettized.values()) + sum(
            self.uncompressed.values()
        )

    def summary(self) -> str:
        """A per-tensor size table (bits/weight and bytes), TOTAL last."""
        lines = [f"{'tensor':<40} {'bits/w':>8} {'bytes':>12}"]
        for name, p in sorted(self.palettized.items()):
            lines.append(f"{name:<40} {p.bits_per_weight:>8.2f} {p.nbytes:>12}")
        for name, nbytes in sorted(self.uncompressed.items()):
            lines.append(f"{name:<40} {'16.00':>8} {nbytes:>12}")
        lines.append(f"{'TOTAL':<40} {'':>8} {self.total_bytes:>12}")
        return "\n".join(lines)


class ModelCompressor:
    """Wraps a model's Linears with DKM clustering; finalizes to palettes.

    Embeddings are palettized post-training at ``embedding_bits`` (paper:
    "we also compressed the embedding layers with 8 bits"); norms and biases
    stay in 16-bit.
    """

    def __init__(
        self,
        dkm_config: DKMConfig,
        edkm_config: EDKMConfig | None = None,
        embedding_bits: int | None = None,
        skip_names: tuple[str, ...] | None = None,
        config: CompressorConfig | None = None,
    ) -> None:
        self.dkm_config = dkm_config
        self.edkm_config = edkm_config or EDKMConfig(
            offload=False, marshal=False, uniquify=True, shard=False, group=None
        )
        # The loose keyword arguments are the long-standing shorthand for
        # the serial engine; a CompressorConfig carries the same fields, so
        # mixing the two would make one of them silently lose.
        if config is not None:
            if embedding_bits is not None or skip_names is not None:
                raise ValueError(
                    "pass embedding_bits/skip_names on the CompressorConfig "
                    "when a config object is given, not as keyword arguments"
                )
            self.config = config
        else:
            self.config = CompressorConfig(
                embedding_bits=8 if embedding_bits is None else embedding_bits,
                skip_names=() if skip_names is None else skip_names,
            )
        self.wrapped: dict[str, ClusteredLinear] = {}
        # Lazily-created process backend (pool + shm exports); None until
        # the first sweep runs with config.backend == "process".
        self._engine: "ProcessLayerEngine | None" = None
        # Robustness state: the degradation ladder's current override
        # (None = run on config.backend), the demotion history, and the
        # sweep counter the checkpoint layer persists.
        self._backend_override: str | None = None
        self.degradations: list[tuple[str, str, str]] = []
        self._sweeps_completed = 0

    @property
    def embedding_bits(self) -> int:
        """Embedding palettization width (delegates to the config)."""
        return self.config.embedding_bits

    @property
    def skip_names(self) -> tuple[str, ...]:
        """Module-path prefixes exempted from wrapping (from the config)."""
        return self.config.skip_names

    def compress(self, model: Module) -> Module:
        """Replace every target Linear in ``model`` with a ClusteredLinear."""
        self._wrap_children(model, prefix="")
        if not self.wrapped:
            raise ValueError("no Linear layers found to compress")
        return model

    def _wrap_children(self, module: Module, prefix: str) -> None:
        for name, child in list(module._modules.items()):
            full_name = f"{prefix}{name}"
            if any(full_name.startswith(skip) for skip in self.skip_names):
                continue
            if isinstance(child, Linear):
                wrapper = ClusteredLinear(
                    child,
                    self.dkm_config,
                    uniquify_enabled=self.edkm_config.uniquify,
                )
                setattr(module, name, wrapper)
                self.wrapped[full_name] = wrapper
            else:
                self._wrap_children(child, prefix=f"{full_name}.")

    # ------------------------------------------------------------------
    # Parallel per-layer engine
    # ------------------------------------------------------------------

    def _layer_map(self, fn: Callable[[ClusteredLinear], _R]) -> dict[str, _R]:
        """Fan ``fn`` out over all wrapped layers (see ``parallel_layer_map``)."""
        return parallel_layer_map(
            fn,
            self.wrapped.items(),
            self.config.resolve_workers(len(self.wrapped)),
        )

    def _process_engine(self, backend: str = "process") -> "ProcessLayerEngine":
        """The lazily-created engine for a process-class backend.

        ``"process"`` builds the single-host pool engine; ``"sharded"``
        builds the multi-node cluster scheduler (a subclass sharing the
        same interface).  The two never coexist: demotion closes and
        forgets the sharded engine before the process engine is built.
        """
        if self._engine is None:
            if backend == "sharded":
                from repro.distributed.scheduler import ShardedClusterEngine

                self._engine = ShardedClusterEngine(self.config)
            else:
                from repro.core.procpool import ProcessLayerEngine

                self._engine = ProcessLayerEngine(self.config)
        return self._engine

    @property
    def active_backend(self) -> str:
        """The backend sweeps currently run on (degradation-aware).

        Starts as ``config.backend`` and only moves *down* the ladder
        (sharded -> process -> thread -> serial) when an infrastructure
        failure demotes it; never silently promotes back.
        """
        return self._backend_override or self.config.backend

    @property
    def sweeps_completed(self) -> int:
        """Sweeps merged so far (the checkpoint layer's progress marker)."""
        return self._sweeps_completed

    def _demote(self, failed_backend: str, exc: BaseException) -> None:
        """Step one rung down the degradation ladder, warning loudly."""
        next_backend = _DEGRADATION_LADDER[failed_backend]
        reason = f"{type(exc).__name__}: {exc}"
        self._backend_override = next_backend
        self.degradations.append((failed_backend, next_backend, reason))
        if failed_backend in ("process", "sharded") and self._engine is not None:
            # The engine already reset itself on the way out; close it so
            # no pools or blocks linger while we run degraded.  A failed
            # sharded engine is also *forgotten*, so a later process-rung
            # sweep lazily builds the right engine class.
            self._engine.close()
            if failed_backend == "sharded":
                self._engine = None
        warnings.warn(
            f"{failed_backend!r} backend failed a sweep ({reason}); degrading "
            f"to {next_backend!r} for the rest of the run",
            RobustnessWarning,
            stacklevel=4,
        )

    def _sweep(self, op: str, **kwargs) -> dict[str, _R]:
        """Run one sweep op over all layers through the active backend.

        Serial/thread backends call the :data:`SWEEP_OPS` function on each
        wrapper's own clusterer; the process backend ships
        :class:`~repro.core.procpool.LayerTask` batches to pool workers and
        merges the outcomes back in layer insertion order: the worker's
        final cluster state replaces the layer's, its
        :class:`~repro.core.fastpath.FastPathStats` deltas fold into the
        layer's step cache, the cache is marked *phantom-warm* for the
        swept weight bytes, and any carried attention table is re-parked
        -- after which the layer is indistinguishable (outputs, counters,
        and subsequent cache behavior) from one swept serially, except
        that the decomposition products are re-residented lazily on next
        local use.

        **Degradation ladder** (``config.degrade``, on by default): an
        infrastructure failure -- the engine's respawn budget running out
        (:class:`~repro.core.faults.PoolExhausted`), a chunked-mode hang
        (:class:`~repro.core.faults.WatchdogTimeout`), a broken pool, a
        lost shm block -- demotes the run one backend down (process ->
        thread -> serial) with a :class:`~repro.core.faults.
        RobustnessWarning` and re-runs the sweep there.  The re-run is
        bit-safe because a failed process sweep merges *nothing*: the
        engine raises before any outcome touches a wrapper.  Op
        exceptions (bad math, bad kwargs) are not absorbed -- they are
        deterministic and would fail on every backend.
        """
        while True:
            backend = self.active_backend
            try:
                results = self._sweep_on(backend, op, **kwargs)
            except _INFRA_FAILURES as exc:
                if backend == "serial" or not self.config.degrade:
                    raise
                self._demote(backend, exc)
                continue
            self._sweeps_completed += 1
            return results

    def _sweep_on(self, backend: str, op: str, **kwargs) -> dict[str, _R]:
        """One sweep attempt on one explicit backend (no ladder, no retry)."""
        if backend not in ("process", "sharded"):
            num_workers = (
                1
                if backend == "serial"
                else self.config.resolve_workers(len(self.wrapped))
            )
            return parallel_layer_map(
                lambda wrapper: SWEEP_OPS[op](
                    wrapper.clusterer, wrapper.inner.weight, **kwargs
                ),
                self.wrapped.items(),
                num_workers,
            )
        outcomes = self._process_engine(backend).map_layers(
            op,
            [
                (name, wrapper.clusterer, wrapper.inner.weight)
                for name, wrapper in self.wrapped.items()
            ],
            **kwargs,
        )
        results: dict[str, _R] = {}
        for name, wrapper in self.wrapped.items():
            outcome = outcomes[name]
            wrapper.clusterer.state = outcome.state
            cache = wrapper.step_cache
            cache.absorb(outcome.stats)
            cache.mark_computed(
                wrapper.inner.weight, wrapper.dkm_config.weight_dtype
            )
            if outcome.table is not None:
                cache.store_table(*outcome.table)
            results[name] = outcome.result
        return results

    def transport_stats(self) -> "TransportStats | None":
        """The process backend's per-sweep shipping counters, if it ran.

        ``None`` for the serial/thread backends (nothing is pickled) and
        before the first process sweep.  Under ``affinity="sticky"`` the
        ``last_sweep_*`` fields show the delta-shipping effect directly:
        a warm sweep's ``last_sweep_delta_tasks`` equals the layer count
        and its ``last_sweep_bytes`` undercuts the same sweep under
        ``affinity="chunked"`` (see ``benchmarks/bench_affinity.py``).
        """
        return self._engine.transport if self._engine is not None else None

    def fault_log(self) -> "FaultLog | None":
        """The chaos injector's event log, if a fault plan is armed.

        ``None`` when ``config.fault_plan`` is unset or no process-class
        engine has been created yet; fault injection only instruments the
        process and sharded backends (the serial/thread paths have no
        workers to kill, hang, or corrupt payloads for).
        """
        return self._engine.fault_log if self._engine is not None else None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def save_checkpoint(self, path: str) -> str:
        """Atomically persist clustering progress to ``path``; return digest.

        Sweep-granular: per-layer cluster states (exact IEEE-754 bytes),
        warm tokens, and step-cache counters, plus the sweep count and a
        config-epoch pin -- everything :meth:`resume` needs to continue
        bit-identically to a run that was never interrupted.  See
        :mod:`repro.core.checkpoint` for the durability contract.
        """
        from repro.core.checkpoint import write_checkpoint

        return write_checkpoint(self, path)

    def resume(self, path: str) -> dict:
        """Restore clustering progress saved by :meth:`save_checkpoint`.

        Verifies the payload digest and the config epoch, then reinstalls
        every layer's state, warm token, and counters; subsequent sweeps
        are bit-identical -- outputs *and* counters -- to the
        uninterrupted run's.  Returns the verified payload for audits.
        """
        from repro.core.checkpoint import load_checkpoint

        return load_checkpoint(self, path)

    def restore_progress(
        self, sweeps_completed: int, active_backend: "str | None" = None
    ) -> None:
        """Reinstall checkpointed progress markers (used by resume).

        A degraded run resumes degraded: whatever infrastructure failure
        forced the demotion (a flaky node, a reaped ``/dev/shm``) is
        assumed to outlive the restart, so resume never silently promotes
        back to a backend that was already proven broken.
        """
        self._sweeps_completed = sweeps_completed
        if active_backend is not None and active_backend != self.config.backend:
            self._backend_override = active_backend

    def close(self) -> None:
        """Release the process backend: shut the pool down, unlink shm.

        No-op for the serial/thread backends and safe to call repeatedly;
        a compressor is also usable again afterwards (the next process
        sweep rebuilds pool and exports).  ``ModelCompressor`` is a
        context manager for exactly this cleanup.
        """
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "ModelCompressor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def refine_all(self, cache_table: bool = False) -> dict[str, ClusterState]:
        """Converge every layer's centroids; one pool task per layer.

        Equivalent to calling ``wrapper.clusterer.refine`` on each wrapped
        layer in insertion order, and bit-identical to that serial sweep:
        layers share no clustering state, so the fan-out cannot reorder any
        floating-point reduction *within* a layer.
        """
        return self._sweep("refine", cache_table=cache_table)

    def precluster(self, compute_error: bool = False) -> dict[str, LayerClusterResult]:
        """Refine + hard-assign every layer, in parallel, snapshotting results.

        This is the multi-layer compression sweep the paper runs once per
        checkpoint/deployment: converge centroids, then map each weight to
        its nearest centroid.  Returns per-layer
        :class:`LayerClusterResult` in layer insertion order.
        """
        return self._sweep("precluster", compute_error=compute_error)

    def fastpath_report(self) -> FastPathReport:
        """Aggregate per-layer step-cache hit/miss counters.

        Counters are copied at call time, so the report is a stable
        snapshot (deltas between two reports stay meaningful as training
        continues).
        """
        return FastPathReport(
            per_layer={
                name: wrapper.step_cache.stats.merge(FastPathStats())
                for name, wrapper in self.wrapped.items()
            }
        )

    def release_step_caches(self) -> None:
        """Drop every layer's cached decomposition (frees O(|W|) host bytes
        per layer; the next step simply re-uniquifies)."""
        for wrapper in self.wrapped.values():
            wrapper.step_cache.invalidate()

    def finalize(self, model: Module) -> CompressionReport:
        """Palettize all clustered layers and embeddings; report sizes.

        The per-layer palettization (refine + hard assign + pack) fans out
        over the engine's worker pool; embeddings and the byte accounting
        stay on the calling thread.
        """
        report = CompressionReport()
        report.palettized.update(self._sweep("palettize", bits=self.dkm_config.bits))
        for name, module in model.named_modules():
            if isinstance(module, Embedding):
                report.palettized[f"{name}.weight"] = kmeans_palettize(
                    module.weight._compute(), self.embedding_bits
                )
            elif hasattr(module, "weight") and not isinstance(
                module, (Linear, ClusteredLinear, Embedding)
            ):
                weight = getattr(module, "weight", None)
                if isinstance(weight, Tensor):
                    report.uncompressed[f"{name}.weight"] = 2 * weight.numel
        for name, wrapper in self.wrapped.items():
            if wrapper.inner.bias is not None:
                report.uncompressed[f"{name}.bias"] = 2 * wrapper.inner.bias.numel
        return report


def dequantized_state(report: CompressionReport) -> dict[str, np.ndarray]:
    """Materialize fp32 weights from a compression report (for evaluation)."""
    return {name: p.dequantize() for name, p in report.palettized.items()}
