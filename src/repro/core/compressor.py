"""Model-level train-time compression.

``ClusteredLinear`` wraps a Linear so that every forward re-clusters its
weight through DKM/eDKM -- the train-time weight clustering the paper
fine-tunes with.  ``ModelCompressor`` swaps the wrappers into a model,
coordinates the shared :class:`~repro.core.offload.SavedTensorPipeline`,
and finalizes the fine-tuned model into palettized artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DKMConfig, EDKMConfig
from repro.core.dkm import DKMClusterer
from repro.core.edkm import cluster
from repro.core.fastpath import FastPathReport, FastPathStats, StepCache
from repro.core.palettize import PalettizedTensor, kmeans_palettize
from repro.nn.linear import Embedding, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class ClusteredLinear(Module):
    """A Linear whose weight passes through differentiable clustering.

    The underlying fp weight remains the trainable parameter; the matmul
    consumes its clustered reconstruction, so gradients shape both the
    weights and (through the soft assignment) the clustering.
    """

    def __init__(
        self,
        inner: Linear,
        dkm_config: DKMConfig,
        uniquify_enabled: bool = True,
        reconstruct_backward: bool = True,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.dkm_config = dkm_config
        self.uniquify_enabled = uniquify_enabled
        self.reconstruct_backward = reconstruct_backward
        self.clusterer = DKMClusterer(dkm_config)
        # Clustering keys on 16-bit patterns: keep the master weight in the
        # configured 16-bit training dtype (paper: bfloat16).
        if inner.weight.dtype is not dkm_config.weight_dtype:
            inner.weight.copy_(inner.weight.numpy())  # re-projects in place
            inner.weight.storage = _reproject_storage(
                inner.weight, dkm_config.weight_dtype
            )
            inner.weight.dtype = dkm_config.weight_dtype

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            clustered = cluster(
                self.inner.weight,
                self.clusterer,
                uniquify_enabled=self.uniquify_enabled,
                reconstruct_backward=self.reconstruct_backward,
            )
        else:
            # Eval mode: hard palettized weights (deployment behavior).
            clustered = self._hard_weight()
        out = x @ clustered.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def train(self, mode: bool = True) -> "ClusteredLinear":
        # Weights only change while training; drop the eval cache on any
        # mode change so eval always sees the latest clustering.
        object.__setattr__(self, "_hard_cache", None)
        super().train(mode)
        return self

    def _hard_weight(self) -> Tensor:
        from repro.tensor.autograd import no_grad

        cached = getattr(self, "_hard_cache", None)
        if cached is not None:
            return cached
        with no_grad():
            state = self.clusterer.refine(self.inner.weight)
            assignments = self.clusterer.hard_assign(self.inner.weight)
            values = state.centroids[assignments].reshape(self.inner.weight.shape)
            hard = Tensor.from_numpy(
                values, dtype=self.inner.weight.dtype, device=self.inner.weight.device
            )
        object.__setattr__(self, "_hard_cache", hard)
        return hard

    @property
    def step_cache(self) -> StepCache:
        """This layer's fast-path memo (shared by refine/assign/palettize)."""
        return self.clusterer.fastpath

    def palettize(self) -> PalettizedTensor:
        """Freeze the clustering into a deployable LUT + indices artifact."""
        state = self.clusterer.refine(self.inner.weight)
        assignments = self.clusterer.hard_assign(self.inner.weight)
        return PalettizedTensor.from_assignments(
            state.centroids,
            assignments,
            self.dkm_config.bits,
            tuple(self.inner.weight.shape),
        )

    def __repr__(self) -> str:
        return (
            f"ClusteredLinear({self.inner!r}, bits={self.dkm_config.bits}, "
            f"uniquify={self.uniquify_enabled})"
        )


def _reproject_storage(param, dtype):
    from repro.tensor.storage import Storage

    return Storage.from_values(param._compute(), dtype, param.device)


@dataclass
class CompressionReport:
    """Sizes of the palettized model."""

    palettized: dict[str, PalettizedTensor] = field(default_factory=dict)
    uncompressed: dict[str, int] = field(default_factory=dict)  # name -> bytes kept

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.palettized.values()) + sum(
            self.uncompressed.values()
        )

    def summary(self) -> str:
        lines = [f"{'tensor':<40} {'bits/w':>8} {'bytes':>12}"]
        for name, p in sorted(self.palettized.items()):
            lines.append(f"{name:<40} {p.bits_per_weight:>8.2f} {p.nbytes:>12}")
        for name, nbytes in sorted(self.uncompressed.items()):
            lines.append(f"{name:<40} {'16.00':>8} {nbytes:>12}")
        lines.append(f"{'TOTAL':<40} {'':>8} {self.total_bytes:>12}")
        return "\n".join(lines)


class ModelCompressor:
    """Wraps a model's Linears with DKM clustering; finalizes to palettes.

    Embeddings are palettized post-training at ``embedding_bits`` (paper:
    "we also compressed the embedding layers with 8 bits"); norms and biases
    stay in 16-bit.
    """

    def __init__(
        self,
        dkm_config: DKMConfig,
        edkm_config: EDKMConfig | None = None,
        embedding_bits: int = 8,
        skip_names: tuple[str, ...] = (),
    ) -> None:
        self.dkm_config = dkm_config
        self.edkm_config = edkm_config or EDKMConfig(
            offload=False, marshal=False, uniquify=True, shard=False, group=None
        )
        self.embedding_bits = embedding_bits
        self.skip_names = skip_names
        self.wrapped: dict[str, ClusteredLinear] = {}

    def compress(self, model: Module) -> Module:
        """Replace every target Linear in ``model`` with a ClusteredLinear."""
        self._wrap_children(model, prefix="")
        if not self.wrapped:
            raise ValueError("no Linear layers found to compress")
        return model

    def _wrap_children(self, module: Module, prefix: str) -> None:
        for name, child in list(module._modules.items()):
            full_name = f"{prefix}{name}"
            if any(full_name.startswith(skip) for skip in self.skip_names):
                continue
            if isinstance(child, Linear):
                wrapper = ClusteredLinear(
                    child,
                    self.dkm_config,
                    uniquify_enabled=self.edkm_config.uniquify,
                )
                setattr(module, name, wrapper)
                self.wrapped[full_name] = wrapper
            else:
                self._wrap_children(child, prefix=f"{full_name}.")

    def fastpath_report(self) -> FastPathReport:
        """Aggregate per-layer step-cache hit/miss counters.

        Counters are copied at call time, so the report is a stable
        snapshot (deltas between two reports stay meaningful as training
        continues).
        """
        return FastPathReport(
            per_layer={
                name: wrapper.step_cache.stats.merge(FastPathStats())
                for name, wrapper in self.wrapped.items()
            }
        )

    def release_step_caches(self) -> None:
        """Drop every layer's cached decomposition (frees O(|W|) host bytes
        per layer; the next step simply re-uniquifies)."""
        for wrapper in self.wrapped.values():
            wrapper.step_cache.invalidate()

    def finalize(self, model: Module) -> CompressionReport:
        """Palettize all clustered layers and embeddings; report sizes."""
        report = CompressionReport()
        for name, wrapper in self.wrapped.items():
            report.palettized[name] = wrapper.palettize()
        for name, module in model.named_modules():
            if isinstance(module, Embedding):
                report.palettized[f"{name}.weight"] = kmeans_palettize(
                    module.weight._compute(), self.embedding_bits
                )
            elif hasattr(module, "weight") and not isinstance(
                module, (Linear, ClusteredLinear, Embedding)
            ):
                weight = getattr(module, "weight", None)
                if isinstance(weight, Tensor):
                    report.uncompressed[f"{name}.weight"] = 2 * weight.numel
        for name, wrapper in self.wrapped.items():
            if wrapper.inner.bias is not None:
                report.uncompressed[f"{name}.bias"] = 2 * wrapper.inner.bias.numel
        return report


def dequantized_state(report: CompressionReport) -> dict[str, np.ndarray]:
    """Materialize fp32 weights from a compression report (for evaluation)."""
    return {name: p.dequantize() for name, p in report.palettized.items()}
