"""Model-level train-time compression.

``ClusteredLinear`` wraps a Linear so that every forward re-clusters its
weight through DKM/eDKM -- the train-time weight clustering the paper
fine-tunes with.  ``ModelCompressor`` swaps the wrappers into a model,
coordinates the shared :class:`~repro.core.offload.SavedTensorPipeline`,
and finalizes the fine-tuned model into palettized artifacts.

Per-layer clustering is embarrassingly parallel -- each ``ClusteredLinear``
owns its weight storage, its :class:`~repro.core.dkm.DKMClusterer`, and its
:class:`~repro.core.fastpath.StepCache` -- so the compressor fans
``refine``/``hard_assign``/``palettize`` sweeps out over a thread pool
(:func:`parallel_layer_map`).  numpy releases the GIL inside the big
uniquify/gather/softmax kernels, which is where the per-layer time goes, so
the fan-out overlaps on multi-core hosts while staying bit-identical to the
serial sweep: each layer is handed to exactly one worker, and results are
collected in layer insertion order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

import numpy as np

from repro.core.config import CompressorConfig, DKMConfig, EDKMConfig
from repro.core.dkm import ClusterState, DKMClusterer
from repro.core.edkm import cluster
from repro.core.fastpath import FastPathReport, FastPathStats, StepCache
from repro.core.palettize import PalettizedTensor, kmeans_palettize
from repro.nn.linear import Embedding, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_layer_map(
    fn: Callable[[_T], _R],
    items: Iterable[tuple[str, _T]],
    num_workers: int,
) -> dict[str, _R]:
    """Apply ``fn`` to named, independent layer tasks; deterministic order.

    With ``num_workers <= 1`` (or a single task) this is a plain serial
    loop on the calling thread -- the reference behavior.  Otherwise tasks
    are submitted to a :class:`ThreadPoolExecutor` in input order and the
    results are *gathered* in input order, so the returned dict is
    identical to the serial sweep's no matter how the pool interleaves.
    Exceptions propagate from the first failing task in input order.

    Callers must hand each layer to exactly one task: the per-layer
    clusterer, step cache, and cluster state are only synchronized against
    concurrent use of *different* layers (see ``StepCache``'s lock notes).
    """
    pairs = list(items)
    if num_workers <= 1 or len(pairs) <= 1:
        return {name: fn(task) for name, task in pairs}
    with ThreadPoolExecutor(max_workers=num_workers) as pool:
        futures = [(name, pool.submit(fn, task)) for name, task in pairs]
        return {name: future.result() for name, future in futures}


class ClusteredLinear(Module):
    """A Linear whose weight passes through differentiable clustering.

    The underlying fp weight remains the trainable parameter; the matmul
    consumes its clustered reconstruction, so gradients shape both the
    weights and (through the soft assignment) the clustering.
    """

    def __init__(
        self,
        inner: Linear,
        dkm_config: DKMConfig,
        uniquify_enabled: bool = True,
        reconstruct_backward: bool = True,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.dkm_config = dkm_config
        self.uniquify_enabled = uniquify_enabled
        self.reconstruct_backward = reconstruct_backward
        self.clusterer = DKMClusterer(dkm_config)
        # Clustering keys on 16-bit patterns: keep the master weight in the
        # configured 16-bit training dtype (paper: bfloat16).
        if inner.weight.dtype is not dkm_config.weight_dtype:
            inner.weight.copy_(inner.weight.numpy())  # re-projects in place
            inner.weight.storage = _reproject_storage(
                inner.weight, dkm_config.weight_dtype
            )
            inner.weight.dtype = dkm_config.weight_dtype

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            clustered = cluster(
                self.inner.weight,
                self.clusterer,
                uniquify_enabled=self.uniquify_enabled,
                reconstruct_backward=self.reconstruct_backward,
            )
        else:
            # Eval mode: hard palettized weights (deployment behavior).
            clustered = self._hard_weight()
        out = x @ clustered.T
        if self.inner.bias is not None:
            out = out + self.inner.bias
        return out

    def train(self, mode: bool = True) -> "ClusteredLinear":
        # Weights only change while training; drop the eval cache on any
        # mode change so eval always sees the latest clustering.
        object.__setattr__(self, "_hard_cache", None)
        super().train(mode)
        return self

    def _hard_weight(self) -> Tensor:
        from repro.tensor.autograd import no_grad

        cached = getattr(self, "_hard_cache", None)
        if cached is not None:
            return cached
        with no_grad():
            state = self.clusterer.refine(self.inner.weight)
            assignments = self.clusterer.hard_assign(self.inner.weight)
            values = state.centroids[assignments].reshape(self.inner.weight.shape)
            hard = Tensor.from_numpy(
                values, dtype=self.inner.weight.dtype, device=self.inner.weight.device
            )
        object.__setattr__(self, "_hard_cache", hard)
        return hard

    @property
    def step_cache(self) -> StepCache:
        """This layer's fast-path memo (shared by refine/assign/palettize)."""
        return self.clusterer.fastpath

    def palettize(self) -> PalettizedTensor:
        """Freeze the clustering into a deployable LUT + indices artifact."""
        state = self.clusterer.refine(self.inner.weight)
        assignments = self.clusterer.hard_assign(self.inner.weight)
        return PalettizedTensor.from_assignments(
            state.centroids,
            assignments,
            self.dkm_config.bits,
            tuple(self.inner.weight.shape),
        )

    def __repr__(self) -> str:
        return (
            f"ClusteredLinear({self.inner!r}, bits={self.dkm_config.bits}, "
            f"uniquify={self.uniquify_enabled})"
        )


def _reproject_storage(param, dtype):
    from repro.tensor.storage import Storage

    return Storage.from_values(param._compute(), dtype, param.device)


@dataclass
class LayerClusterResult:
    """One layer's converged clustering, as returned by ``precluster``.

    ``centroids`` is a snapshot (copied out of the mutable
    :class:`~repro.core.dkm.ClusterState`), so results stay stable if
    training continues; ``assignments`` is the flat nearest-centroid index
    per weight position.
    """

    centroids: np.ndarray  # (k,) float32 snapshot
    temperature: float
    iterations_run: int
    assignments: np.ndarray  # (|W|,) int64
    reconstruction_error: float | None = None


@dataclass
class CompressionReport:
    """Sizes of the palettized model."""

    palettized: dict[str, PalettizedTensor] = field(default_factory=dict)
    uncompressed: dict[str, int] = field(default_factory=dict)  # name -> bytes kept

    @property
    def total_bytes(self) -> int:
        return sum(p.nbytes for p in self.palettized.values()) + sum(
            self.uncompressed.values()
        )

    def summary(self) -> str:
        lines = [f"{'tensor':<40} {'bits/w':>8} {'bytes':>12}"]
        for name, p in sorted(self.palettized.items()):
            lines.append(f"{name:<40} {p.bits_per_weight:>8.2f} {p.nbytes:>12}")
        for name, nbytes in sorted(self.uncompressed.items()):
            lines.append(f"{name:<40} {'16.00':>8} {nbytes:>12}")
        lines.append(f"{'TOTAL':<40} {'':>8} {self.total_bytes:>12}")
        return "\n".join(lines)


class ModelCompressor:
    """Wraps a model's Linears with DKM clustering; finalizes to palettes.

    Embeddings are palettized post-training at ``embedding_bits`` (paper:
    "we also compressed the embedding layers with 8 bits"); norms and biases
    stay in 16-bit.
    """

    def __init__(
        self,
        dkm_config: DKMConfig,
        edkm_config: EDKMConfig | None = None,
        embedding_bits: int | None = None,
        skip_names: tuple[str, ...] | None = None,
        config: CompressorConfig | None = None,
    ) -> None:
        self.dkm_config = dkm_config
        self.edkm_config = edkm_config or EDKMConfig(
            offload=False, marshal=False, uniquify=True, shard=False, group=None
        )
        # The loose keyword arguments are the long-standing shorthand for
        # the serial engine; a CompressorConfig carries the same fields, so
        # mixing the two would make one of them silently lose.
        if config is not None:
            if embedding_bits is not None or skip_names is not None:
                raise ValueError(
                    "pass embedding_bits/skip_names on the CompressorConfig "
                    "when a config object is given, not as keyword arguments"
                )
            self.config = config
        else:
            self.config = CompressorConfig(
                embedding_bits=8 if embedding_bits is None else embedding_bits,
                skip_names=() if skip_names is None else skip_names,
            )
        self.wrapped: dict[str, ClusteredLinear] = {}

    @property
    def embedding_bits(self) -> int:
        return self.config.embedding_bits

    @property
    def skip_names(self) -> tuple[str, ...]:
        return self.config.skip_names

    def compress(self, model: Module) -> Module:
        """Replace every target Linear in ``model`` with a ClusteredLinear."""
        self._wrap_children(model, prefix="")
        if not self.wrapped:
            raise ValueError("no Linear layers found to compress")
        return model

    def _wrap_children(self, module: Module, prefix: str) -> None:
        for name, child in list(module._modules.items()):
            full_name = f"{prefix}{name}"
            if any(full_name.startswith(skip) for skip in self.skip_names):
                continue
            if isinstance(child, Linear):
                wrapper = ClusteredLinear(
                    child,
                    self.dkm_config,
                    uniquify_enabled=self.edkm_config.uniquify,
                )
                setattr(module, name, wrapper)
                self.wrapped[full_name] = wrapper
            else:
                self._wrap_children(child, prefix=f"{full_name}.")

    # ------------------------------------------------------------------
    # Parallel per-layer engine
    # ------------------------------------------------------------------

    def _layer_map(self, fn: Callable[[ClusteredLinear], _R]) -> dict[str, _R]:
        """Fan ``fn`` out over all wrapped layers (see ``parallel_layer_map``)."""
        return parallel_layer_map(
            fn,
            self.wrapped.items(),
            self.config.resolve_workers(len(self.wrapped)),
        )

    def refine_all(self, cache_table: bool = False) -> dict[str, ClusterState]:
        """Converge every layer's centroids; one pool task per layer.

        Equivalent to calling ``wrapper.clusterer.refine`` on each wrapped
        layer in insertion order, and bit-identical to that serial sweep:
        layers share no clustering state, so the fan-out cannot reorder any
        floating-point reduction *within* a layer.
        """
        return self._layer_map(
            lambda wrapper: wrapper.clusterer.refine(
                wrapper.inner.weight, cache_table=cache_table
            )
        )

    def precluster(self, compute_error: bool = False) -> dict[str, LayerClusterResult]:
        """Refine + hard-assign every layer, in parallel, snapshotting results.

        This is the multi-layer compression sweep the paper runs once per
        checkpoint/deployment: converge centroids, then map each weight to
        its nearest centroid.  Returns per-layer
        :class:`LayerClusterResult` in layer insertion order.
        """

        def one(wrapper: ClusteredLinear) -> LayerClusterResult:
            state = wrapper.clusterer.refine(wrapper.inner.weight, cache_table=True)
            assignments = wrapper.clusterer.hard_assign(wrapper.inner.weight)
            error = (
                wrapper.clusterer.reconstruction_error(wrapper.inner.weight)
                if compute_error
                else None
            )
            return LayerClusterResult(
                centroids=state.centroids.copy(),
                temperature=state.temperature,
                iterations_run=state.iterations_run,
                assignments=np.asarray(assignments, dtype=np.int64),
                reconstruction_error=error,
            )

        return self._layer_map(one)

    def fastpath_report(self) -> FastPathReport:
        """Aggregate per-layer step-cache hit/miss counters.

        Counters are copied at call time, so the report is a stable
        snapshot (deltas between two reports stay meaningful as training
        continues).
        """
        return FastPathReport(
            per_layer={
                name: wrapper.step_cache.stats.merge(FastPathStats())
                for name, wrapper in self.wrapped.items()
            }
        )

    def release_step_caches(self) -> None:
        """Drop every layer's cached decomposition (frees O(|W|) host bytes
        per layer; the next step simply re-uniquifies)."""
        for wrapper in self.wrapped.values():
            wrapper.step_cache.invalidate()

    def finalize(self, model: Module) -> CompressionReport:
        """Palettize all clustered layers and embeddings; report sizes.

        The per-layer palettization (refine + hard assign + pack) fans out
        over the engine's worker pool; embeddings and the byte accounting
        stay on the calling thread.
        """
        report = CompressionReport()
        report.palettized.update(
            self._layer_map(lambda wrapper: wrapper.palettize())
        )
        for name, module in model.named_modules():
            if isinstance(module, Embedding):
                report.palettized[f"{name}.weight"] = kmeans_palettize(
                    module.weight._compute(), self.embedding_bits
                )
            elif hasattr(module, "weight") and not isinstance(
                module, (Linear, ClusteredLinear, Embedding)
            ):
                weight = getattr(module, "weight", None)
                if isinstance(weight, Tensor):
                    report.uncompressed[f"{name}.weight"] = 2 * weight.numel
        for name, wrapper in self.wrapped.items():
            if wrapper.inner.bias is not None:
                report.uncompressed[f"{name}.bias"] = 2 * wrapper.inner.bias.numel
        return report


def dequantized_state(report: CompressionReport) -> dict[str, np.ndarray]:
    """Materialize fp32 weights from a compression report (for evaluation)."""
    return {name: p.dequantize() for name, p in report.palettized.items()}
