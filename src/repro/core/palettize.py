"""Palettization: the deployable artifact of weight clustering.

After DKM fine-tuning converges, each weight tensor is hard-assigned to its
nearest centroid and stored as a lookup table (LUT) of ``2**bits`` 16-bit
values plus bit-packed low-precision indices -- the format "supported by
modern smartphones" that the paper targets (CoreML training-time
palettization).  Model-size numbers in Table 3 are sizes of this artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def pack_indices(indices: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-wide integers into a uint8 byte stream (LSB-first)."""
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    indices = np.asarray(indices, dtype=np.uint8).reshape(-1)
    if indices.size and int(indices.max()) >= (1 << bits):
        raise ValueError(f"index {int(indices.max())} does not fit in {bits} bits")
    as_bits = np.unpackbits(indices.reshape(-1, 1), axis=1, bitorder="little")
    payload = as_bits[:, :bits].reshape(-1)
    return np.packbits(payload, bitorder="little")


def unpack_indices(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_indices` for ``count`` values."""
    as_bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), bitorder="little")
    usable = as_bits[: count * bits].reshape(count, bits)
    padded = np.zeros((count, 8), dtype=np.uint8)
    padded[:, :bits] = usable
    return np.packbits(padded, axis=1, bitorder="little").reshape(-1)


@dataclass
class PalettizedTensor:
    """A weight tensor stored as LUT + packed indices."""

    lut: np.ndarray  # (2**bits,) float32 values (stored at 16-bit width)
    packed: np.ndarray  # uint8 byte stream of bit-packed indices
    bits: int
    shape: tuple[int, ...]

    @classmethod
    def from_assignments(
        cls,
        lut: np.ndarray,
        assignments: np.ndarray,
        bits: int,
        shape: tuple[int, ...],
    ) -> "PalettizedTensor":
        """Pack precomputed nearest-centroid ``assignments`` against ``lut``."""
        return cls(
            lut=np.asarray(lut, dtype=np.float32),
            packed=pack_indices(assignments, bits),
            bits=bits,
            shape=tuple(shape),
        )

    @classmethod
    def from_weights(
        cls, weights: np.ndarray, lut: np.ndarray, bits: int
    ) -> "PalettizedTensor":
        """Nearest-centroid hard assignment of ``weights`` onto ``lut``.

        Chunked through :func:`repro.core.dkm.nearest_centroid`, so the
        distance matrix never exceeds a block x ``2**bits`` slab.
        """
        from repro.core.dkm import nearest_centroid

        flat = np.asarray(weights, dtype=np.float32).reshape(-1)
        lut = np.asarray(lut, dtype=np.float32)
        if lut.size > (1 << bits):
            raise ValueError(f"LUT of {lut.size} entries exceeds 2^{bits}")
        assignments = nearest_centroid(flat, lut)
        return cls.from_assignments(lut, assignments, bits, np.asarray(weights).shape)

    @property
    def numel(self) -> int:
        """Number of weight positions the packed indices decode to."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        """Serialized size: packed indices + 16-bit LUT entries."""
        return int(self.packed.size) + 2 * int(self.lut.size)

    @property
    def bits_per_weight(self) -> float:
        """Effective storage cost per weight, LUT amortization included."""
        return 8.0 * self.nbytes / max(self.numel, 1)

    def dequantize(self) -> np.ndarray:
        """Materialize the float32 weight tensor (LUT gather + reshape)."""
        indices = unpack_indices(self.packed, self.bits, self.numel)
        return self.lut[indices].reshape(self.shape).astype(np.float32)

    def __repr__(self) -> str:
        return (
            f"PalettizedTensor(shape={self.shape}, bits={self.bits}, "
            f"nbytes={self.nbytes})"
        )


def kmeans_palettize(
    weights: np.ndarray, bits: int, iters: int = 25, seed: int = 0
) -> PalettizedTensor:
    """Post-training k-means palettization (used for embedding tables).

    Runs plain Lloyd iterations in unique-value space -- the same
    uniquification trick as eDKM, applied to inference-time compression.
    """
    from repro.core.dkm import nearest_centroid
    from repro.core.uniquify import attention_table  # noqa: F401 (doc cross-ref)
    from repro.tensor.ops.segment import segment_sum

    flat = np.asarray(weights, dtype=np.float32).reshape(-1)
    values, counts = np.unique(flat, return_counts=True)
    k = 1 << bits
    quantiles = (np.arange(k) + 0.5) / k
    lut = np.quantile(flat, quantiles).astype(np.float32)
    for _ in range(iters):
        assign = nearest_centroid(values, lut)
        sums = segment_sum(values * counts, assign, k)
        weights_per = segment_sum(counts, assign, k)
        new_lut = np.where(weights_per > 0, sums / np.maximum(weights_per, 1), lut)
        if np.allclose(new_lut, lut, atol=1e-10):
            lut = new_lut.astype(np.float32)
            break
        lut = new_lut.astype(np.float32)
    return PalettizedTensor.from_weights(weights, lut, bits)
