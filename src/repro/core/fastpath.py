"""Per-layer step caching for the eDKM hot loop.

A training forward through a clustered layer used to uniquify the same
weight tensor twice -- once in :meth:`DKMClusterer.refine` and once in
:class:`~repro.core.edkm.EDKMClusterAssign` -- and to recompute the
attention table the final refine iteration had just produced.  Both
recomputations are pure functions of the weight bytes, so one small memo
keyed on the weight's storage version removes them:

- :meth:`StepCache.uniquify` returns the cached
  :class:`~repro.core.uniquify.UniquifiedWeights` while the weight storage
  has not been written (the version counter is bumped by every in-place
  mutation, i.e. by optimizer steps), and recomputes exactly once per
  layer per training step otherwise.
- :meth:`StepCache.store_table` / :meth:`StepCache.lookup_table` carry the
  final refine-iteration attention table over to the forward assignment,
  which would otherwise rebuild the identical ``(u, k)`` softmax.

Each :class:`~repro.core.dkm.DKMClusterer` owns one cache, so multi-layer
models amortize per layer independently; :class:`repro.core.compressor.
ModelCompressor` aggregates the per-layer hit counters for reporting.

**Process-pool semantics.**  When the compression engine fans a sweep out
over *processes*, a worker computes the decomposition in its own address
space and only small results plus :class:`FastPathStats` deltas are
pickled back (shipping the ``O(|W|)`` index list home would cost more
than it saves).  The parent cache then holds a *phantom* entry
(:meth:`StepCache.mark_computed`): the (storage, version, view) key is
known-computed, but the products are not resident.  Counters track
*logical* cache validity -- a ``uniquify`` call against a matching
phantom key records a **hit** (the decomposition for those exact bytes
was already computed somewhere this step) while transparently recomputing
and re-residenting the products locally.  This keeps the per-layer
hit/miss counters bit-identical across ``serial``/``thread``/``process``
backends for any sequence of sweeps; the physical recompute count is
still observable via :func:`repro.core.uniquify.uniquify_call_count`,
which only ever counts computations in the calling process.

Footprint: between steps the cache retains the layer's
:class:`~repro.core.uniquify.UniquifiedWeights` -- dominated by the
``O(|W|)`` uint16 index list, i.e. roughly the byte size of the bf16
weight itself per layer, on the host and outside the device trackers.
During training this entry is consumed twice per step (refine + forward)
and goes stale at the next optimizer write; call
:meth:`StepCache.invalidate` (or
``ModelCompressor.release_step_caches``) to reclaim the memory when a
model sits idle between phases.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.uniquify import UniquifiedWeights, uniquify
from repro.tensor.dtype import DType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tensor.tensor import Tensor


@dataclass
class FastPathStats:
    """Hit/miss counters for one layer's :class:`StepCache`."""

    uniquify_hits: int = 0
    uniquify_misses: int = 0
    table_hits: int = 0
    table_misses: int = 0

    def merge(self, other: "FastPathStats") -> "FastPathStats":
        """A new counter object holding the element-wise sum."""
        return FastPathStats(
            uniquify_hits=self.uniquify_hits + other.uniquify_hits,
            uniquify_misses=self.uniquify_misses + other.uniquify_misses,
            table_hits=self.table_hits + other.table_hits,
            table_misses=self.table_misses + other.table_misses,
        )

    def diff(self, baseline: "FastPathStats") -> "FastPathStats":
        """The element-wise delta of this snapshot over ``baseline``.

        The sticky process backend's counter transport: a worker snapshots
        its resident cache's counters before running a task and ships
        ``after.diff(before)`` home, so the parent's :meth:`StepCache.
        absorb` folds in exactly the increments this task caused --
        cumulative worker-local counters never double-count, and the
        merged totals reconcile bit-identical with the serial sweep.
        """
        return FastPathStats(
            uniquify_hits=self.uniquify_hits - baseline.uniquify_hits,
            uniquify_misses=self.uniquify_misses - baseline.uniquify_misses,
            table_hits=self.table_hits - baseline.table_hits,
            table_misses=self.table_misses - baseline.table_misses,
        )

    def __repr__(self) -> str:
        return (
            f"FastPathStats(uniquify {self.uniquify_hits}h/"
            f"{self.uniquify_misses}m, table {self.table_hits}h/"
            f"{self.table_misses}m)"
        )


class StepCache:
    """Single-entry memo of one weight tensor's per-step derived products.

    The cache holds the decomposition of exactly one (storage, version,
    view) key -- a layer's weight only has one live version at a time, so
    anything deeper would never be hit.  Storage identity is validated
    through a weak reference (ids can be recycled after garbage
    collection, exactly the hazard ``MarshalRegistry`` guards against).

    Thread safety: the parallel compression engine hands each layer (and
    therefore each cache) to exactly one pool worker per sweep, but the
    memo, the derived table, and the hit/miss counters are nevertheless
    guarded by a per-cache reentrant lock so concurrent calls against one
    cache stay consistent (an interleaved miss can at worst recompute, it
    can never corrupt the memo or lose counter increments).  Distinct
    layers own distinct caches and never contend.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._storage_ref: weakref.ReferenceType | None = None
        self._key: tuple | None = None
        self._unique: UniquifiedWeights | None = None
        self._table: np.ndarray | None = None
        self._table_centroids: np.ndarray | None = None
        self._table_temperature: float | None = None
        self.stats = FastPathStats()

    # ------------------------------------------------------------------
    # Uniquification memo
    # ------------------------------------------------------------------

    def _weight_key(self, weights: "Tensor", dtype: DType) -> tuple:
        return (
            weights.storage.version,
            dtype.name,
            weights.shape,
            weights.strides,
            weights.offset,
        )

    def _key_matches(self, weights: "Tensor", dtype: DType) -> bool:
        """Whether the live entry (resident *or* phantom) covers ``weights``."""
        return (
            self._key == self._weight_key(weights, dtype)
            and self._storage_ref is not None
            and self._storage_ref() is weights.storage
        )

    def uniquify(self, weights: "Tensor", dtype: DType) -> UniquifiedWeights:
        """The decomposition of ``weights``, computed at most once per version.

        Against a matching *phantom* entry (see :meth:`mark_computed`) this
        records a hit -- the decomposition of these exact bytes was already
        computed, just not in this process -- and recomputes the products
        locally, promoting the entry to resident so subsequent calls are
        ordinary hits.
        """
        with self._lock:
            matches = self._key_matches(weights, dtype)
            if matches and self._unique is not None:
                self.stats.uniquify_hits += 1
                return self._unique
            if matches:
                # Phantom hit: logically warm, physically absent.
                self.stats.uniquify_hits += 1
                self._unique = uniquify(weights._np(), dtype)
                return self._unique
            self.stats.uniquify_misses += 1
            unique = uniquify(weights._np(), dtype)
            # Drop everything derived from the previous decomposition (the
            # cached table is stale), then repopulate.
            self.invalidate()
            self._storage_ref = weakref.ref(weights.storage)
            self._key = self._weight_key(weights, dtype)
            self._unique = unique
            return unique

    def is_warm(self, weights: "Tensor", dtype: DType) -> bool:
        """Whether a ``uniquify`` for ``weights`` would be a (possibly
        phantom) hit -- the token the process backend ships to workers so
        their fresh caches count the sweep exactly as the serial engine
        would."""
        with self._lock:
            return self._key_matches(weights, dtype)

    def mark_computed(self, weights: "Tensor", dtype: DType) -> None:
        """Install a phantom entry: key known-computed, products elsewhere.

        Called by the process backend after a worker confirmed computing
        the decomposition for exactly these weight bytes.  A resident
        entry for the same key is left untouched (it is strictly better);
        any entry for a different key is dropped first.
        """
        with self._lock:
            if self._key_matches(weights, dtype):
                return
            self.invalidate()
            self._storage_ref = weakref.ref(weights.storage)
            self._key = self._weight_key(weights, dtype)

    def absorb(self, delta: FastPathStats) -> None:
        """Fold a worker's counter deltas into this cache's counters."""
        with self._lock:
            self.stats = self.stats.merge(delta)

    def restore_counters(self, stats: FastPathStats) -> None:
        """Overwrite the hit/miss counters with a checkpointed snapshot.

        Used by checkpoint resume (:mod:`repro.core.checkpoint`): a
        resumed run must continue the counter sequence exactly where the
        interrupted run left it, so subsequent sweeps stay bit-identical
        -- counters included -- to a run that was never interrupted.
        """
        with self._lock:
            self.stats = stats.merge(FastPathStats())

    # ------------------------------------------------------------------
    # Attention-table carry-over (refine -> forward assignment)
    # ------------------------------------------------------------------

    def store_table(
        self, centroids: np.ndarray, temperature: float, table: np.ndarray
    ) -> None:
        """Remember the table for the *current* decomposition and centroids.

        Accepted against a resident entry whose row count matches, or
        against a *phantom* entry (key known-computed, products
        non-resident): the only phantom writer is the process backend's
        merge step, which hands over a table the worker computed from the
        exact bytes the phantom key covers, so the row count is consistent
        by construction.  With no live entry at all the call is ignored.
        """
        with self._lock:
            if self._key is None:
                return
            if self._unique is not None and table.shape[0] != self._unique.n_unique:
                return
            self._table = table
            # Flatten at store time: lookup compares against a flattened
            # key, so a column-vector ``(k, 1)`` centroid array stored
            # as-is would never hit and the refine->forward carry-over
            # would be silently dead.
            self._table_centroids = np.array(centroids, dtype=np.float32).reshape(-1)
            self._table_temperature = float(temperature)

    def lookup_table(
        self, centroids: np.ndarray, temperature: float
    ) -> np.ndarray | None:
        """The stored table, iff centroids and temperature match exactly."""
        with self._lock:
            if (
                self._table is not None
                and self._table_temperature == float(temperature)
                and self._table_centroids is not None
                and np.array_equal(
                    self._table_centroids,
                    np.asarray(centroids, dtype=np.float32).reshape(-1),
                )
            ):
                self.stats.table_hits += 1
                return self._table
            self.stats.table_misses += 1
            return None

    def peek_table(self) -> tuple[np.ndarray, float, np.ndarray] | None:
        """The carried ``(centroids, temperature, table)`` without counting.

        Used by process-pool workers to extract the table their refine
        parked, so the parent can re-park it (counter-free on both ends --
        the transfer is transport, not a cache probe).
        """
        with self._lock:
            if self._table is None or self._table_centroids is None:
                return None
            assert self._table_temperature is not None
            return (self._table_centroids, self._table_temperature, self._table)

    def resident_bytes(self) -> int:
        """Host bytes held by the *resident* products of the live entry.

        Counts the uniquify decomposition (dominated by the ``O(|W|)``
        index list) and the carried attention table; a phantom entry (key
        without products) reports zero.  This is the quantity the sticky
        process backend's ``worker_cache_bytes_limit`` bounds.
        """
        with self._lock:
            total = 0
            if self._unique is not None:
                total += (
                    self._unique.patterns.nbytes
                    + self._unique.index_list.nbytes
                    + self._unique.values.nbytes
                    + self._unique.counts.nbytes
                )
            if self._table is not None:
                total += self._table.nbytes
            if self._table_centroids is not None:
                total += self._table_centroids.nbytes
            return total

    def evict_products(self) -> int:
        """Release the resident products but keep the entry *phantom*.

        The (storage, version, view) key and its weak storage reference
        survive, so a later ``uniquify`` against the same weight version
        still counts a hit (the decomposition was computed this step, it
        just is not resident any more) and transparently recomputes --
        exactly the phantom semantics :meth:`mark_computed` installs.
        Used by the sticky process backend to bound worker memory without
        perturbing the cross-backend counter reconciliation.  Returns the
        number of bytes released.
        """
        with self._lock:
            released = self.resident_bytes()
            self._unique = None
            self._table = None
            self._table_centroids = None
            self._table_temperature = None
            return released

    def invalidate(self) -> None:
        """Drop all cached products (weights changed out from under us)."""
        with self._lock:
            self._storage_ref = None
            self._key = None
            self._unique = None
            self._table = None
            self._table_centroids = None
            self._table_temperature = None


@dataclass
class FastPathReport:
    """Aggregated per-layer cache statistics (see ``ModelCompressor``)."""

    per_layer: dict[str, FastPathStats] = field(default_factory=dict)

    @property
    def total(self) -> FastPathStats:
        """All layers' counters merged into one."""
        merged = FastPathStats()
        for stats in self.per_layer.values():
            merged = merged.merge(stats)
        return merged

    def summary(self) -> str:
        """A per-layer hit/miss table, TOTAL last."""
        lines = [f"{'layer':<40} {'uniq h/m':>12} {'table h/m':>12}"]
        for name, s in sorted(self.per_layer.items()):
            lines.append(
                f"{name:<40} {f'{s.uniquify_hits}/{s.uniquify_misses}':>12} "
                f"{f'{s.table_hits}/{s.table_misses}':>12}"
            )
        t = self.total
        lines.append(
            f"{'TOTAL':<40} {f'{t.uniquify_hits}/{t.uniquify_misses}':>12} "
            f"{f'{t.table_hits}/{t.table_misses}':>12}"
        )
        return "\n".join(lines)
