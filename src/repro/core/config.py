"""Configuration objects for DKM and the eDKM memory pipeline."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.distributed.learner import LearnerGroup
from repro.tensor.device import CPU, GPU, Device
from repro.tensor.dtype import DType, bfloat16, get_dtype

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.faults import FaultPlan


@dataclass
class DKMConfig:
    """Differentiable k-means clustering hyper-parameters.

    Attributes:
        bits: codebook size is ``2**bits`` centroids (paper: 3- and 4-bit).
        temperature: softmax temperature for the weight-centroid attention;
            smaller is harder assignment.  ``None`` (default) picks an
            adaptive per-tensor temperature from the weight spread.
        iters: maximum k-means refinement iterations per forward.
        tol: early-stop threshold on centroid movement.
        weight_dtype: 16-bit dtype weights are clustered in (uniquification
            keys on its bit patterns; paper fine-tunes in bfloat16).
        dense_row_chunk: when set, :meth:`DKMClusterer.cluster_dense` runs
            the dense DKM ablation in row blocks of this many weights, so
            its materialized/saved buffers are bounded at ``chunk x k``
            instead of ``|W| x k``.  ``None`` keeps the original monolithic
            composition (subject to ``dense_saved_bytes_limit``).
        dense_saved_bytes_limit: refuse the monolithic dense composition
            when one of its ``O(|W|·|C|)`` float32 buffers would exceed this
            many bytes, instead of letting the host OOM; the error message
            points at ``dense_row_chunk``.
    """

    bits: int = 3
    temperature: float | None = None
    iters: int = 5
    tol: float = 1e-8
    weight_dtype: DType = bfloat16
    dense_row_chunk: int | None = None
    dense_saved_bytes_limit: int = 256 << 20

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {self.bits}")
        if self.temperature is not None and self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.iters < 1:
            raise ValueError("need at least one k-means iteration")
        if self.dense_row_chunk is not None and self.dense_row_chunk < 1:
            raise ValueError("dense_row_chunk must be positive when set")
        if self.dense_saved_bytes_limit < 1:
            raise ValueError("dense_saved_bytes_limit must be positive")

    @property
    def n_clusters(self) -> int:
        """Codebook size ``k = 2**bits``."""
        return 2**self.bits

    def to_dict(self) -> dict:
        """A plain-primitive dict that :meth:`from_dict` rebuilds exactly.

        ``weight_dtype`` serializes by name so the payload is JSON-safe
        (the form checkpoint manifests and benchmark artifacts embed).
        """
        return {
            "bits": self.bits,
            "temperature": self.temperature,
            "iters": self.iters,
            "tol": self.tol,
            "weight_dtype": self.weight_dtype.name,
            "dense_row_chunk": self.dense_row_chunk,
            "dense_saved_bytes_limit": self.dense_saved_bytes_limit,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DKMConfig":
        """Reconstruct a validated config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` -- a misspelled knob in a
        persisted artifact must fail loudly, not silently default.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown DKMConfig keys: {unknown}")
        payload = dict(payload)
        if "weight_dtype" in payload:
            payload["weight_dtype"] = get_dtype(payload["weight_dtype"])
        return cls(**payload)


def get_default_dkm_config(**overrides) -> "DKMConfig":
    """A fresh :class:`DKMConfig` with any field overridden by keyword.

    The neural-compressor constructor idiom (``get_default_rtn_config``
    and friends): one-knob callers still get full combination validation.
    """
    return DKMConfig(**overrides)


BACKENDS = ("serial", "thread", "process", "sharded")
"""Execution backends for the per-layer compression engine: a plain loop
on the calling thread, a GIL-sharing ``ThreadPoolExecutor``, a
``ProcessPoolExecutor`` fed zero-copy shared-memory weight views, or the
multi-node cluster scheduler (``repro.distributed.scheduler``) that
shards layers across spawned node executors by weight bytes."""

MP_CONTEXTS = ("spawn", "fork", "forkserver")
"""Accepted ``multiprocessing`` start methods for the process backend."""

AFFINITY_MODES = ("sticky", "chunked")
"""Process-backend scheduling modes: ``"sticky"`` pins each layer to one
worker (stable hash over layer insertion order, rebalanced only on pool
resize) so worker-resident step caches survive across sweeps and warm
sweeps ship only small deltas; ``"chunked"`` is the stateless task pool
that re-ships full per-layer tasks in round-robin batches every sweep."""


@dataclass
class CompressorConfig:
    """Model-level compression engine knobs (see ``ModelCompressor``).

    Attributes:
        backend: how the per-layer ``refine``/``hard_assign``/``palettize``
            sweeps execute.  ``"serial"`` loops on the calling thread
            (ignoring ``num_workers``); ``"thread"`` (default) fans layers
            out over a ``ThreadPoolExecutor`` -- numpy releases the GIL
            inside the big kernels, so this overlaps kernel time but not
            Python-side op dispatch; ``"process"`` fans out over a
            ``ProcessPoolExecutor`` whose workers rebuild each layer's
            weight as a zero-copy ``multiprocessing.shared_memory`` view,
            overlapping dispatch as well; ``"sharded"`` fans out over
            ``num_nodes`` spawned node executors with byte-balanced layer
            placement (see ``docs/sharding.md``).  All are bit-identical:
            per-layer clustering shares no state, every layer runs in
            exactly one worker, and results (centroids, assignments,
            step-cache counters, carried attention tables) merge back in
            layer insertion order.
        num_workers: pool width for the thread/process backends.  ``1``
            (default) degenerates the thread backend to the serial loop;
            ``0`` means "one worker per visible CPU".
        mp_context: ``multiprocessing`` start method for the process
            backend.  ``"spawn"`` (default) is safe regardless of what
            threads the parent holds -- workers import the codebase fresh
            and receive only picklable task specs; ``"fork"`` starts
            faster on POSIX but inherits arbitrary parent state.
        affinity: process-backend scheduling mode.  ``"sticky"``
            (default) pins each layer to one worker through a stable hash
            over layer insertion order (see
            :class:`~repro.core.procpool.AffinityMap`), so each worker
            keeps its pinned layers' uniquify products, attention tables,
            and shared-memory attachments resident across sweeps and the
            parent ships only per-sweep *deltas* (storage version,
            cluster state, config epoch) once a layer is synced.
            ``"chunked"`` keeps the stateless round-robin task pool that
            re-ships full tasks every sweep.  Both modes are bit-identical
            to serial; sticky ships strictly fewer pickled bytes per
            layer on warm sweeps and skips worker-side recomputation.
            Ignored by the serial/thread backends.
        worker_cache_bytes_limit: soft cap on the *resident* bytes each
            sticky worker may hold across its pinned layers' step caches
            (uniquify products + carried attention tables).  When
            exceeded, least-recently-used layers' products are evicted
            down to phantom entries -- counters stay bit-identical to
            serial, the products are simply recomputed on next use.  ``0``
            (default) means unlimited.
        task_chunk: layers per pickled task batch for the process
            backend's ``"chunked"`` affinity mode.  Batching amortizes
            per-task pickle + IPC overhead; ``0`` (default) auto-sizes to
            ``ceil(n_layers / workers)`` -- one batch per worker, the
            minimum dispatch cost for uniform layers.  Set small (e.g.
            ``1``) when layer sizes are skewed and load balancing matters
            more than dispatch overhead.  Sticky mode ignores it (one
            batch per pinned worker by construction).
        embedding_bits: post-training palettization width for embeddings
            (paper: "we also compressed the embedding layers with 8 bits").
        skip_names: module-path prefixes exempted from wrapping.
        task_timeout_s: watchdog deadline per shipped process-backend
            task.  A slot batch of ``n`` tasks gets ``n * task_timeout_s``
            seconds before the parent declares the worker hung, hard-kills
            it, respawns the slot, and re-ships the batch full.  ``None``
            (default) disables the watchdog -- a hung worker then blocks
            the sweep forever, exactly the pre-watchdog behavior.
        max_task_retries: re-submission budget per slot batch per sweep.
            Recoverable failures (crash, hang, stale cache, corrupt
            payload, lost shm block, transient worker error) re-ship the
            batch full up to this many times; exhausting the budget falls
            back to in-parent serial execution for the batch (see
            ``max_layer_retries``) instead of failing the sweep.
        retry_backoff_s: base sleep before re-submitting after a
            *transient* worker failure; doubles per retry (exponential
            backoff).  Crash/hang retries do not sleep -- the respawn
            itself is the delay.
        max_layer_retries: per-layer failure budget across the run.  A
            layer whose batches exhaust their retries this many times is
            *quarantined*: permanently executed in-parent (bit-identical
            by construction) and never shipped again, so one poison layer
            cannot re-fail every sweep.
        max_pool_respawns: worker-respawn budget for the engine's
            lifetime.  Exceeding it raises
            :class:`~repro.core.faults.PoolExhausted` instead of
            respawning again, which the compressor (with ``degrade=True``)
            answers by demoting the backend down the ladder
            process -> thread -> serial.
        degrade: whether ``ModelCompressor`` demotes the backend and
            re-runs the sweep when a backend fails irrecoverably, instead
            of propagating the error.  Demotion emits a
            :class:`~repro.core.faults.RobustnessWarning` and is recorded
            on ``ModelCompressor.degradations``; the re-run is safe
            because a failed sweep merges nothing into parent state.
        fault_plan: a :class:`~repro.core.faults.FaultPlan` arming the
            engine's deterministic fault injector (chaos testing).
            ``None`` (default) injects nothing.
        num_nodes: node count for the ``"sharded"`` backend -- each node
            is a spawned single-worker process group standing in for one
            host, owning one learner memory domain.  Layers are placed
            across nodes by weight *bytes* (see
            :class:`~repro.distributed.scheduler.NodePlacement`); other
            backends ignore it.
        node_memory_budget: per-node byte budget for sharded placement.
            ``0`` (default) means unlimited; a positive budget makes
            placement raise
            :class:`~repro.distributed.scheduler.PlacementError` when a
            single layer exceeds it or greedy packing cannot fit the
            model, instead of silently overcommitting a node.
        steal_max_layers: work-stealing bound for the sharded backend --
            how many of each node's *trailing* pinned layers may be held
            back per sweep and re-routed to whichever node drains its
            queue first.  Stolen layers run as transient full tasks on
            the thief; pinning never changes, so placement stability and
            bit-identity are preserved.  ``0`` (default) disables
            stealing (purely static placement).
    """

    backend: str = "thread"
    num_workers: int = 1
    mp_context: str = "spawn"
    affinity: str = "sticky"
    worker_cache_bytes_limit: int = 0
    task_chunk: int = 0
    embedding_bits: int = 8
    skip_names: tuple[str, ...] = ()
    task_timeout_s: float | None = None
    max_task_retries: int = 2
    retry_backoff_s: float = 0.05
    max_layer_retries: int = 3
    max_pool_respawns: int = 8
    degrade: bool = True
    fault_plan: "FaultPlan | None" = None
    num_nodes: int = 2
    node_memory_budget: int = 0
    steal_max_layers: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.mp_context not in MP_CONTEXTS:
            raise ValueError(
                f"unknown mp_context {self.mp_context!r}; "
                f"expected one of {MP_CONTEXTS}"
            )
        if self.affinity not in AFFINITY_MODES:
            raise ValueError(
                f"unknown affinity {self.affinity!r}; "
                f"expected one of {AFFINITY_MODES}"
            )
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if self.worker_cache_bytes_limit < 0:
            raise ValueError(
                "worker_cache_bytes_limit must be >= 0 (0 = unlimited), "
                f"got {self.worker_cache_bytes_limit}"
            )
        if self.task_chunk < 0:
            raise ValueError(f"task_chunk must be >= 0, got {self.task_chunk}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be positive or None, got {self.task_timeout_s}"
            )
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.max_layer_retries < 1:
            raise ValueError(
                f"max_layer_retries must be >= 1, got {self.max_layer_retries}"
            )
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.node_memory_budget < 0:
            raise ValueError(
                "node_memory_budget must be >= 0 (0 = unlimited), "
                f"got {self.node_memory_budget}"
            )
        if self.steal_max_layers < 0:
            raise ValueError(
                f"steal_max_layers must be >= 0, got {self.steal_max_layers}"
            )

    def resolve_workers(self, n_tasks: int) -> int:
        """Effective pool width for ``n_tasks`` independent layers."""
        if self.backend == "serial":
            return 1
        workers = self.num_workers if self.num_workers > 0 else (os.cpu_count() or 1)
        return max(1, min(workers, n_tasks))

    def resolve_nodes(self, n_layers: int) -> int:
        """Effective node count for ``n_layers`` sharded layers.

        Capped at the layer count -- an empty node would hold no pinned
        layers and only add spawn cost -- but never below one.
        """
        return max(1, min(self.num_nodes, n_layers))

    def resolve_task_chunk(self, n_tasks: int) -> int:
        """Layers per process-backend batch (``task_chunk`` or auto)."""
        if self.task_chunk > 0:
            return self.task_chunk
        workers = self.resolve_workers(n_tasks)
        return max(1, -(-n_tasks // max(workers, 1)))

    def to_dict(self) -> dict:
        """A plain-primitive dict that :meth:`from_dict` rebuilds exactly.

        ``skip_names`` serializes as a list (JSON has no tuples).  A
        config with an armed ``fault_plan`` refuses to serialize: fault
        plans are in-memory chaos-test instruments, not deployment state,
        and silently dropping one would make a persisted artifact claim a
        cleaner run than actually happened.
        """
        if self.fault_plan is not None:
            raise ValueError(
                "CompressorConfig with an armed fault_plan cannot be "
                "serialized; disarm it first"
            )
        return {
            "backend": self.backend,
            "num_workers": self.num_workers,
            "mp_context": self.mp_context,
            "affinity": self.affinity,
            "worker_cache_bytes_limit": self.worker_cache_bytes_limit,
            "task_chunk": self.task_chunk,
            "embedding_bits": self.embedding_bits,
            "skip_names": list(self.skip_names),
            "task_timeout_s": self.task_timeout_s,
            "max_task_retries": self.max_task_retries,
            "retry_backoff_s": self.retry_backoff_s,
            "max_layer_retries": self.max_layer_retries,
            "max_pool_respawns": self.max_pool_respawns,
            "degrade": self.degrade,
            "num_nodes": self.num_nodes,
            "node_memory_budget": self.node_memory_budget,
            "steal_max_layers": self.steal_max_layers,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompressorConfig":
        """Reconstruct a validated config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` (fail loudly on misspelled
        knobs); ``skip_names`` round-trips list -> tuple.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown CompressorConfig keys: {unknown}")
        payload = dict(payload)
        if "skip_names" in payload:
            payload["skip_names"] = tuple(payload["skip_names"])
        return cls(**payload)


def get_default_compressor_config(**overrides) -> "CompressorConfig":
    """A fresh :class:`CompressorConfig` with any field overridden by keyword.

    The neural-compressor constructor idiom: callers that only touch one
    knob write ``get_default_compressor_config(backend="process")`` and
    still get full validation of the combination.
    """
    return CompressorConfig(**overrides)


SEARCH_STRATEGIES = ("graph", "storage-id", "fingerprint")
"""Marshal lookup strategies: the paper's hop-limited forward-graph walk,
the storage-identity oracle, and the sampled-stride content fingerprint."""

DEFAULT_FINGERPRINT_MAX_SAMPLES = 64
"""Cap on 64-byte blocks a fingerprint samples; the single source of truth
for both ``EDKMConfig.fingerprint_max_samples`` and the bare
``MarshalRegistry``/``fingerprint_storage`` defaults."""


@dataclass
class EDKMConfig:
    """The eDKM memory pipeline: which of M / U / S are enabled.

    Mirrors the toggles of the paper's Table 2 ablation:

    - ``offload``: overflow saved tensors from GPU to CPU at all (the
      baseline the paper starts from; disabling it keeps everything on GPU).
    - ``marshal`` (M): cross-device tensor marshaling -- dedup offloaded
      storages via a hop-limited walk of the forward graph.
    - ``uniquify`` (U): compute the attention *table* over unique 16-bit
      weight values plus an index list, instead of the dense attention map.
    - ``shard`` (S): partition large offloaded tensors row-wise across the
      learner group; reconstruction all-gathers.  The default (``None``)
      resolves to "shard iff a ``group`` was provided", so ``EDKMConfig()``
      is constructible; an *explicit* ``shard=True`` without a group is
      still rejected.

    ``search_strategy`` selects how the marshal registry locates an
    existing host copy: ``"graph"`` (paper Section 2.1, at most
    ``hop_budget`` hops), ``"storage-id"`` (identity oracle), or
    ``"fingerprint"`` (sampled-stride content hash over at most
    ``fingerprint_max_samples`` 64-byte blocks, with a full-byte-compare
    collision backstop).  By default a fingerprint hit still requires
    storage identity -- the digest is just a cheap index -- so under the
    step-scoped immutability contract every strategy assumes (saved
    storages are not written in place between save and reuse; the
    registry is cleared between steps because weights change), the dedup
    set matches ``storage-id`` exactly.  If a storage *is* mutated
    mid-step, the fingerprint conservatively misses where the oracle
    would serve a stale snapshot.  ``fingerprint_dedup_content=True``
    additionally lets *verified byte-identical* storages share one host
    copy (never an unverified digest match).
    """

    offload: bool = True
    marshal: bool = True
    uniquify: bool = True
    shard: bool | None = None
    hop_budget: int = 4
    search_strategy: str = "graph"
    group: LearnerGroup | None = None
    source_device: Device = GPU
    host_device: Device = CPU
    min_offload_bytes: int = 0
    shard_min_bytes: int = 4096
    fingerprint_max_samples: int = DEFAULT_FINGERPRINT_MAX_SAMPLES
    fingerprint_dedup_content: bool = False

    def __post_init__(self) -> None:
        if self.search_strategy not in SEARCH_STRATEGIES:
            raise ValueError(
                f"unknown search strategy {self.search_strategy!r}; "
                f"expected one of {SEARCH_STRATEGIES}"
            )
        if self.hop_budget < 0:
            raise ValueError("hop_budget must be >= 0")
        if self.fingerprint_max_samples < 1:
            raise ValueError("fingerprint_max_samples must be >= 1")
        if self.shard is None:
            # Auto mode: sharding needs a learner group, so default to
            # whatever the presence of one implies.
            self.shard = self.group is not None
        elif self.shard and self.group is None:
            raise ValueError("sharding requires a LearnerGroup")

    @classmethod
    def baseline_offload(cls, **kwargs) -> "EDKMConfig":
        """The naive CPU-overflow configuration (first row of Table 2)."""
        return cls(marshal=False, uniquify=False, shard=False, group=None, **kwargs)


@dataclass
class PipelineStats:
    """Counters accumulated by the offload pipeline across a step.

    Besides the copy/shard byte accounting, the registry threads
    per-strategy *probe cost* through here: every ``MarshalRegistry.find``
    records a hit or miss under its strategy name, the graph walk counts
    frontier nodes it dequeues, and the fingerprint index counts the bytes
    it hashes (registration + probe) and the bytes it full-compares when a
    digest collides.  ``copies_made + copies_avoided == tensors_packed``
    and, per strategy, ``hits + misses == probes`` are the reconciliation
    invariants the strategy-equivalence tests assert.
    """

    tensors_packed: int = 0
    copies_made: int = 0
    bytes_copied: int = 0
    copies_avoided: int = 0
    bytes_avoided: int = 0
    tensors_sharded: int = 0
    bytes_sharded_local: int = 0
    gathers: int = 0
    hops_histogram: dict[int, int] = field(default_factory=dict)
    strategy_hits: dict[str, int] = field(default_factory=dict)
    strategy_misses: dict[str, int] = field(default_factory=dict)
    graph_nodes_visited: int = 0
    fingerprint_bytes_hashed: int = 0
    fingerprint_bytes_compared: int = 0
    fingerprint_collisions: int = 0

    def record_hit(self, hops: int, nbytes: int) -> None:
        """Count one avoided host copy found ``hops`` graph hops away."""
        self.copies_avoided += 1
        self.bytes_avoided += nbytes
        self.hops_histogram[hops] = self.hops_histogram.get(hops, 0) + 1

    def record_probe(self, strategy: str, hit: bool) -> None:
        """Per-strategy hit/miss bookkeeping for one ``find`` call."""
        book = self.strategy_hits if hit else self.strategy_misses
        book[strategy] = book.get(strategy, 0) + 1

    def probes(self, strategy: str) -> int:
        """Total ``find`` calls recorded under ``strategy``."""
        return self.strategy_hits.get(strategy, 0) + self.strategy_misses.get(
            strategy, 0
        )
