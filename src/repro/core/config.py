"""Configuration objects for DKM and the eDKM memory pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.learner import LearnerGroup
from repro.tensor.device import CPU, GPU, Device
from repro.tensor.dtype import DType, bfloat16


@dataclass
class DKMConfig:
    """Differentiable k-means clustering hyper-parameters.

    Attributes:
        bits: codebook size is ``2**bits`` centroids (paper: 3- and 4-bit).
        temperature: softmax temperature for the weight-centroid attention;
            smaller is harder assignment.  ``None`` (default) picks an
            adaptive per-tensor temperature from the weight spread.
        iters: maximum k-means refinement iterations per forward.
        tol: early-stop threshold on centroid movement.
        weight_dtype: 16-bit dtype weights are clustered in (uniquification
            keys on its bit patterns; paper fine-tunes in bfloat16).
    """

    bits: int = 3
    temperature: float | None = None
    iters: int = 5
    tol: float = 1e-8
    weight_dtype: DType = bfloat16

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {self.bits}")
        if self.temperature is not None and self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.iters < 1:
            raise ValueError("need at least one k-means iteration")

    @property
    def n_clusters(self) -> int:
        return 2**self.bits


@dataclass
class EDKMConfig:
    """The eDKM memory pipeline: which of M / U / S are enabled.

    Mirrors the toggles of the paper's Table 2 ablation:

    - ``offload``: overflow saved tensors from GPU to CPU at all (the
      baseline the paper starts from; disabling it keeps everything on GPU).
    - ``marshal`` (M): cross-device tensor marshaling -- dedup offloaded
      storages via a hop-limited walk of the forward graph.
    - ``uniquify`` (U): compute the attention *table* over unique 16-bit
      weight values plus an index list, instead of the dense attention map.
    - ``shard`` (S): partition large offloaded tensors row-wise across the
      learner group; reconstruction all-gathers.
    """

    offload: bool = True
    marshal: bool = True
    uniquify: bool = True
    shard: bool = True
    hop_budget: int = 4
    search_strategy: str = "graph"  # "graph" (paper) or "storage-id" (oracle)
    group: LearnerGroup | None = None
    source_device: Device = GPU
    host_device: Device = CPU
    min_offload_bytes: int = 0
    shard_min_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.search_strategy not in ("graph", "storage-id"):
            raise ValueError(
                f"unknown search strategy {self.search_strategy!r}; "
                "expected 'graph' or 'storage-id'"
            )
        if self.hop_budget < 0:
            raise ValueError("hop_budget must be >= 0")
        if self.shard and self.group is None:
            raise ValueError("sharding requires a LearnerGroup")

    @classmethod
    def baseline_offload(cls, **kwargs) -> "EDKMConfig":
        """The naive CPU-overflow configuration (first row of Table 2)."""
        return cls(marshal=False, uniquify=False, shard=False, group=None, **kwargs)


@dataclass
class PipelineStats:
    """Counters accumulated by the offload pipeline across a step."""

    tensors_packed: int = 0
    copies_made: int = 0
    bytes_copied: int = 0
    copies_avoided: int = 0
    bytes_avoided: int = 0
    tensors_sharded: int = 0
    bytes_sharded_local: int = 0
    gathers: int = 0
    hops_histogram: dict[int, int] = field(default_factory=dict)

    def record_hit(self, hops: int, nbytes: int) -> None:
        self.copies_avoided += 1
        self.bytes_avoided += nbytes
        self.hops_histogram[hops] = self.hops_histogram.get(hops, 0) + 1
