"""Deterministic fault injection for the compression engine (chaos harness).

A days-long train-time clustering run will see worker crashes, hangs,
corrupted payloads, and externally-reaped ``/dev/shm`` segments long
before it sees an OOM.  The engine's recovery paths -- watchdog respawn,
bounded retry, poison-layer quarantine, shm re-export, checkpoint/resume,
and backend degradation (see ``docs/robustness.md``) -- are only
trustworthy if every one of them can be triggered *on demand*, at a
chosen point, repeatably.  This module is that trigger.

A :class:`FaultPlan` names the injections: each :class:`FaultSpec` arms
one fault ``kind`` at a ``(sweep, layer)`` point (``layer=None`` picks a
layer deterministically from the plan's seed, so "some layer, same one
every run" is expressible without naming layers up front).  The
:class:`FaultInjector` is driven by
:class:`~repro.core.procpool.ProcessLayerEngine`: at every sweep it is
asked, per layer, whether a fault fires *here*; worker-side kinds come
back as a picklable :class:`FaultDirective` attached to the shipped task
(the worker executes it via :func:`apply_directive` -- killing itself,
sleeping, or raising), parent-side kinds (payload corruption, shm drop)
are applied by the engine before the task ships.  Every injection is
recorded in a :class:`FaultLog`, which the chaos benchmark
(``benchmarks/bench_faults.py``) cross-checks against the recoveries it
observed.

Determinism contract: for a fixed (plan, layer-name sequence), the
injector fires the same faults at the same points on every run -- no
wall-clock, no global RNG, only the plan's seed hashed with each spec's
index and sweep.  This is what lets the chaos gate demand *bit-identical*
results under every fault plan.

The exception taxonomy the recovery paths key on also lives here:

- :class:`TransientWorkerError` -- a worker-side failure worth retrying
  in place (backoff, no respawn).
- :class:`CorruptPayload` -- a shipped payload failed its integrity
  digest; re-ship full, no respawn.
- :class:`WatchdogTimeout` -- a task exceeded its deadline and the
  worker was put down.
- :class:`PoolExhausted` -- the engine's respawn budget is spent; the
  caller should degrade to a cheaper backend, not keep respawning.
- :class:`RobustnessWarning` -- the warning category for every
  survivable degradation (quarantine, backend demotion).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace
from typing import ClassVar, Sequence

FAULT_KINDS = ("kill", "hang", "delay", "transient", "corrupt_delta", "drop_shm")
"""Injectable fault classes: hard-kill the worker mid-task, hang it past
the watchdog deadline, delay it within the deadline, raise a retryable
worker exception, corrupt a shipped ``LayerDelta`` payload, or unlink a
layer's shared-memory block out from under the engine."""

WORKER_FAULT_KINDS = ("kill", "hang", "delay", "transient")
"""The subset of :data:`FAULT_KINDS` executed *inside* a pool worker via
a shipped :class:`FaultDirective`; the rest are applied parent-side."""


class RobustnessWarning(RuntimeWarning):
    """A survivable degradation: quarantine, demotion, or respawn storm.

    Emitted (never raised) whenever the engine trades performance for
    forward progress -- a layer quarantined to in-parent execution, the
    process backend demoted to thread or serial -- so operators see the
    event without the run failing.
    """


class TransientWorkerError(RuntimeError):
    """A worker-side failure that is expected to succeed on retry.

    The parent retries the slot with exponential backoff instead of
    respawning it; the fault injector raises this to exercise that path,
    and real worker code may raise it for genuinely transient conditions
    (e.g. a racy resource briefly unavailable).
    """

    def __init__(self, layer: str | None = None, detail: str = "injected"):
        super().__init__(
            f"transient worker failure ({detail})"
            + (f" on layer {layer!r}" if layer else "")
        )
        self.layer = layer
        self.detail = detail

    def __reduce__(self):
        """Pickle by field so the executor can ship the error home."""
        return (type(self), (self.layer, self.detail))


class CorruptPayload(RuntimeError):
    """A shipped payload failed its integrity digest in the worker.

    Raised worker-side when a :class:`~repro.core.procpool.LayerDelta`'s
    blake2b digest does not match its content -- bit-rot, a truncated
    pickle, or the fault injector.  The parent recovers exactly like a
    stale cache: re-ship the slot's layers as full tasks, no respawn.
    """

    def __init__(self, layer: str, detail: str = "digest mismatch"):
        super().__init__(f"corrupt payload for layer {layer!r}: {detail}")
        self.layer = layer
        self.detail = detail

    def __reduce__(self):
        """Pickle by field so the executor can ship the error home."""
        return (type(self), (self.layer, self.detail))


class WatchdogTimeout(RuntimeError):
    """A slot batch exceeded its deadline and the worker was killed."""


class PoolExhausted(RuntimeError):
    """The engine's worker-respawn budget (``max_pool_respawns``) is spent.

    Raised instead of respawning yet another worker; the
    :class:`~repro.core.compressor.ModelCompressor` reacts by demoting
    the backend down the degradation ladder (process -> thread -> serial)
    rather than failing the run.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: ``kind`` at ``(sweep, layer)``, fired ``times`` times.

    ``sweep`` counts the engine's sweeps 1-based (each ``refine_all`` /
    ``precluster`` / ``finalize`` call is one sweep).  ``layer=None``
    resolves to a deterministic seeded pick from that sweep's layer list;
    ``op`` restricts the fault to one sweep op (``None`` matches any).
    ``times > 1`` re-fires on retries -- e.g. a ``transient`` with
    ``times`` above the engine's retry budget forces the quarantine path.
    ``seconds`` parameterizes ``delay``/``hang`` durations.
    """

    #: The kinds a spec of this class may arm.  Subclasses (the serving
    #: fault layer in :mod:`repro.serving.faults`) override this to extend
    #: the taxonomy while reusing the seeded-determinism machinery.
    VALID_KINDS: ClassVar[tuple[str, ...]] = FAULT_KINDS

    kind: str
    sweep: int = 1
    layer: str | None = None
    op: str | None = None
    times: int = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        kinds = type(self).VALID_KINDS
        if self.kind not in kinds:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {kinds}"
            )
        if self.sweep < 1:
            raise ValueError(f"sweep is 1-based, got {self.sweep}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable, deterministic set of :class:`FaultSpec` injections.

    Attach to ``CompressorConfig.fault_plan`` to arm the engine's
    injector.  The plan is immutable; the injector tracks firing state.
    """

    #: The spec class :meth:`single` constructs; subclasses pair with
    #: their own :class:`FaultSpec` subclass.
    SPEC_CLASS: ClassVar[type] = FaultSpec

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any sequence for ergonomics, store a tuple for hashing.
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def single(cls, kind: str, sweep: int = 1, **kwargs) -> "FaultPlan":
        """A one-spec plan -- the common chaos-benchmark shape."""
        return cls(specs=(cls.SPEC_CLASS(kind=kind, sweep=sweep, **kwargs),))


@dataclass(frozen=True)
class FaultDirective:
    """The picklable worker-side payload of one injection.

    Shipped on a :class:`~repro.core.procpool.LayerTask` /
    :class:`~repro.core.procpool.LayerDelta`'s ``fault`` field and
    executed by :func:`apply_directive` in the worker just before the
    sweep op runs ("mid-task": after install/resume, before compute).
    """

    kind: str
    layer: str
    seconds: float = 0.0


@dataclass
class FaultEvent:
    """One injection, as recorded by the :class:`FaultLog`."""

    sweep: int
    layer: str
    op: str
    kind: str
    detail: str = ""


class FaultLog:
    """Append-only record of every injection the injector performed.

    The chaos benchmark reconciles this log against the recoveries it
    observed (respawns, re-ships, retries): every logged fault must have
    been survived, and no unlogged fault may have occurred.
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def record(self, event: FaultEvent) -> None:
        """Append one injection."""
        self.events.append(event)

    def count(self, kind: str | None = None) -> int:
        """Number of recorded injections, optionally filtered by kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind == kind)

    def to_json_dicts(self) -> list[dict]:
        """The events as JSON-serializable dicts (benchmark artifact)."""
        return [
            {
                "sweep": e.sweep,
                "layer": e.layer,
                "op": e.op,
                "kind": e.kind,
                "detail": e.detail,
            }
            for e in self.events
        ]


def _seeded_index(seed: int, spec_index: int, sweep: int, n: int) -> int:
    """Deterministic index in ``[0, n)`` from (seed, spec, sweep).

    blake2b rather than ``random``: no global state, no platform
    variance, and the same triple always picks the same layer -- the
    property the chaos gate's bit-identity claim rests on.
    """
    digest = hashlib.blake2b(
        f"{seed}:{spec_index}:{sweep}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % max(n, 1)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` (one per engine).

    Driven by the process engine: :meth:`begin_sweep` advances the sweep
    counter and resolves ``layer=None`` specs against the sweep's layer
    list; :meth:`fire` answers "does ``kind`` fire for (layer, op) right
    now?", consuming one of the spec's ``times`` and logging the event
    when it does; :meth:`worker_directive` packages the worker-side kinds
    into a shippable :class:`FaultDirective`.  All methods are parent-side
    and single-threaded (the engine submits batches from one thread).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.log = FaultLog()
        self._sweep = 0
        self._op = ""
        self._fired: dict[int, int] = {}
        self._resolved: dict[int, str] = {}

    @classmethod
    def from_plan(cls, plan: "FaultPlan | None") -> "FaultInjector | None":
        """An injector for ``plan``, or ``None`` for a fault-free engine."""
        return None if plan is None else cls(plan)

    def begin_sweep(self, sweep: int, names: Sequence[str], op: str) -> None:
        """Arm the injector for one engine sweep over ``names``."""
        self._sweep = sweep
        self._op = op
        self._resolved = {}
        for index, spec in enumerate(self.plan.specs):
            if spec.sweep != sweep:
                continue
            if spec.layer is not None:
                self._resolved[index] = spec.layer
            elif names:
                self._resolved[index] = names[
                    _seeded_index(self.plan.seed, index, sweep, len(names))
                ]

    def fire(self, kind: str, layer: str, detail: str = "") -> FaultSpec | None:
        """Consume and log a matching armed spec, or return ``None``.

        A spec matches when its kind, sweep, (resolved) layer, and op all
        agree and it has firings left.  At most one spec fires per call.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != kind or spec.sweep != self._sweep:
                continue
            if self._resolved.get(index) != layer:
                continue
            if spec.op is not None and spec.op != self._op:
                continue
            if self._fired.get(index, 0) >= spec.times:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            self.log.record(
                FaultEvent(
                    sweep=self._sweep,
                    layer=layer,
                    op=self._op,
                    kind=kind,
                    detail=detail or self._describe(spec),
                )
            )
            return spec
        return None

    def worker_directive(self, layer: str) -> FaultDirective | None:
        """The worker-side directive firing for ``layer`` now, if any."""
        for kind in WORKER_FAULT_KINDS:
            spec = self.fire(kind, layer)
            if spec is not None:
                return FaultDirective(kind=kind, layer=layer, seconds=spec.seconds)
        return None

    @staticmethod
    def _describe(spec: FaultSpec) -> str:
        if spec.kind in ("hang", "delay"):
            return f"{spec.seconds}s"
        return f"firing {spec.times} time(s)"


def apply_directive(directive: "FaultDirective | None") -> None:
    """Execute a shipped fault directive inside a pool worker.

    Called by the worker entry points just before the sweep op runs.
    ``kill`` exits the interpreter without cleanup (``os._exit`` -- the
    closest stand-in for a segfault or an OOM-killer SIGKILL); ``hang``
    and ``delay`` sleep (``hang`` is simply a sleep the plan sized past
    the watchdog deadline, so the parent puts the worker down mid-nap);
    ``transient`` raises :class:`TransientWorkerError`.
    """
    if directive is None:
        return
    if directive.kind == "kill":
        os._exit(13)
    elif directive.kind in ("hang", "delay"):
        time.sleep(directive.seconds)
    elif directive.kind == "transient":
        raise TransientWorkerError(directive.layer)
    else:  # pragma: no cover - plan validation keeps this unreachable
        raise ValueError(f"directive kind {directive.kind!r} is not worker-side")


def corrupted_state(state):
    """A corrupted deep copy of a :class:`~repro.core.dkm.ClusterState`.

    Used by the engine's ``corrupt_delta`` injection: the *copy* is
    perturbed (first centroid bit-flipped via negation + offset) so the
    parent's live state is never touched -- the corruption must exist
    only on the wire, where the digest check catches it.
    """
    if state is None:
        return None
    corrupted = replace(state, centroids=state.centroids.copy())
    if corrupted.centroids.size:
        corrupted.centroids[0] = -corrupted.centroids[0] + 1.0
    return corrupted


__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "CorruptPayload",
    "FaultDirective",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "PoolExhausted",
    "RobustnessWarning",
    "TransientWorkerError",
    "WatchdogTimeout",
    "apply_directive",
    "corrupted_state",
]
