"""The eDKM saved-tensor pipeline.

This is the glue that turns the three paper techniques into autograd
behavior, via ``saved_tensors_hooks``:

- **offload** (baseline): every tensor saved for backward on the source
  ("gpu") device is copied to the host ("cpu") and the GPU reference is
  dropped; backward copies it back.  This is the naive CPU-overflow scheme
  the paper starts from.
- **M -- marshaling**: before copying, consult the
  :class:`~repro.core.marshal.MarshalRegistry`; on a hit, store a reference
  to the existing host copy plus view metadata instead of a second copy.
- **S -- sharding**: large host copies are row-partitioned across the
  learner group; backward all-gathers the shards.

U (uniquification) is not a hook: it changes which tensors the DKM op saves
in the first place (see :mod:`repro.core.edkm`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator

from repro.core.config import EDKMConfig, PipelineStats
from repro.core.marshal import MarshalRegistry, OffloadEntry
from repro.distributed.collective import ShardedTensor, all_gather, shard_rows
from repro.memory.traffic import global_ledger
from repro.tensor.autograd import no_grad, saved_tensors_hooks
from repro.tensor.tensor import Tensor


@dataclass
class SavedPayload:
    """Handle stored in a Function context in place of the saved tensor."""

    entry: OffloadEntry | None
    shape: tuple[int, ...] = ()
    strides: tuple[int, ...] = ()
    offset: int = 0
    op_trace: tuple[str, ...] = ()
    passthrough: Tensor | None = None


class SavedTensorPipeline:
    """Installs the eDKM pack/unpack hooks for a training step.

    Usage::

        pipeline = SavedTensorPipeline(config)
        with pipeline.step():
            loss = model(batch)          # saved tensors offloaded per config
            loss.backward()              # and restored on demand

    ``stats`` accumulates across steps; the marshaling registry is scoped to
    a single step (weights change between steps, so stale copies must not be
    reused).

    With ``record_events=True`` every packed tensor appends
    ``(nbytes, hit)`` to :attr:`events`, in pack order.  Two strategies
    dedup the identical set of storages on a deterministic workload iff
    their event sequences are equal -- the comparison the
    strategy-equivalence suite and ``bench_marshal_strategies`` run on.
    """

    def __init__(self, config: EDKMConfig, record_events: bool = False) -> None:
        self.config = config
        self.stats = PipelineStats()
        self.registry = MarshalRegistry(
            fingerprint_max_samples=config.fingerprint_max_samples,
            fingerprint_dedup_content=config.fingerprint_dedup_content,
        )
        self.record_events = record_events
        self.events: list[tuple[int, bool]] = []

    @contextlib.contextmanager
    def step(self) -> Iterator["SavedTensorPipeline"]:
        """Scope one forward/backward under the pack/unpack hooks.

        Clears the marshal registry on entry and exit -- dedup must never
        span an optimizer write.
        """
        self.registry.clear()
        if not self.config.offload:
            yield self
            return
        with saved_tensors_hooks(self._pack, self._unpack):
            try:
                yield self
            finally:
                self.registry.clear()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _pack(self, tensor: Tensor) -> SavedPayload:
        cfg = self.config
        if (
            tensor.device != cfg.source_device
            or tensor.storage.nbytes < cfg.min_offload_bytes
        ):
            return SavedPayload(entry=None, passthrough=tensor)

        self.stats.tensors_packed += 1
        metadata = (tensor.shape, tensor.strides, tensor.offset)

        if cfg.marshal:
            entry, hops, trace = self.registry.find(
                tensor, cfg.hop_budget, cfg.search_strategy, self.stats
            )
            if entry is not None:
                self.stats.record_hit(hops, tensor.storage.nbytes)
                if self.record_events:
                    self.events.append((tensor.storage.nbytes, True))
                return SavedPayload(
                    entry=entry,
                    shape=metadata[0],
                    strides=metadata[1],
                    offset=metadata[2],
                    op_trace=tuple(trace),
                )

        entry = self._offload(tensor)
        if cfg.marshal:
            self.registry.register(tensor, entry)
        if self.record_events:
            self.events.append((tensor.storage.nbytes, False))
        return SavedPayload(
            entry=entry,
            shape=metadata[0],
            strides=metadata[1],
            offset=metadata[2],
        )

    def _unpack(self, payload: SavedPayload) -> Tensor:
        if payload.passthrough is not None:
            return payload.passthrough
        entry = payload.entry
        assert entry is not None
        storage = entry.cached_gpu_storage()
        if storage is None:
            flat = self._restore(entry)
            entry.cache_gpu(flat)
            storage = flat.storage
        return Tensor(storage, payload.shape, payload.strides, payload.offset)

    # ------------------------------------------------------------------
    # Device movement
    # ------------------------------------------------------------------

    def _offload(self, tensor: Tensor) -> OffloadEntry:
        """Copy the tensor's *entire storage* to the host (possibly sharded).

        Copying the whole storage (rather than the tensor's logical data)
        is what allows any later view of the same storage to be served by
        reference -- the marshaling contract.
        """
        cfg = self.config
        storage = tensor.storage
        with no_grad():
            flat = Tensor(storage, (storage.numel,), (1,), 0)
            if (
                cfg.shard
                and cfg.group is not None
                and storage.nbytes >= cfg.shard_min_bytes
            ):
                host_copy: Tensor | ShardedTensor = shard_rows(
                    flat, cfg.group, tag="offload-shard"
                )
                self.stats.tensors_sharded += 1
                self.stats.bytes_sharded_local += host_copy.local_shard.nbytes
            else:
                host_copy = Tensor.from_numpy(
                    flat._np(), dtype=tensor.dtype, device=cfg.host_device
                )
                global_ledger().record(
                    cfg.source_device.name,
                    cfg.host_device.name,
                    host_copy.nbytes,
                    tag="offload",
                )
        self.stats.copies_made += 1
        self.stats.bytes_copied += storage.nbytes
        return OffloadEntry(host_copy, storage, cfg.source_device)

    def _restore(self, entry: OffloadEntry) -> Tensor:
        """Bring a host copy back to the source device as a flat tensor."""
        cfg = self.config
        with no_grad():
            if isinstance(entry.host_copy, ShardedTensor):
                self.stats.gathers += 1
                return all_gather(
                    entry.host_copy, cfg.source_device, tag="backward-gather"
                )
            host = entry.host_copy
            restored = Tensor.from_numpy(
                host._np(), dtype=host.dtype, device=cfg.source_device
            )
            global_ledger().record(
                cfg.host_device.name, cfg.source_device.name, restored.nbytes, tag="reload"
            )
            return restored
