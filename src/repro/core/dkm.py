"""Differentiable K-Means clustering (DKM, Cho et al., ICLR 2022).

The algorithm the paper makes memory-feasible: each forward pass soft-clusters
the weight tensor against ``k = 2**bits`` centroids through a softmax
attention map, reconstructs the weights as attention-weighted centroid
mixtures, and lets gradients flow through the assignment so the task loss
shapes the clustering.

Two differentiable paths are provided:

- :meth:`DKMClusterer.cluster_dense` -- the original DKM formulation
  composed from primitive autograd ops.  Its saved tensors include two
  ``O(|W|·|C|)`` buffers (the squared-distance matrix and the attention
  map), which is the memory wall motivating eDKM.
- :func:`repro.core.edkm.edkm_cluster` -- the eDKM path that computes in
  unique-value space and saves the attention *table* + index list instead.

Centroid refinement (the k-means half) always runs in unique-value space
under ``no_grad``; this is mathematically identical to iterating over all
weights (duplicated weights contribute via their multiplicity) and keeps
refinement cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DKMConfig
from repro.core.fastpath import StepCache
from repro.core.uniquify import attention_table
from repro.tensor import ops
from repro.tensor.autograd import is_grad_enabled, no_grad
from repro.tensor.tensor import Tensor

# Row-block size for the chunked fallback of the inspection helpers: bounds
# the materialized distance block at chunk x k instead of N x k.
HARD_ASSIGN_CHUNK = 1 << 16


@dataclass
class ClusterState:
    """Mutable per-layer clustering state carried across training steps."""

    centroids: np.ndarray  # (k,) float32
    temperature: float
    iterations_run: int = 0


def init_centroids_quantile(values: np.ndarray, k: int) -> np.ndarray:
    """Deterministic quantile initialization over the weight distribution."""
    quantiles = (np.arange(k, dtype=np.float64) + 0.5) / k
    centroids = np.quantile(values.astype(np.float64), quantiles)
    return np.asarray(centroids, dtype=np.float32)


def default_temperature(values: np.ndarray, k: int) -> float:
    """Adaptive softmax temperature.

    Scaled so that the squared distance between adjacent centroids is a few
    temperature units: assignments are soft near cluster boundaries and
    near-hard elsewhere, which is the regime DKM trains well in.
    """
    spread = float(values.max() - values.min())
    if spread <= 0:
        return 1e-8
    step = spread / max(k, 1)
    return max((step / 2.0) ** 2, 1e-12)


def nearest_centroid(
    values: np.ndarray, centroids: np.ndarray, chunk: int = HARD_ASSIGN_CHUNK
) -> np.ndarray:
    """Argmin squared distance of each value to the centroid vector.

    Processes ``values`` in blocks of ``chunk`` so the materialized
    distance matrix is bounded at ``chunk x k`` regardless of input size.
    """
    values = np.asarray(values).reshape(-1)
    out = np.empty(values.size, dtype=np.int64)
    for start in range(0, values.size, chunk):
        block = values[start : start + chunk]
        distance = (block[:, None] - centroids[None, :]) ** 2
        out[start : start + block.size] = np.argmin(distance, axis=1)
    return out


class DKMClusterer:
    """Per-tensor DKM state machine: init, refine, differentiable assign."""

    def __init__(self, config: DKMConfig) -> None:
        self.config = config
        self.state: ClusterState | None = None
        # Per-layer fast-path memo: one uniquify per weight version, and the
        # final refine-iteration attention table carried to the forward.
        self.fastpath = StepCache()

    # ------------------------------------------------------------------
    # Centroid refinement (no_grad, unique-value space)
    # ------------------------------------------------------------------

    def refine(self, weights: Tensor, cache_table: bool = False) -> ClusterState:
        """Run up to ``config.iters`` soft k-means updates on ``weights``.

        With ``cache_table=True`` the attention table at the *converged*
        centroids is computed here and parked in the step cache, so a
        following :class:`~repro.core.edkm.EDKMClusterAssign` forward reads
        it instead of rebuilding the identical ``(u, k)`` softmax.  (This
        relocates that table's construction rather than eliminating it --
        the per-step table count is unchanged; it does eliminate the
        recomputation when several forwards share one refine, and the
        step-level speedup comes from the shared uniquify.)
        """
        unique = self.fastpath.uniquify(weights, self.config.weight_dtype)
        w_u = unique.values
        counts = unique.counts.astype(np.float64)

        if self.state is None:
            centroids = init_centroids_quantile(w_u.repeat(unique.counts), self.config.n_clusters)
            temperature = (
                self.config.temperature
                if self.config.temperature is not None
                else default_temperature(w_u, self.config.n_clusters)
            )
            self.state = ClusterState(centroids=centroids, temperature=temperature)

        state = self.state
        for iteration in range(self.config.iters):
            table = attention_table(w_u, state.centroids, state.temperature)
            weighted = table * counts[:, None]
            denom = weighted.sum(axis=0)
            numer = (weighted * w_u[:, None]).sum(axis=0)
            new_centroids = np.where(
                denom > 1e-12, numer / np.maximum(denom, 1e-12), state.centroids
            ).astype(np.float32)
            movement = float(np.abs(new_centroids - state.centroids).max())
            state.centroids = new_centroids
            state.iterations_run += 1
            if movement < self.config.tol:
                break
        if cache_table:
            final_table = attention_table(w_u, state.centroids, state.temperature)
            self.fastpath.store_table(state.centroids, state.temperature, final_table)
        return state

    # ------------------------------------------------------------------
    # Differentiable assignment -- dense DKM path
    # ------------------------------------------------------------------

    def cluster_dense(self, weights: Tensor, row_chunk: int | None = None) -> Tensor:
        """Soft-reconstruct ``weights`` through the dense attention map.

        Composed from primitive ops so every intermediate flows through the
        active saved-tensor hooks exactly as the original DKM implementation
        does in PyTorch.  Saved tensors of this path (per weight tensor):
        the squared-distance matrix and the attention map, each
        ``O(|W|·|C|)``, plus small vectors.

        ``row_chunk`` (default ``config.dense_row_chunk``) switches to the
        blocked fallback: the flattened weight is clustered in row blocks of
        ``row_chunk`` positions, each through the same primitive composition
        (so per-position gradients are exactly the monolithic ones -- the
        softmax and mixture are row-local), and the block outputs are
        concatenated.  Each individual buffer is then bounded at
        ``row_chunk x k``: the *transient* working set (the no-grad sweeps,
        eval/palettization, and each op's scratch) shrinks accordingly, and
        every saved-for-backward tensor becomes small enough for the
        offload pipeline to spill or shard per block.  The *total*
        retained-for-backward footprint of a grad-recording forward is
        still ``O(|W|·|C|)`` summed over blocks -- that is inherent to
        dense DKM and is exactly the memory wall eDKM exists to remove.
        Without a chunk size, a monolithic composition whose
        ``O(|W|·|C|)`` float32 buffers would exceed
        ``config.dense_saved_bytes_limit`` raises :class:`MemoryError` up
        front instead of thrashing the host.

        **Step-cache table reuse** (the dense-path fast path): when the
        call records *no* gradients -- grad mode is off or ``weights``
        does not require grad -- and the whole tensor fits in one block
        (``|W| <= row_chunk``, or the monolithic path), the reconstruction
        is served from the step cache instead of the primitive
        composition: the shared uniquify plus the refine-parked attention
        table collapse the rebuild into a ``(u, k) @ (k,)`` mixture and an
        ``O(|W|)`` gather, skipping the ``O(|W|·|C|)`` distance/softmax
        blocks entirely.  The served values are the *unique-space*
        mixture -- the same arithmetic the eDKM assignment uses -- which
        differs from the primitive composition at the ULP level (division
        by the temperature vs multiplication by its reciprocal), exactly
        the established eDKM-vs-dense numerical relationship; do not
        expect a no-grad forward to be bit-equal to a recording one.
        Grad-recording calls never take this path, so training gradients
        are bit-identical to the original composition (asserted by
        regression test); the single-block gate keeps the blocked
        fallback's bounded-buffer behavior untouched.
        """
        if row_chunk is None:
            row_chunk = self.config.dense_row_chunk
        elif row_chunk < 1:
            raise ValueError(f"row_chunk must be positive when set, got {row_chunk}")
        n_weights = weights.numel
        k = self.config.n_clusters
        if row_chunk is None:
            dense_bytes = n_weights * k * 4
            if dense_bytes > self.config.dense_saved_bytes_limit:
                raise MemoryError(
                    f"dense DKM would materialize {dense_bytes} bytes per "
                    f"O(|W|·|C|) buffer ({n_weights} weights x {k} centroids), "
                    f"over the {self.config.dense_saved_bytes_limit}-byte limit; "
                    "set dense_row_chunk (DKMConfig / cluster_dense argument) "
                    "to use the blocked fallback, or use the eDKM path"
                )
            row_chunk = n_weights  # single block == original monolithic path
        fastpath_ok = (
            n_weights <= row_chunk
            and self.config.weight_dtype.itemsize == 2
            and weights.dtype is self.config.weight_dtype
            and not (is_grad_enabled() and weights.requires_grad)
        )
        with no_grad():
            state = self.refine(weights, cache_table=fastpath_ok)
        if fastpath_ok:
            reconstructed = self._dense_from_table(weights, state)
            if reconstructed is not None:
                return reconstructed
        centroids = Tensor.from_numpy(
            state.centroids, dtype="float32", device=weights.device
        )

        flat = weights.reshape(-1)
        blocks = []
        for start in range(0, max(n_weights, 1), max(row_chunk, 1)):
            block = flat[start : min(start + row_chunk, n_weights)]
            diff = block.unsqueeze(1) - centroids.unsqueeze(0)  # (chunk, k)
            sq_dist = diff * diff  # saves `diff` twice (same storage)
            logits = sq_dist * (-1.0 / state.temperature)
            attention = ops.softmax(logits, dim=1)  # the (chunk, k) map
            mixed = attention @ centroids.unsqueeze(1)  # saves `attention` again
            blocks.append(mixed.reshape(-1))
        mixed_flat = blocks[0] if len(blocks) == 1 else ops.cat(blocks, dim=0)
        reconstructed = mixed_flat.reshape(weights.shape)
        return reconstructed.cast(weights.dtype)

    def _dense_from_table(
        self, weights: Tensor, state: ClusterState
    ) -> Tensor | None:
        """No-grad dense reconstruction straight from the carried table.

        Returns ``None`` when the cache does not hold the table for the
        refined (centroids, temperature) -- the caller falls back to the
        primitive composition.  Only called from :meth:`cluster_dense`
        when no gradient is being recorded, so substituting the
        unique-space mixture for the per-block softmax rebuild cannot
        perturb any training gradient.
        """
        unique = self.fastpath.uniquify(weights, self.config.weight_dtype)
        table = self.fastpath.lookup_table(state.centroids, state.temperature)
        if table is None:
            return None
        mixed_unique = table @ state.centroids.astype(np.float32)  # (u,)
        out = mixed_unique[unique.index_list.astype(np.int64, copy=False)]
        return Tensor.from_numpy(
            out.reshape(weights.shape), dtype=weights.dtype, device=weights.device
        )

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------

    def hard_assign(self, weights: Tensor) -> np.ndarray:
        """Nearest-centroid index per weight (no gradient; for palettization).

        Works in unique-value space for 16-bit weights (at most ``2**16``
        distance rows regardless of layer size) and falls back to a chunked
        sweep otherwise, so the full ``(N, k)`` distance matrix is never
        materialized.
        """
        if self.state is None:
            raise RuntimeError("cluster state not initialized; call refine() first")
        dtype = weights.dtype
        if dtype.is_floating and dtype.itemsize == 2:
            unique = self.fastpath.uniquify(weights, dtype)
            assign_u = nearest_centroid(unique.values, self.state.centroids)
            return assign_u[unique.index_list.astype(np.int64, copy=False)]
        return nearest_centroid(weights._compute(), self.state.centroids)

    def reconstruction_error(self, weights: Tensor) -> float:
        """Mean squared error of hard-assigned reconstruction."""
        if self.state is None:
            raise RuntimeError("cluster state not initialized; call refine() first")
        centroids = self.state.centroids
        dtype = weights.dtype
        if dtype.is_floating and dtype.itemsize == 2:
            unique = self.fastpath.uniquify(weights, dtype)
            assign_u = nearest_centroid(unique.values, centroids)
            sq = (unique.values - centroids[assign_u]).astype(np.float64) ** 2
            return float((sq * unique.counts).sum() / max(unique.n_weights, 1))
        flat = weights._compute().reshape(-1)
        assign = nearest_centroid(flat, centroids)
        sq = (flat - centroids[assign]).astype(np.float64) ** 2
        return float(sq.sum() / max(flat.size, 1))
