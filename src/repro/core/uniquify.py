"""Weight uniquification (paper Section 2.2, Fig. 3).

Training keeps weights in a 16-bit floating format, so a weight tensor of
any size contains at most ``2**16`` distinct bit patterns.  Weights with
equal patterns provably receive identical attention rows, so the dense
``|W| x |C|`` attention map factors exactly into:

- an **attention table** with one row per unique pattern -- ``O(|C|)``
  memory (at most 65,536 rows), and
- an **index list** mapping each weight position to its table row --
  ``O(|W|)`` memory at (u <= 2**16 ? 16 : 32) bits per entry.

The factorization is lossless: gathering table rows by the index list
reconstructs the dense map bit-for-bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.tensor.dtype import DType, bit_pattern16, decode_pattern16, int32, uint16

MAX_UNIQUE_16BIT = 1 << 16


@dataclass(frozen=True)
class UniquifiedWeights:
    """The unique-pattern decomposition of a 16-bit weight tensor."""

    patterns: np.ndarray  # (u,) uint16, sorted unique bit patterns
    index_list: np.ndarray  # (N,) uint16 or int32, row of each weight
    values: np.ndarray  # (u,) float32, decoded unique values
    counts: np.ndarray  # (u,) int64, multiplicity of each unique value
    source_shape: tuple[int, ...]

    @property
    def n_unique(self) -> int:
        """Distinct 16-bit patterns present (``u``, at most 65,536)."""
        return int(self.patterns.size)

    @property
    def n_weights(self) -> int:
        """Total weight positions (``N``, the index-list length)."""
        return int(self.index_list.size)

    @property
    def compression_ratio(self) -> float:
        """Dense-row count over unique-row count (the U win on the map)."""
        return self.n_weights / max(self.n_unique, 1)

    def reconstruct_values(self) -> np.ndarray:
        """All weight values, rebuilt from the decomposition."""
        return self.values[self.index_list].reshape(self.source_shape)


def index_dtype_for(n_unique: int) -> DType:
    """Narrowest index element type able to address ``n_unique`` rows."""
    if n_unique <= MAX_UNIQUE_16BIT:
        return uint16
    return int32


# Below this element count the 2^16-bin histogram's fixed cost beats the
# sort; "auto" dispatches on it.  Either path is bit-identical.
HISTOGRAM_MIN_SIZE = 2048

# Total calls that actually computed a decomposition (cache hits in the
# fast-path StepCache never reach this function).  Inspected by the
# one-uniquify-per-layer-per-step tests and the fastpath benchmark.  The
# lock keeps the counter exact when the parallel compression engine
# uniquifies several layers from pool threads at once.
_CALL_COUNT = 0
_CALL_COUNT_LOCK = threading.Lock()


def uniquify_call_count() -> int:
    """Number of real uniquify computations since process start / reset."""
    return _CALL_COUNT


def reset_uniquify_call_count() -> None:
    """Zero the computation counter (test/benchmark bookkeeping)."""
    global _CALL_COUNT
    with _CALL_COUNT_LOCK:
        _CALL_COUNT = 0


def _decompose_sort(
    patterns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Legacy O(N log N) decomposition via ``np.unique`` (reference path)."""
    unique_patterns, inverse, counts = np.unique(
        patterns, return_inverse=True, return_counts=True
    )
    return unique_patterns, inverse.reshape(-1), counts


def _decompose_histogram(
    patterns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """O(N) decomposition over the fixed 2^16-pattern domain.

    One ``bincount`` over all 65,536 possible uint16 patterns yields the
    multiplicities; a cumulative sum over the occupancy mask is the
    pattern -> row lookup table, so the index list is a single
    ``lut[patterns]`` gather.  Output is bit-identical to ``np.unique``
    (both enumerate present patterns in ascending order).
    """
    hist = np.bincount(patterns, minlength=MAX_UNIQUE_16BIT)
    present = hist > 0
    lut = np.cumsum(present) - 1  # pattern -> rank among present patterns
    unique_patterns = np.flatnonzero(present).astype(np.uint16)
    counts = hist[present]
    return unique_patterns, lut[patterns], counts


def uniquify(
    weights: np.ndarray, dtype: DType, method: str = "auto"
) -> UniquifiedWeights:
    """Decompose ``weights`` (16-bit dtype) into unique patterns + indices.

    ``method`` selects the decomposition kernel: ``"histogram"`` (the O(N)
    fixed-domain fast path), ``"sort"`` (legacy ``np.unique``), or
    ``"auto"`` (histogram above :data:`HISTOGRAM_MIN_SIZE` elements).  All
    methods return bit-identical results.
    """
    global _CALL_COUNT
    with _CALL_COUNT_LOCK:
        _CALL_COUNT += 1
    patterns = bit_pattern16(weights, dtype).reshape(-1)
    if method == "auto":
        method = "histogram" if patterns.size >= HISTOGRAM_MIN_SIZE else "sort"
    if method == "histogram":
        unique_patterns, inverse, counts = _decompose_histogram(patterns)
    elif method == "sort":
        unique_patterns, inverse, counts = _decompose_sort(patterns)
    else:
        raise ValueError(f"unknown uniquify method {method!r}")
    if unique_patterns.size > MAX_UNIQUE_16BIT:  # pragma: no cover - impossible
        raise AssertionError("more than 2^16 unique 16-bit patterns")
    idx_np = inverse.astype(index_dtype_for(unique_patterns.size).np_storage)
    values = decode_pattern16(unique_patterns, dtype)
    return UniquifiedWeights(
        patterns=unique_patterns,
        index_list=idx_np,
        values=values,
        counts=counts,
        source_shape=tuple(np.asarray(weights).shape),
    )


def attention_table(
    unique_values: np.ndarray, centroids: np.ndarray, temperature: float
) -> np.ndarray:
    """Softmax attention of each unique weight value to each centroid.

    ``softmax_j(-(w_u - c_j)^2 / temperature)`` with the numerically stable
    shift; shape ``(u, k)``.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    w = np.asarray(unique_values, dtype=np.float32).reshape(-1, 1)
    c = np.asarray(centroids, dtype=np.float32).reshape(1, -1)
    logits = -((w - c) ** 2) / temperature
    logits -= logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    return exp / exp.sum(axis=1, keepdims=True)


def dense_attention_map(
    weights: np.ndarray, centroids: np.ndarray, temperature: float
) -> np.ndarray:
    """The O(|W|·|C|) dense map -- reference implementation for tests."""
    flat = np.asarray(weights, dtype=np.float32).reshape(-1)
    return attention_table(flat, centroids, temperature)


def reconstruct_attention_map(
    table: np.ndarray, index_list: np.ndarray
) -> np.ndarray:
    """The paper's backward-pass step: look the dense map back up."""
    return table[np.asarray(index_list, dtype=np.int64)]
