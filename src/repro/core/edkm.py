"""The eDKM differentiable clustering op (uniquification path).

``EDKMClusterAssign`` produces the same output and the same weight gradient
as the dense DKM composition in :meth:`DKMClusterer.cluster_dense`, but its
*saved-for-backward* set is the factored representation of paper Fig. 3:

- attention table ``(u, k)`` float32 -- ``O(|C|)`` rows, ``u <= 2**16``;
- index list ``(|W|,)`` uint16 -- ``O(|W|)``;
- unique patterns ``(u,)`` uint16 (to recover weight values in backward);
- centroids ``(k,)``.

These are saved through ``ctx.save_for_backward``, so the eDKM offload
pipeline still applies to them: the index list is the large one and is
exactly what sharding partitions across learners.

For the backward pass the paper reconstructs the dense attention map from
table + gathered index list "to stay compatible with the existing autograd
implementation"; we do the same (``reconstruct=True`` default).  A fully
factorized backward that never materializes the dense map -- grouping
gradient segments by unique value -- is implemented as an extension
(``reconstruct=False``) and ablated in the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dkm import DKMClusterer
from repro.core.fastpath import StepCache
from repro.core.uniquify import attention_table, index_dtype_for, uniquify
from repro.tensor.autograd import Context, Function, no_grad
from repro.tensor.dtype import decode_pattern16, float32, uint16
from repro.tensor.ops.segment import segment_sum
from repro.tensor.tensor import Tensor


class EDKMClusterAssign(Function):
    """Fused unique-space DKM assignment with exact dense-equivalent grads."""

    @staticmethod
    def forward(
        ctx: Context,
        weights: Tensor,
        centroids: Tensor,
        temperature: float,
        reconstruct: bool = True,
        cache: StepCache | None = None,
    ) -> Tensor:
        """Reconstruct weights as attention-weighted centroid mixtures.

        Computes in unique-value space (table ``(u, k)`` + index list)
        and saves only those factors for backward -- the U of the paper's
        M/U/S ablation.  With a :class:`StepCache`, the decomposition and
        the refine-parked attention table are reused instead of rebuilt.
        """
        from repro.tensor.ops._common import check_same_device, make_result

        check_same_device(weights, centroids)
        dtype = weights.dtype
        if dtype.itemsize != 2:
            raise TypeError(
                f"eDKM uniquification requires a 16-bit weight dtype, got {dtype.name}"
            )
        if cache is not None:
            # Fast path: refine() already decomposed this weight version and
            # parked the final-iteration table; reuse both.
            unique = cache.uniquify(weights, dtype)
        else:
            unique = uniquify(weights._np(), dtype)
        c_np = centroids._compute().reshape(-1)

        table_np = cache.lookup_table(c_np, temperature) if cache is not None else None
        if table_np is None:
            table_np = attention_table(unique.values, c_np, temperature)  # (u, k)
            if cache is not None:
                cache.store_table(c_np, temperature, table_np)
        mixed_unique = table_np @ c_np  # (u,)
        out_np = mixed_unique[unique.index_list.astype(np.int64)].reshape(weights.shape)

        idx_dtype = index_dtype_for(unique.n_unique)
        table_t = Tensor.from_numpy(table_np, dtype=float32, device=weights.device)
        index_t = Tensor.from_numpy(
            unique.index_list.astype(idx_dtype.np_storage, copy=False),
            dtype=idx_dtype,
            device=weights.device,
        )
        patterns_t = Tensor.from_numpy(
            unique.patterns, dtype=uint16, device=weights.device
        )
        ctx.save_for_backward(table_t, index_t, patterns_t, centroids)
        ctx.temperature = temperature
        ctx.reconstruct = reconstruct
        ctx.weight_dtype = dtype
        ctx.w_shape = weights.shape
        return make_result(out_np, dtype, weights.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        """Exact dense-equivalent grads from the saved unique-space factors.

        The paper's backward step: gather the dense attention rows back
        through the index list (conceptually), implemented as bincount
        segment reductions over unique rows so no ``O(|W|·|C|)`` buffer is
        ever materialized.
        """
        table_t, index_t, patterns_t, centroids_t = ctx.saved_tensors
        table = table_t._compute()  # (u, k)
        index_list = index_t._np().astype(np.int64)  # (N,) -- all-gathered by unpack
        c = centroids_t._compute().reshape(-1)  # (k,)
        w_unique = decode_pattern16(patterns_t._np(), ctx.weight_dtype)  # (u,)
        g = grad.reshape(-1).astype(np.float32)  # (N,)
        tau = ctx.temperature

        needs_w, needs_c = ctx.needs_input_grad
        if ctx.reconstruct:
            grad_w, grad_c = _backward_dense_reconstruction(
                table, index_list, w_unique, c, g, tau, needs_c
            )
        else:
            grad_w, grad_c = _backward_factorized(
                table, index_list, w_unique, c, g, tau, needs_c
            )
        return (
            grad_w.reshape(ctx.w_shape) if needs_w else None,
            grad_c if needs_c else None,
        )


def _backward_dense_reconstruction(
    table: np.ndarray,
    index_list: np.ndarray,
    w_unique: np.ndarray,
    c: np.ndarray,
    g: np.ndarray,
    tau: float,
    needs_centroid_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Paper-faithful backward: rebuild the O(|W|·|C|) map, then chain rule.

    Let ``z_ij = -(w_i - c_j)^2 / tau``, ``A = softmax_j(z)`` and
    ``out_i = sum_j A_ij c_j``.  Then with upstream gradient ``g``:

    - ``dL/dA_ij = g_i c_j``
    - ``dL/dz_ij = A_ij (g_i c_j - sum_l A_il g_i c_l)``
    - ``dL/dw_i = sum_j dL/dz_ij * (-2 (w_i - c_j) / tau)``
    - ``dL/dc_j = sum_i A_ij g_i  +  sum_i dL/dz_ij * (2 (w_i - c_j) / tau)``
    """
    attention = table[index_list]  # (N, k): the reconstructed dense map
    w = w_unique[index_list]  # (N,)
    diff = w[:, None] - c[None, :]  # (N, k)

    grad_attention = g[:, None] * c[None, :]
    inner = (attention * grad_attention).sum(axis=1, keepdims=True)
    grad_logits = attention * (grad_attention - inner)

    grad_w = (grad_logits * (-2.0 * diff / tau)).sum(axis=1)
    if not needs_centroid_grad:
        return grad_w, None
    grad_c = attention.T @ g + (grad_logits * (2.0 * diff / tau)).sum(axis=0)
    return grad_w, grad_c


def _backward_factorized(
    table: np.ndarray,
    index_list: np.ndarray,
    w_unique: np.ndarray,
    c: np.ndarray,
    g: np.ndarray,
    tau: float,
    needs_centroid_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Extension: backward entirely in unique space, O(u·|C| + |W|) memory.

    The per-position gradient factors as ``dL/dw_i = g_i * rho_{u(i)}`` where
    ``rho`` depends only on the unique value, and the centroid gradient needs
    only the *segment sums* of ``g`` grouped by unique value.  The dense map
    is never materialized.
    """
    diff_u = w_unique[:, None] - c[None, :]  # (u, k)
    # rho_u = sum_j A_uj (c_j - out_u) * (-2 diff_uj / tau)
    out_u = table @ c  # (u,)
    rho = (table * (c[None, :] - out_u[:, None]) * (-2.0 * diff_u / tau)).sum(axis=1)
    grad_w = g * rho[index_list]
    if not needs_centroid_grad:
        return grad_w, None

    # (u,) segment sums of g: O(N) bincount instead of element-wise add.at.
    seg_g = segment_sum(g, index_list, w_unique.shape[0]).astype(np.float32)

    grad_attention_u = seg_g[:, None] * c[None, :]  # (u, k)
    inner_u = (table * grad_attention_u).sum(axis=1, keepdims=True)
    # inner must use per-row g sums consistently: A_il g_i c_l summed over i
    # in each unique group factors because A rows are equal within a group.
    grad_logits_u = table * (grad_attention_u - inner_u)
    grad_c = table.T @ seg_g + (grad_logits_u * (2.0 * diff_u / tau)).sum(axis=0)
    return grad_w, grad_c


def edkm_cluster(
    weights: Tensor,
    clusterer: DKMClusterer,
    reconstruct_backward: bool = True,
) -> Tensor:
    """Refine centroids, then run the fused unique-space assignment.

    Drop-in alternative to :meth:`DKMClusterer.cluster_dense` with the eDKM
    saved-tensor footprint.  Refinement and assignment share the clusterer's
    :class:`~repro.core.fastpath.StepCache`: one uniquify per layer per
    weight version, and the final refine-iteration attention table feeds the
    forward directly.
    """
    with no_grad():
        state = clusterer.refine(weights, cache_table=True)
    centroids = Tensor.from_numpy(
        state.centroids, dtype=float32, device=weights.device
    )
    return EDKMClusterAssign.apply(
        weights,
        centroids,
        state.temperature,
        reconstruct=reconstruct_backward,
        cache=clusterer.fastpath,
    )


def cluster(
    weights: Tensor,
    clusterer: DKMClusterer,
    uniquify_enabled: bool,
    reconstruct_backward: bool = True,
    dense_row_chunk: int | None = None,
) -> Tensor:
    """Dispatch between the dense DKM path and the eDKM unique path.

    ``dense_row_chunk`` overrides the clusterer config's chunk size for the
    dense ablation (``None`` defers to ``DKMConfig.dense_row_chunk``); it is
    ignored on the eDKM path, which never materializes dense buffers.
    """
    if uniquify_enabled:
        return edkm_cluster(weights, clusterer, reconstruct_backward)
    return clusterer.cluster_dense(weights, row_chunk=dense_row_chunk)
