"""Cross-device tensor marshaling (paper Section 2.1).

When autograd offloads a saved tensor from GPU to CPU, PyTorch-style
semantics force a fresh CPU storage per ``.to()`` call -- two views of one
GPU storage become two independent CPU copies (Table 1).  The marshaling
layer interposes on the offload: before copying, it checks whether the same
data storage has already been offloaded, and if so stores only a *reference*
to the existing host copy plus the metadata needed to rebuild the view
("the list of operations tracing back to the new tensor").

Lookup follows the paper: content hashing is assumed prohibitively
expensive, so the registry walks the forward computation graph from the new
tensor through data-storage-invariant operations (view, transpose, expand,
slice, ...) for at most ``hop_budget`` hops, looking for a tensor already
registered as offloaded.  The paper found 4 hops sufficient; an oracle
``"storage-id"`` strategy (a dict keyed on storage identity) is provided for
ablation.

The third ``"fingerprint"`` strategy tests the paper's "prohibitively
expensive" assumption with a *sampled-stride* content hash: instead of
hashing all of a storage's bytes, it hashes every Nth 64-byte block, with
the stride chosen so the sampled volume grows like ``O(sqrt(nbytes))`` and
is hard-capped by ``fingerprint_max_samples`` blocks.  Registered entries
are indexed in a ``fingerprint -> [entries]`` multimap (hashing is deferred
until the first fingerprint probe, so the other strategies pay nothing for
it); a probe hashes the incoming tensor's storage and verifies every
candidate -- storage identity first, then a full byte compare -- so a hash
collision can never alias two different tensors into one host copy.  All
three strategies thread probe-cost counters through
:class:`~repro.core.config.PipelineStats`.
"""

from __future__ import annotations

import hashlib
import math
import threading
import weakref
from collections import deque
from typing import Iterator

import numpy as np

from repro.core.config import DEFAULT_FINGERPRINT_MAX_SAMPLES, PipelineStats
from repro.distributed.collective import ShardedTensor
from repro.tensor.tensor import Tensor

FINGERPRINT_BLOCK_BYTES = 64


def fingerprint_sample_offsets(
    nbytes: int, max_samples: int = DEFAULT_FINGERPRINT_MAX_SAMPLES
) -> list[int]:
    """Byte offsets of the 64-byte blocks a fingerprint samples.

    The stride is chosen so roughly ``sqrt(nbytes)`` bytes are sampled,
    hard-capped at ``max_samples`` blocks; the final block is always
    included so tail bytes cannot change silently (evicting the last
    stride block when including it would exceed the cap).  Exposed
    separately so tests can construct deterministic collisions (two
    buffers differing only at unsampled offsets).
    """
    if nbytes <= 0:
        return []
    cap = max(1, int(max_samples))
    n_blocks = -(-nbytes // FINGERPRINT_BLOCK_BYTES)
    target = min(cap, max(1, math.isqrt(nbytes) // FINGERPRINT_BLOCK_BYTES + 1))
    stride = -(-n_blocks // target)
    blocks = list(range(0, n_blocks, stride))
    if blocks[-1] != n_blocks - 1:
        if len(blocks) >= cap:
            blocks.pop()
        blocks.append(n_blocks - 1)
    return [b * FINGERPRINT_BLOCK_BYTES for b in blocks]


def _storage_bytes(storage: object) -> np.ndarray:
    """Zero-copy uint8 view of a storage's physical buffer."""
    return np.ascontiguousarray(storage.data).view(np.uint8)


def fingerprint_storage(
    storage: object, max_samples: int = DEFAULT_FINGERPRINT_MAX_SAMPLES
) -> tuple[int, int]:
    """Sampled-stride content hash of ``storage``: ``(digest, bytes_hashed)``.

    The digest covers the sampled blocks plus the byte length and the
    storage dtype, so two storages of different sizes -- or byte-identical
    buffers holding different dtypes (a float32 ``1.0`` is bit-identical
    to an int32 ``1065353216``) -- never share a fingerprint.
    ``bytes_hashed`` is the probe-cost figure threaded into
    ``PipelineStats``.
    """
    raw = _storage_bytes(storage)
    digest = hashlib.blake2b(digest_size=8)
    hashed = 0
    for offset in fingerprint_sample_offsets(raw.size, max_samples):
        block = raw[offset : offset + FINGERPRINT_BLOCK_BYTES]
        digest.update(block.tobytes())
        hashed += int(block.size)
    digest.update(raw.size.to_bytes(8, "little"))
    digest.update(storage.dtype.name.encode())
    return int.from_bytes(digest.digest(), "little"), hashed


class OffloadEntry:
    """One offloaded source storage and its host-side copy.

    ``host_copy`` is either a whole Tensor on the host device or a
    :class:`ShardedTensor` spread across a learner group.  ``gpu_cache``
    weakly remembers the *storage* most recently reconstructed on the source
    device, so several references unpacked close together share one transfer
    back (the storage stays alive exactly as long as some unpacked tensor
    still uses it).
    """

    __slots__ = ("host_copy", "source_storage_ref", "source_device", "_gpu_cache")

    def __init__(
        self,
        host_copy: "Tensor | ShardedTensor",
        source_storage: object,
        source_device: object,
    ) -> None:
        self.host_copy = host_copy
        self.source_storage_ref = weakref.ref(source_storage)
        self.source_device = source_device
        self._gpu_cache: weakref.ReferenceType | None = None

    @property
    def is_sharded(self) -> bool:
        """Whether the host copy is spread across a learner group."""
        return isinstance(self.host_copy, ShardedTensor)

    @property
    def host_nbytes_local(self) -> int:
        """Host bytes attributable to learner 0."""
        if isinstance(self.host_copy, ShardedTensor):
            return self.host_copy.local_shard.nbytes
        return self.host_copy.nbytes

    def cache_gpu(self, tensor: Tensor) -> None:
        """Weakly remember ``tensor``'s storage as the latest source-device
        reconstruction, so nearby unpacks share one transfer back."""
        self._gpu_cache = weakref.ref(tensor.storage)

    def cached_gpu_storage(self):
        """The most recent source-device storage, or None if collected."""
        if self._gpu_cache is None:
            return None
        return self._gpu_cache()


class MarshalRegistry:
    """Tracks which tensors' storages already have host copies.

    Registration is keyed on tensor object identity (validated through a
    weak reference); lookup is by graph walk, by storage identity, or by
    content fingerprint.  A registry instance scopes one forward/backward
    step.

    The tensor-id and storage-id tables cross-reference each other's key,
    so a stale id detected on either side (the CPython allocator reuses
    addresses after garbage collection) evicts *both* slots -- a one-sided
    eviction would leave a dead counterpart that a recycled id could later
    resolve to the wrong entry.  The fingerprint multimap is populated
    lazily: ``register`` only queues the storage, and the first fingerprint
    probe drains the queue, so graph/storage-id runs never pay for hashing.
    """

    def __init__(
        self,
        fingerprint_max_samples: int = DEFAULT_FINGERPRINT_MAX_SAMPLES,
        fingerprint_dedup_content: bool = False,
    ) -> None:
        self.fingerprint_max_samples = fingerprint_max_samples
        self.fingerprint_dedup_content = fingerprint_dedup_content
        # Reentrant: public entry points lock, private helpers assume the
        # caller holds it (the repolint RL101/RL102 convention).
        self._lock = threading.RLock()
        # id(tensor) -> (tensor weakref, entry, id(storage))
        self._by_tensor_id: dict[
            int, tuple[weakref.ReferenceType, OffloadEntry, int]
        ] = {}
        # id(storage) -> (storage weakref, entry, id(tensor))
        self._by_storage_id: dict[
            int, tuple[weakref.ReferenceType, OffloadEntry, int]
        ] = {}
        # digest -> [(storage weakref, entry, version-at-register), ...]
        # (digest collisions share a slot)
        self._by_fingerprint: dict[
            int, list[tuple[weakref.ReferenceType, OffloadEntry, int]]
        ] = {}
        self._fingerprint_pending: list[
            tuple[weakref.ReferenceType, OffloadEntry, int]
        ] = []
        # id(storage) -> (storage weakref, version, digest): one hash per
        # storage version -- the miss-probe that precedes every
        # registration already computed the digest the drain needs.
        self._digest_memo: dict[int, tuple[weakref.ReferenceType, int, int]] = {}

    def register(self, tensor: Tensor, entry: OffloadEntry) -> None:
        """Record that ``tensor``'s storage now has the host copy in
        ``entry`` (indexed by tensor id, storage id, and -- lazily -- by
        content fingerprint)."""
        ref = weakref.ref(tensor)
        storage_ref = weakref.ref(tensor.storage)
        with self._lock:
            self._by_tensor_id[id(tensor)] = (ref, entry, id(tensor.storage))
            self._by_storage_id[id(tensor.storage)] = (
                storage_ref,
                entry,
                id(tensor),
            )
            self._fingerprint_pending.append(
                (storage_ref, entry, tensor.storage.version)
            )

    def clear(self) -> None:
        """Drop every index (called between steps: weights change)."""
        with self._lock:
            self._by_tensor_id.clear()
            self._by_storage_id.clear()
            self._by_fingerprint.clear()
            self._fingerprint_pending.clear()
            self._digest_memo.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_tensor_id)

    # ------------------------------------------------------------------
    # Lookup strategies
    # ------------------------------------------------------------------

    def find(
        self,
        tensor: Tensor,
        hop_budget: int,
        strategy: str,
        stats: PipelineStats | None = None,
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        """Locate an existing entry for ``tensor``'s data storage.

        Returns ``(entry, hops, op_trace)`` where ``op_trace`` names the
        storage-invariant ops connecting the found tensor back to the new
        one (the "required ops for future retrieval" of Fig. 2b).  When
        ``stats`` is given, the probe's cost and hit/miss outcome are
        recorded under the strategy's name.
        """
        with self._lock:
            if strategy == "storage-id":
                result = self._find_by_storage(tensor)
            elif strategy == "graph":
                result = self._find_by_graph(tensor, hop_budget, stats)
            elif strategy == "fingerprint":
                result = self._find_by_fingerprint(tensor, stats)
            else:
                raise ValueError(f"unknown search strategy {strategy!r}")
        if stats is not None:
            stats.record_probe(strategy, hit=result[0] is not None)
        return result

    # -- eviction (both sides, see class docstring) ---------------------

    def _evict_tensor_key(self, tensor_key: int) -> None:
        stale = self._by_tensor_id.pop(tensor_key, None)
        if stale is None:
            return
        _, entry, storage_key = stale
        counterpart = self._by_storage_id.get(storage_key)
        if counterpart is not None and counterpart[1] is entry:
            del self._by_storage_id[storage_key]

    def _evict_storage_key(self, storage_key: int) -> None:
        stale = self._by_storage_id.pop(storage_key, None)
        if stale is None:
            return
        _, entry, tensor_key = stale
        counterpart = self._by_tensor_id.get(tensor_key)
        if counterpart is not None and counterpart[1] is entry:
            del self._by_tensor_id[tensor_key]

    def _find_by_storage(
        self, tensor: Tensor
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        hit = self._by_storage_id.get(id(tensor.storage))
        if hit is None:
            return (None, 0, [])
        storage_ref, entry, _ = hit
        if storage_ref() is not tensor.storage:
            # Stale id reuse after garbage collection.
            self._evict_storage_key(id(tensor.storage))
            return (None, 0, [])
        return (entry, 0, [])

    # -- fingerprint ----------------------------------------------------

    def _fingerprint_digest(self, storage: object, stats: PipelineStats | None) -> int:
        """The storage's digest, hashed at most once per storage version."""
        memo = self._digest_memo.get(id(storage))
        if memo is not None:
            memo_ref, memo_version, memo_digest = memo
            if memo_ref() is storage and memo_version == storage.version:
                return memo_digest
        digest, hashed = fingerprint_storage(storage, self.fingerprint_max_samples)
        if stats is not None:
            stats.fingerprint_bytes_hashed += hashed
        self._digest_memo[id(storage)] = (
            weakref.ref(storage),
            storage.version,
            digest,
        )
        return digest

    def _drain_fingerprint_pending(self, stats: PipelineStats | None) -> None:
        if not self._fingerprint_pending:
            return
        pending, self._fingerprint_pending = self._fingerprint_pending, []
        for storage_ref, entry, version in pending:
            storage = storage_ref()
            # Skip storages written in place since registration: the entry's
            # host snapshot holds the pre-write bytes, so indexing the
            # *current* bytes would let a later identity probe serve the
            # stale snapshot.  Dropping the entry makes such probes miss --
            # the conservative behavior the strategy documents.
            if storage is None or storage.version != version:
                continue
            digest = self._fingerprint_digest(storage, stats)
            self._by_fingerprint.setdefault(digest, []).append(
                (storage_ref, entry, version)
            )

    def _find_by_fingerprint(
        self, tensor: Tensor, stats: PipelineStats | None = None
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        """Probe the content index; verify candidates before trusting them.

        Storage identity is checked first (free); a digest match alone is
        never trusted.  With ``fingerprint_dedup_content`` enabled,
        non-identity candidates are confirmed with a full byte compare --
        the collision backstop that keeps a 64-bit (and deliberately
        *partial*) hash from aliasing two different tensors into one host
        copy -- and a *verified* byte-identical storage may then share the
        host copy (safe: the host snapshot is immutable for the step and
        unpack rebuilds views from payload metadata only).  With it
        disabled (the default) a hit requires the identical storage, so
        the dedup set matches the ``storage-id`` oracle exactly for
        storages left unmutated within the step, and colliding digests
        simply miss.  (A storage written in place after registration gets
        a new digest, so the fingerprint conservatively misses where the
        oracle would serve its stale pre-write snapshot.)

        A content hit additionally requires the candidate storage's
        version counter to still equal its value at registration: unpack
        serves the host snapshot taken *then*, so if the source storage
        was mutated in place afterwards, its current bytes no longer
        vouch for the snapshot and the candidate is skipped.  (Identity
        hits keep the step-scoped immutability contract every strategy
        shares -- the registry is cleared between steps precisely because
        weights change.)
        """
        self._drain_fingerprint_pending(stats)
        target = tensor.storage
        digest = self._fingerprint_digest(target, stats)
        bucket = self._by_fingerprint.get(digest)
        if not bucket:
            return (None, 0, [])
        live = [item for item in bucket if item[0]() is not None]
        if len(live) != len(bucket):
            if live:
                self._by_fingerprint[digest] = live
            else:
                del self._by_fingerprint[digest]
                return (None, 0, [])
        for storage_ref, entry, version in live:
            if storage_ref() is target:
                # A write at an *unsampled* offset leaves the digest
                # unchanged, so the version check is what keeps the
                # conservative-miss guarantee deterministic rather than
                # dependent on which byte was written.
                if target.version != version:
                    continue
                return (entry, 0, [])
        if not self.fingerprint_dedup_content:
            return (None, 0, [])
        target_raw = _storage_bytes(target)
        for storage_ref, entry, version in live:
            candidate = storage_ref()
            # The dtype check is belt-and-braces (the digest already keys
            # on dtype): equal bytes under different dtypes are different
            # tensors, and unpack would reinterpret the host copy's buffer.
            if (
                candidate is None
                or candidate.version != version
                or candidate.nbytes != target.nbytes
                or candidate.dtype.name != target.dtype.name
            ):
                continue
            if stats is not None:
                # Physical buffer bytes, matching what np.array_equal walks
                # (a bf16 storage's float32 buffer is 2x its logical nbytes)
                # and the unit fingerprint_bytes_hashed counts in.
                stats.fingerprint_bytes_compared += int(target_raw.size)
            if np.array_equal(_storage_bytes(candidate), target_raw):
                return (entry, 0, ["content-equal"])
            if stats is not None:
                stats.fingerprint_collisions += 1
        return (None, 0, [])

    def _find_by_graph(
        self, tensor: Tensor, hop_budget: int, stats: PipelineStats | None = None
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        """BFS over the forward graph through storage-invariant ops.

        The walk alternates between tensors and graph *nodes* so that it can
        traverse chains whose intermediate tensors have been garbage
        collected (the autograd nodes persist, as in PyTorch): entering a
        node costs one hop; stepping from a node to any of its live endpoint
        tensors is free; stepping node-to-node through a dead intermediate
        costs one hop per op.
        """
        visited: set[int] = {id(tensor)}
        # Items are (tensor-or-node, hops, op-name trace).  A deque keeps the
        # BFS pop O(1); list.pop(0) made the walk O(n^2) in frontier size.
        frontier: deque[tuple[object, int, list[str]]] = deque([(tensor, 0, [])])
        while frontier:
            current, hops, trace = frontier.popleft()
            if stats is not None:
                stats.graph_nodes_visited += 1
            if isinstance(current, Tensor):
                entry = self._lookup_tensor(current)
                if entry is not None and current.storage is tensor.storage:
                    return (entry, hops, trace)
                if hops >= hop_budget:
                    continue
                for node in _adjacent_view_nodes(current):
                    if id(node) not in visited:
                        visited.add(id(node))
                        frontier.append((node, hops + 1, trace + [node.op_name]))
            else:
                node = current
                for endpoint in _node_endpoint_tensors(node):
                    if id(endpoint) not in visited:
                        visited.add(id(endpoint))
                        frontier.append((endpoint, hops, trace))
                if hops >= hop_budget:
                    continue
                for kind, target in node.edges:
                    if (
                        kind == "node"
                        and target.storage_invariant
                        and id(target) not in visited
                    ):
                        visited.add(id(target))
                        frontier.append(
                            (target, hops + 1, trace + [target.op_name])
                        )
        return (None, 0, [])

    def _lookup_tensor(self, tensor: Tensor) -> OffloadEntry | None:
        hit = self._by_tensor_id.get(id(tensor))
        if hit is None:
            return None
        ref, entry, _ = hit
        if ref() is not tensor:
            self._evict_tensor_key(id(tensor))
            return None
        return entry


def _adjacent_view_nodes(tensor: Tensor) -> Iterator[object]:
    """Storage-invariant nodes touching ``tensor`` (producer and consumers)."""
    node = tensor.grad_fn
    if node is not None and node.storage_invariant:
        yield node
    for node_ref in tensor.consumers or []:
        consumer = node_ref()
        if consumer is not None and consumer.storage_invariant:
            yield consumer


def _node_endpoint_tensors(node: object) -> Iterator[Tensor]:
    """Live tensors at either end of a graph node."""
    output_ref = getattr(node, "output_ref", None)
    if output_ref is not None:
        output = output_ref()
        if output is not None:
            yield output
    for ref in getattr(node, "input_refs", []):
        tensor = ref() if ref is not None else None
        if tensor is not None:
            yield tensor
