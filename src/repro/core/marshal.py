"""Cross-device tensor marshaling (paper Section 2.1).

When autograd offloads a saved tensor from GPU to CPU, PyTorch-style
semantics force a fresh CPU storage per ``.to()`` call -- two views of one
GPU storage become two independent CPU copies (Table 1).  The marshaling
layer interposes on the offload: before copying, it checks whether the same
data storage has already been offloaded, and if so stores only a *reference*
to the existing host copy plus the metadata needed to rebuild the view
("the list of operations tracing back to the new tensor").

Lookup follows the paper: content hashing is assumed prohibitively
expensive, so the registry walks the forward computation graph from the new
tensor through data-storage-invariant operations (view, transpose, expand,
slice, ...) for at most ``hop_budget`` hops, looking for a tensor already
registered as offloaded.  The paper found 4 hops sufficient; an oracle
``"storage-id"`` strategy (a dict keyed on storage identity) is provided for
ablation.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Iterator

from repro.core.config import PipelineStats
from repro.distributed.collective import ShardedTensor
from repro.tensor.tensor import Tensor


class OffloadEntry:
    """One offloaded source storage and its host-side copy.

    ``host_copy`` is either a whole Tensor on the host device or a
    :class:`ShardedTensor` spread across a learner group.  ``gpu_cache``
    weakly remembers the *storage* most recently reconstructed on the source
    device, so several references unpacked close together share one transfer
    back (the storage stays alive exactly as long as some unpacked tensor
    still uses it).
    """

    __slots__ = ("host_copy", "source_storage_ref", "source_device", "_gpu_cache")

    def __init__(
        self,
        host_copy: "Tensor | ShardedTensor",
        source_storage: object,
        source_device: object,
    ) -> None:
        self.host_copy = host_copy
        self.source_storage_ref = weakref.ref(source_storage)
        self.source_device = source_device
        self._gpu_cache: weakref.ReferenceType | None = None

    @property
    def is_sharded(self) -> bool:
        return isinstance(self.host_copy, ShardedTensor)

    @property
    def host_nbytes_local(self) -> int:
        """Host bytes attributable to learner 0."""
        if isinstance(self.host_copy, ShardedTensor):
            return self.host_copy.local_shard.nbytes
        return self.host_copy.nbytes

    def cache_gpu(self, tensor: Tensor) -> None:
        self._gpu_cache = weakref.ref(tensor.storage)

    def cached_gpu_storage(self):
        if self._gpu_cache is None:
            return None
        return self._gpu_cache()


class MarshalRegistry:
    """Tracks which tensors' storages already have host copies.

    Registration is keyed on tensor object identity (validated through a
    weak reference); lookup is by graph walk or by storage identity.  A
    registry instance scopes one forward/backward step.
    """

    def __init__(self) -> None:
        self._by_tensor_id: dict[int, tuple[weakref.ReferenceType, OffloadEntry]] = {}
        self._by_storage_id: dict[int, tuple[weakref.ReferenceType, OffloadEntry]] = {}

    def register(self, tensor: Tensor, entry: OffloadEntry) -> None:
        ref = weakref.ref(tensor)
        self._by_tensor_id[id(tensor)] = (ref, entry)
        storage_ref = weakref.ref(tensor.storage)
        self._by_storage_id[id(tensor.storage)] = (storage_ref, entry)

    def clear(self) -> None:
        self._by_tensor_id.clear()
        self._by_storage_id.clear()

    def __len__(self) -> int:
        return len(self._by_tensor_id)

    # ------------------------------------------------------------------
    # Lookup strategies
    # ------------------------------------------------------------------

    def find(
        self,
        tensor: Tensor,
        hop_budget: int,
        strategy: str,
        stats: PipelineStats | None = None,
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        """Locate an existing entry for ``tensor``'s data storage.

        Returns ``(entry, hops, op_trace)`` where ``op_trace`` names the
        storage-invariant ops connecting the found tensor back to the new
        one (the "required ops for future retrieval" of Fig. 2b).
        """
        if strategy == "storage-id":
            return self._find_by_storage(tensor)
        if strategy == "graph":
            return self._find_by_graph(tensor, hop_budget)
        raise ValueError(f"unknown search strategy {strategy!r}")

    def _find_by_storage(
        self, tensor: Tensor
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        hit = self._by_storage_id.get(id(tensor.storage))
        if hit is None:
            return (None, 0, [])
        storage_ref, entry = hit
        if storage_ref() is not tensor.storage:
            # Stale id reuse after garbage collection.
            del self._by_storage_id[id(tensor.storage)]
            return (None, 0, [])
        return (entry, 0, [])

    def _find_by_graph(
        self, tensor: Tensor, hop_budget: int
    ) -> tuple[OffloadEntry | None, int, list[str]]:
        """BFS over the forward graph through storage-invariant ops.

        The walk alternates between tensors and graph *nodes* so that it can
        traverse chains whose intermediate tensors have been garbage
        collected (the autograd nodes persist, as in PyTorch): entering a
        node costs one hop; stepping from a node to any of its live endpoint
        tensors is free; stepping node-to-node through a dead intermediate
        costs one hop per op.
        """
        visited: set[int] = {id(tensor)}
        # Items are (tensor-or-node, hops, op-name trace).  A deque keeps the
        # BFS pop O(1); list.pop(0) made the walk O(n^2) in frontier size.
        frontier: deque[tuple[object, int, list[str]]] = deque([(tensor, 0, [])])
        while frontier:
            current, hops, trace = frontier.popleft()
            if isinstance(current, Tensor):
                entry = self._lookup_tensor(current)
                if entry is not None and current.storage is tensor.storage:
                    return (entry, hops, trace)
                if hops >= hop_budget:
                    continue
                for node in _adjacent_view_nodes(current):
                    if id(node) not in visited:
                        visited.add(id(node))
                        frontier.append((node, hops + 1, trace + [node.op_name]))
            else:
                node = current
                for endpoint in _node_endpoint_tensors(node):
                    if id(endpoint) not in visited:
                        visited.add(id(endpoint))
                        frontier.append((endpoint, hops, trace))
                if hops >= hop_budget:
                    continue
                for kind, target in node.edges:
                    if (
                        kind == "node"
                        and target.storage_invariant
                        and id(target) not in visited
                    ):
                        visited.add(id(target))
                        frontier.append(
                            (target, hops + 1, trace + [target.op_name])
                        )
        return (None, 0, [])

    def _lookup_tensor(self, tensor: Tensor) -> OffloadEntry | None:
        hit = self._by_tensor_id.get(id(tensor))
        if hit is None:
            return None
        ref, entry = hit
        if ref() is not tensor:
            del self._by_tensor_id[id(tensor)]
            return None
        return entry


def _adjacent_view_nodes(tensor: Tensor) -> Iterator[object]:
    """Storage-invariant nodes touching ``tensor`` (producer and consumers)."""
    node = tensor.grad_fn
    if node is not None and node.storage_invariant:
        yield node
    for node_ref in tensor.consumers or []:
        consumer = node_ref()
        if consumer is not None and consumer.storage_invariant:
            yield consumer


def _node_endpoint_tensors(node: object) -> Iterator[Tensor]:
    """Live tensors at either end of a graph node."""
    output_ref = getattr(node, "output_ref", None)
    if output_ref is not None:
        output = output_ref()
        if output is not None:
            yield output
    for ref in getattr(node, "input_refs", []):
        tensor = ref() if ref is not None else None
        if tensor is not None:
            yield tensor
