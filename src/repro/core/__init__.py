"""eDKM core: differentiable weight clustering plus the memory pipeline.

Public surface:

- :class:`DKMConfig` / :class:`EDKMConfig` -- algorithm and memory-pipeline
  configuration (the M/U/S toggles of the paper's Table 2).
- :class:`DKMClusterer` -- differentiable k-means with the dense (original
  DKM) assignment path.
- :func:`edkm_cluster` / :class:`EDKMClusterAssign` -- the memory-efficient
  unique-space assignment (paper Section 2.2).
- :class:`SavedTensorPipeline` -- saved-tensor offloading with cross-device
  marshaling and sharding (paper Section 2.1).
- :class:`ModelCompressor` / :class:`ClusteredLinear` -- model-level
  train-time compression and palettization, with serial / thread-pool /
  process-pool per-layer backends configured by :class:`CompressorConfig`
  (the process backend ships zero-copy shared-memory weight views to its
  workers via :class:`ProcessLayerEngine`).
- :class:`FaultPlan` / :class:`FaultInjector` plus the checkpoint layer
  (:func:`write_checkpoint` / :func:`load_checkpoint`) -- the robustness
  surface: deterministic chaos injection, watchdog/retry/quarantine
  recovery, crash-safe checkpoint/resume, and graceful backend
  degradation (see ``docs/robustness.md``).
"""

from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorrupt,
    CheckpointError,
    load_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.config import (
    AFFINITY_MODES,
    BACKENDS,
    CompressorConfig,
    DKMConfig,
    EDKMConfig,
    PipelineStats,
    get_default_compressor_config,
    get_default_dkm_config,
)
from repro.core.faults import (
    FAULT_KINDS,
    CorruptPayload,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultSpec,
    PoolExhausted,
    RobustnessWarning,
    TransientWorkerError,
    WatchdogTimeout,
)
from repro.core.compressor import (
    ClusteredLinear,
    CompressionReport,
    LayerClusterResult,
    ModelCompressor,
    SWEEP_OPS,
    dequantized_state,
    palettize_op,
    parallel_layer_map,
    precluster_op,
    refine_op,
)
from repro.core.procpool import (
    AffinityMap,
    LayerDelta,
    LayerOutcome,
    LayerTask,
    ProcessLayerEngine,
    TransportStats,
    WorkerCacheRegistry,
)
from repro.core.dkm import (
    ClusterState,
    DKMClusterer,
    default_temperature,
    init_centroids_quantile,
)
from repro.core.edkm import EDKMClusterAssign, cluster, edkm_cluster
from repro.core.fastpath import FastPathReport, FastPathStats, StepCache
from repro.core.marshal import (
    FINGERPRINT_BLOCK_BYTES,
    MarshalRegistry,
    OffloadEntry,
    fingerprint_sample_offsets,
    fingerprint_storage,
)
from repro.core.offload import SavedPayload, SavedTensorPipeline
from repro.core.palettize import (
    PalettizedTensor,
    kmeans_palettize,
    pack_indices,
    unpack_indices,
)
from repro.core.uniquify import (
    HISTOGRAM_MIN_SIZE,
    MAX_UNIQUE_16BIT,
    UniquifiedWeights,
    attention_table,
    dense_attention_map,
    index_dtype_for,
    reconstruct_attention_map,
    reset_uniquify_call_count,
    uniquify,
    uniquify_call_count,
)

__all__ = [
    "AFFINITY_MODES",
    "BACKENDS",
    "CHECKPOINT_VERSION",
    "CheckpointCorrupt",
    "CheckpointError",
    "load_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
    "FAULT_KINDS",
    "CorruptPayload",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "PoolExhausted",
    "RobustnessWarning",
    "TransientWorkerError",
    "WatchdogTimeout",
    "CompressorConfig",
    "DKMConfig",
    "EDKMConfig",
    "PipelineStats",
    "get_default_compressor_config",
    "get_default_dkm_config",
    "ClusteredLinear",
    "CompressionReport",
    "LayerClusterResult",
    "ModelCompressor",
    "SWEEP_OPS",
    "dequantized_state",
    "palettize_op",
    "parallel_layer_map",
    "precluster_op",
    "refine_op",
    "AffinityMap",
    "LayerDelta",
    "LayerOutcome",
    "LayerTask",
    "ProcessLayerEngine",
    "TransportStats",
    "WorkerCacheRegistry",
    "ClusterState",
    "DKMClusterer",
    "default_temperature",
    "init_centroids_quantile",
    "EDKMClusterAssign",
    "cluster",
    "edkm_cluster",
    "FastPathReport",
    "FastPathStats",
    "StepCache",
    "FINGERPRINT_BLOCK_BYTES",
    "MarshalRegistry",
    "OffloadEntry",
    "fingerprint_sample_offsets",
    "fingerprint_storage",
    "SavedPayload",
    "SavedTensorPipeline",
    "PalettizedTensor",
    "kmeans_palettize",
    "pack_indices",
    "unpack_indices",
    "HISTOGRAM_MIN_SIZE",
    "MAX_UNIQUE_16BIT",
    "UniquifiedWeights",
    "attention_table",
    "dense_attention_map",
    "index_dtype_for",
    "reconstruct_attention_map",
    "reset_uniquify_call_count",
    "uniquify",
    "uniquify_call_count",
]
