"""Process-pool execution backend for the per-layer compression engine.

The thread backend (:func:`repro.core.compressor.parallel_layer_map`) only
overlaps the GIL-releasing numpy kernels; on many-layer models the
Python-side op dispatch still serializes.  This module fans the engine's
no-grad sweeps (``refine`` / ``precluster`` / ``palettize``) out over
process workers instead, which overlaps dispatch as well -- the
"Process-pool fan-out" item of the roadmap -- and, in its default
``"sticky"`` affinity mode, keeps each layer's heavy derived state
*resident in its worker* across sweeps -- the "Persistent worker
affinity" item.

Two scheduling modes share one engine (``CompressorConfig.affinity``):

- **Sticky** (default).  An :class:`AffinityMap` pins every layer to one
  worker slot through a stable content hash over the layer's name, taken
  in layer insertion order and rebalanced only when the pool is resized.
  Each slot is a single-worker pool, so a layer's tasks always land in
  the same process, where a :class:`WorkerCacheRegistry` keeps the
  layer's :class:`WorkerStepCache` -- its
  :class:`~repro.core.dkm.DKMClusterer` (step cache, uniquify products,
  carried attention table) plus a long-lived shared-memory lease --
  alive between sweeps.  Once a layer is synced, the parent ships an
  ``O(k)`` :class:`LayerDelta` (storage version, cluster state, config
  epoch, warm token) instead of a full task, and warm sweeps skip the
  worker-side re-uniquify entirely.  Workers ship back outcomes plus
  :class:`~repro.core.fastpath.FastPathStats` counter *deltas* that the
  parent folds into its phantom-entry accounting, so hit/miss counters
  stay bit-identical to the serial sweep.
- **Chunked**.  The stateless task pool of the original backend: layers
  are grouped into ``CompressorConfig.resolve_task_chunk`` batches, each
  task re-ships the full :class:`LayerTask` (handle + config + state),
  and worker-side products die with the task.

Three design rules keep both modes bit-identical to the serial sweep:

- **Shared-memory weights.**  Each layer's weight storage is exported
  once into a ``multiprocessing.shared_memory`` block (the only byte
  copy); workers rebuild a zero-copy strided view from a tiny picklable
  :class:`~repro.tensor.serialization.ShmTensorHandle`.  Exports are
  keyed on (storage identity, version), so an optimizer step in the
  parent invalidates and re-exports exactly the layers it wrote -- and,
  under sticky affinity, demotes exactly those layers back to full
  shipping.
- **Deterministic merge.**  Outcomes are gathered in layer insertion
  order; per-layer clustering is a pure function of (weight bytes, prior
  state, config), so centroids, assignments, carried attention tables,
  and counter deltas merge back bit-identical to the serial sweep no
  matter how the pool interleaves.
- **Invalidation protocol.**  The parent tracks per-layer sync records
  (slot, block name, storage version, config epoch) and only ships a
  delta when every field still matches; workers defensively re-validate
  and raise :class:`StaleWorkerCache` on any mismatch, which -- like a
  worker crash (``BrokenExecutor``) -- makes the parent re-ship the
  slot's layers as full tasks (respawning the worker first if it died).
  Every transport decision is observable through the engine's
  :class:`TransportStats`.

Worker lifecycle: pools are spawn-safe (workers receive only picklable
task specs and import the codebase fresh under the default ``"spawn"``
context), lazily created on the first sweep, reused across sweeps, and
torn down -- together with every exported block -- by
:meth:`ProcessLayerEngine.close`, by :meth:`ProcessLayerEngine.reset` on
any sweep error, or by a ``weakref.finalize`` safety net if the engine is
garbage collected first.  A reset also drops every sync record, so the
sweep after an error re-exports and re-ships everything instead of
trusting stale ``(storage, version)`` keys.  Cleanup is verifiable:
:meth:`ProcessLayerEngine.active_shm_names` lists the live blocks, and
attaching to any of them after ``close()`` raises ``FileNotFoundError``.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import struct
import threading
import time
import warnings
import weakref
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeout,
    wait as futures_wait,
)
from dataclasses import dataclass, replace
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.core.config import CompressorConfig, DKMConfig
from repro.core.dkm import ClusterState, DKMClusterer
from repro.core.fastpath import FastPathStats
from repro.core.faults import (
    CorruptPayload,
    FaultDirective,
    FaultInjector,
    FaultLog,
    PoolExhausted,
    RobustnessWarning,
    TransientWorkerError,
    WatchdogTimeout,
    apply_directive,
    corrupted_state,
)
from repro.tensor.serialization import (
    ShmExport,
    ShmLease,
    ShmLeaseRegistry,
    ShmLost,
    ShmTensorHandle,
    attach_tensor_shm,
    export_tensor_shm,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tensor.tensor import Tensor


class StaleWorkerCache(RuntimeError):
    """A delta task reached a worker whose resident cache cannot apply it.

    Raised worker-side when a :class:`LayerDelta` names a layer the
    worker does not hold, or holds at a different config epoch / storage
    version (e.g. after a respawn the parent has not noticed).  The
    parent reacts by re-shipping the slot's layers as full tasks --
    correctness never depends on the parent's sync records being right,
    they are purely a bytes optimization.
    """


@dataclass
class LayerTask:
    """One layer's worth of *full* work shipped to a pool worker.

    Everything here pickles small: the shm handle is O(metadata), the
    cluster state is ``O(k)`` floats, and ``warm`` is the one-bit token
    telling the worker its first uniquify is logically a cache hit (the
    parent's step cache already covers these exact weight bytes), so the
    merged hit/miss counters match the serial sweep exactly.  ``epoch``
    tags the (handle, config) generation this task installs; later
    :class:`LayerDelta` shipments must quote it back.
    """

    name: str
    handle: ShmTensorHandle
    dkm_config: DKMConfig
    state: ClusterState | None
    warm: bool
    epoch: int = 0
    fault: FaultDirective | None = None


@dataclass
class LayerDelta:
    """The ``O(k)`` per-sweep shipment for a layer already resident.

    Replaces a full :class:`LayerTask` under sticky affinity once the
    worker holds the layer: no shm handle (the worker's pinned lease is
    still valid -- ``version`` proves the storage was not rewritten), no
    config (``epoch`` proves the resident one is current), just the
    mutable cluster state the parent may have advanced between sweeps
    plus the warm token.  Strictly fewer pickled bytes than the full
    task it stands in for.  ``digest`` is a blake2b integrity tag over
    the payload (see :func:`delta_digest`); the worker refuses to apply
    a delta whose content no longer matches it
    (:class:`~repro.core.faults.CorruptPayload`), making wire corruption
    a recoverable re-ship instead of silent state divergence.
    """

    name: str
    version: int
    epoch: int
    state: ClusterState | None
    warm: bool
    digest: str | None = None
    fault: FaultDirective | None = None


def delta_digest(
    name: str,
    version: int,
    epoch: int,
    warm: bool,
    state: "ClusterState | None",
) -> str:
    """Blake2b integrity tag over a :class:`LayerDelta`'s payload.

    Computed parent-side at build time and re-computed worker-side before
    the delta is applied; covers every field that influences the worker's
    resulting state (identity, version, epoch, warm token, and the exact
    centroid/temperature/iteration bytes).  Cheap -- ``O(k)`` bytes per
    layer per sweep -- and deterministic across processes.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(f"{name}|{version}|{epoch}|{int(warm)}".encode("utf-8"))
    if state is not None:
        hasher.update(
            np.ascontiguousarray(state.centroids, dtype=np.float32).tobytes()
        )
        hasher.update(struct.pack("<d", float(state.temperature)))
        hasher.update(struct.pack("<q", int(state.iterations_run)))
    return hasher.hexdigest()


@dataclass
class LayerOutcome:
    """What a worker sends home for one layer.

    ``result`` is the op's return value (a ``ClusterState`` snapshot, a
    ``LayerClusterResult``, or a ``PalettizedTensor``); ``state`` is the
    worker clusterer's final state, assigned back onto the parent layer;
    ``stats`` holds the worker cache's counter deltas for exactly this
    task; ``table`` carries the refine->forward attention table
    (``(centroids, temperature, table)``), or ``None`` when the worker
    already shipped the identical table object (the parent keeps its
    parked copy).
    """

    name: str
    result: Any
    state: ClusterState | None
    stats: FastPathStats
    table: "tuple[np.ndarray, float, np.ndarray] | None"


@dataclass
class TransportStats:
    """Parent-side accounting of what the engine ships per sweep.

    ``bytes_shipped`` counts the pickled task payloads (the direction
    affinity changes; outcome payloads are identical across modes).  The
    ``last_sweep_*`` fields reset at every :meth:`begin_sweep`, so the
    affinity benchmark can compare a warm sticky sweep against a warm
    chunked sweep directly.  Accounting re-pickles each batch once; task
    payloads are deliberately tiny (O(metadata) handles, ``O(k)`` states
    and deltas -- never weight bytes), so this costs microseconds per
    sweep and buys an always-on, assertable transport measurement.
    """

    sweeps: int = 0
    tasks_shipped: int = 0
    full_tasks: int = 0
    delta_tasks: int = 0
    bytes_shipped: int = 0
    last_sweep_bytes: int = 0
    last_sweep_full_tasks: int = 0
    last_sweep_delta_tasks: int = 0

    def begin_sweep(self) -> None:
        """Open a new per-sweep accounting window."""
        self.sweeps += 1
        self.last_sweep_bytes = 0
        self.last_sweep_full_tasks = 0
        self.last_sweep_delta_tasks = 0

    def record_batch(self, tasks: "Sequence[LayerTask | LayerDelta]") -> None:
        """Charge one submitted batch (pickled size + task-kind counts)."""
        nbytes = len(pickle.dumps(list(tasks), protocol=pickle.HIGHEST_PROTOCOL))
        full = sum(1 for task in tasks if isinstance(task, LayerTask))
        delta = len(tasks) - full
        self.tasks_shipped += len(tasks)
        self.full_tasks += full
        self.delta_tasks += delta
        self.bytes_shipped += nbytes
        self.last_sweep_bytes += nbytes
        self.last_sweep_full_tasks += full
        self.last_sweep_delta_tasks += delta


def _stable_slot_hash(name: str) -> int:
    """Process- and run-stable integer hash of a layer name.

    ``blake2b`` rather than ``hash()``: the builtin is salted per
    interpreter, and the pinning map must be identical across runs and
    across the parent/worker boundary for the affinity tests to mean
    anything.
    """
    return int.from_bytes(
        hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class AffinityMap:
    """Deterministic layer -> worker-slot pinning for the sticky mode.

    Built once per (layer list, pool width) and recomputed only when
    either changes -- "rebalanced only on pool resize".  Each layer's
    preferred slot is a stable content hash of its name; layers are
    placed in insertion order and overflow to the next slot with spare
    capacity, so the map is balanced (no slot exceeds
    ``ceil(n_layers / n_workers)``) while staying a pure function of
    (names, n_workers): two engines over the same model always agree.
    """

    names: tuple[str, ...]
    n_workers: int
    pins: dict[str, int]

    @classmethod
    def build(cls, names: Sequence[str], n_workers: int) -> "AffinityMap":
        """Pin ``names`` (in order) onto ``n_workers`` slots, balanced."""
        names = tuple(names)
        n_workers = max(1, int(n_workers))
        capacity = -(-len(names) // n_workers) if names else 0
        load = [0] * n_workers
        pins: dict[str, int] = {}
        for name in names:
            preferred = _stable_slot_hash(name) % n_workers
            for probe in range(n_workers):
                slot = (preferred + probe) % n_workers
                if load[slot] < capacity:
                    pins[name] = slot
                    load[slot] += 1
                    break
        return cls(names=names, n_workers=n_workers, pins=pins)

    def layers_for(self, slot: int) -> list[str]:
        """The layer names pinned to ``slot``, in insertion order."""
        return [name for name in self.names if self.pins[name] == slot]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass
class WorkerStepCache:
    """One pinned layer's worker-resident state.

    The clusterer owns the layer's :class:`~repro.core.fastpath.
    StepCache` (uniquify products, carried attention table, counters);
    the lease keeps the layer's shared-memory weight view mapped between
    sweeps.  ``epoch`` is the (handle, config) generation the entry was
    installed at -- a delta quoting a different epoch is stale.
    ``shipped_table`` remembers the exact table object last sent home so
    unchanged tables are not re-pickled every sweep.
    """

    clusterer: DKMClusterer
    lease: ShmLease
    handle: ShmTensorHandle
    epoch: int
    tick: int = 0
    shipped_table: "np.ndarray | None" = None


class WorkerCacheRegistry:
    """Per-worker registry of resident layer caches (sticky affinity).

    Lives as a process-global in each pool worker (one registry per
    worker process); the parent never touches it.  ``run`` executes one
    task -- installing or resuming the layer's :class:`WorkerStepCache`
    -- and returns the outcome with *delta* counters, snapshotting the
    resident cache's stats around the op so cumulative worker-local
    counters never double-count in the parent's merge.

    ``bytes_limit`` (``CompressorConfig.worker_cache_bytes_limit``)
    bounds the resident products: when the registry exceeds it, the
    least-recently-used layers' uniquify products and tables are evicted
    down to *phantom* entries (:meth:`~repro.core.fastpath.StepCache.
    evict_products`), which preserves hit/miss semantics and merely costs
    a recompute on next use.
    """

    def __init__(self) -> None:
        # Workers are single-threaded today, but the registry is also
        # driven in-process by tests and the in-line fallback path;
        # reentrant so locked public methods may call each other.
        self._lock = threading.RLock()
        self._entries: dict[str, WorkerStepCache] = {}
        self._leases = ShmLeaseRegistry()
        self._clock = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def run(
        self,
        fn,
        task: "LayerTask | LayerDelta",
        kwargs: dict,
        bytes_limit: int = 0,
    ) -> LayerOutcome:
        """Execute one sweep op against the (installed or resident) layer."""
        with self._lock:
            self._clock += 1
            apply_directive(task.fault)
            if isinstance(task, LayerDelta):
                entry = self._resume(task)
            else:
                entry = self._install(task)
            entry.tick = self._clock
            clusterer = entry.clusterer
            tensor = entry.lease.tensor
            assert tensor is not None  # the registry never holds closed leases
            before = clusterer.fastpath.stats.merge(FastPathStats())
            result = fn(clusterer, tensor, **kwargs)
            stats = clusterer.fastpath.stats.diff(before)
            peeked = clusterer.fastpath.peek_table()
            table = None
            if peeked is not None and peeked[2] is not entry.shipped_table:
                table = peeked
                entry.shipped_table = peeked[2]
            outcome = LayerOutcome(
                name=task.name,
                result=result,
                state=clusterer.state,
                stats=stats,
                table=table,
            )
            if bytes_limit > 0:
                self.enforce_limit(bytes_limit)
            return outcome

    def _install(self, task: LayerTask) -> WorkerStepCache:
        """(Re)build the layer's entry from a full task."""
        lease = self._leases.acquire(task.name, task.handle)
        clusterer = DKMClusterer(task.dkm_config)
        clusterer.state = task.state
        if task.warm:
            clusterer.fastpath.mark_computed(
                lease.tensor, task.dkm_config.weight_dtype
            )
        entry = WorkerStepCache(
            clusterer=clusterer, lease=lease, handle=task.handle, epoch=task.epoch
        )
        self._entries[task.name] = entry
        return entry

    def _resume(self, task: LayerDelta) -> WorkerStepCache:
        """Validate and refresh the resident entry a delta addresses."""
        if task.digest is not None and task.digest != delta_digest(
            task.name, task.version, task.epoch, task.warm, task.state
        ):
            raise CorruptPayload(task.name)
        entry = self._entries.get(task.name)
        if entry is None:
            raise StaleWorkerCache(f"layer {task.name!r} not resident in worker")
        if entry.epoch != task.epoch:
            raise StaleWorkerCache(
                f"layer {task.name!r}: resident epoch {entry.epoch} != "
                f"delta epoch {task.epoch}"
            )
        if entry.handle.version != task.version:
            raise StaleWorkerCache(
                f"layer {task.name!r}: resident storage version "
                f"{entry.handle.version} != delta version {task.version}"
            )
        clusterer = entry.clusterer
        clusterer.state = task.state
        if task.warm:
            clusterer.fastpath.mark_computed(
                entry.lease.tensor, clusterer.config.weight_dtype
            )
        else:
            # The parent dropped its entry (release_step_caches or an
            # explicit invalidate): mirror the serial miss-and-recompute.
            clusterer.fastpath.invalidate()
        return entry

    def prune(self, retain: "Sequence[str]") -> None:
        """Drop every entry (and its pinned lease) not named in ``retain``.

        The parent sends each batch with the slot's *current* pinned
        layer set, so a layer re-pinned elsewhere -- or removed from the
        model -- releases its worker-side cache and shm mapping on the
        old worker's next batch instead of lingering for the engine's
        lifetime.
        """
        keep = set(retain)
        with self._lock:
            for name in [n for n in self._entries if n not in keep]:
                del self._entries[name]
                self._leases.release(name)

    def reconcile(self, gossip: "dict[str, tuple[str, int, int]]") -> None:
        """Converge residency on the coordinator's gossiped sync view.

        ``gossip`` maps layer name to the ``(shm_name, storage version,
        epoch)`` triple the coordinator believes this worker holds.  Two
        kinds of divergence are repaired: entries absent from the gossip
        are pruned (the layer was re-pinned or removed -- same contract
        as :meth:`prune`), and entries whose resident triple contradicts
        the gossip are dropped so a later delta addressed to them raises
        :class:`StaleWorkerCache` instead of resuming from a stale cache.
        Used by the sharded cluster scheduler, which gossips every node's
        expected ``(storage, version)`` state once per sweep.
        """
        with self._lock:
            for name in [n for n in self._entries if n not in gossip]:
                del self._entries[name]
                self._leases.release(name)
            for name, (shm_name, version, epoch) in gossip.items():
                entry = self._entries.get(name)
                if entry is None:
                    continue
                resident = (entry.handle.shm_name, entry.handle.version, entry.epoch)
                if resident != (shm_name, version, epoch):
                    del self._entries[name]
                    self._leases.release(name)

    def resident_bytes(self) -> int:
        """Total resident product bytes across all entries."""
        with self._lock:
            return sum(
                entry.clusterer.fastpath.resident_bytes()
                for entry in self._entries.values()
            )

    def enforce_limit(self, bytes_limit: int) -> None:
        """Evict LRU layers' products until at or under ``bytes_limit``."""
        with self._lock:
            total = self.resident_bytes()
            if total <= bytes_limit:
                return
            for entry in sorted(self._entries.values(), key=lambda e: e.tick):
                total -= entry.clusterer.fastpath.evict_products()
                entry.shipped_table = None
                if total <= bytes_limit:
                    break

    def close(self) -> None:
        """Drop every entry and release every pinned lease."""
        with self._lock:
            self._entries.clear()
            self._leases.close_all()


_WORKER_REGISTRY: WorkerCacheRegistry | None = None


def _worker_cache_registry() -> WorkerCacheRegistry:
    """The process-global registry (created on a worker's first batch).

    Registered with ``atexit`` so a worker drains its pinned leases (the
    numpy views over shared pages) before the interpreter tears the
    mappings down -- otherwise ``SharedMemory.__del__`` trips over the
    still-exported buffers and warns at every pool shutdown.
    """
    global _WORKER_REGISTRY
    if _WORKER_REGISTRY is None:
        _WORKER_REGISTRY = WorkerCacheRegistry()
        atexit.register(_WORKER_REGISTRY.close)
    return _WORKER_REGISTRY


def _run_sticky_batch(
    op: str,
    kwargs: dict,
    tasks: "list[LayerTask | LayerDelta]",
    bytes_limit: int,
    retain: "tuple[str, ...] | None" = None,
) -> list[LayerOutcome]:
    """Worker entry point for one sticky slot's per-sweep batch.

    ``retain`` is the slot's current pinned layer set; anything else
    resident in this worker is released first (re-pinned or removed
    layers must not leak caches and shm mappings).  Top-level (picklable
    by reference) so the spawn context resolves it by import; the op
    table is imported lazily to keep the compressor -> procpool import
    edge one-directional at module load time.
    """
    from repro.core.compressor import SWEEP_OPS

    fn = SWEEP_OPS[op]
    registry = _worker_cache_registry()
    if retain is not None:
        registry.prune(retain)
    return [registry.run(fn, task, kwargs, bytes_limit) for task in tasks]


def _run_one(fn, task: LayerTask, kwargs: dict) -> LayerOutcome:
    """Execute one layer task transiently (chunked mode); copy results out.

    Runs in the worker process.  The lease is closed before returning, so
    nothing referencing the shared pages survives into the pickled
    outcome -- every array in the outcome is a fresh worker-local copy.
    """
    apply_directive(task.fault)
    lease = attach_tensor_shm(task.handle)
    try:
        clusterer = DKMClusterer(task.dkm_config)
        if task.state is not None:
            clusterer.state = task.state
        if task.warm:
            clusterer.fastpath.mark_computed(
                lease.tensor, task.dkm_config.weight_dtype
            )
        result = fn(clusterer, lease.tensor, **kwargs)
        return LayerOutcome(
            name=task.name,
            result=result,
            state=clusterer.state,
            stats=clusterer.fastpath.stats,
            table=clusterer.fastpath.peek_table(),
        )
    finally:
        lease.close()


def _run_layer_batch(op: str, kwargs: dict, tasks: list[LayerTask]) -> list[LayerOutcome]:
    """Worker entry point: run a batch of transient layer tasks (chunked)."""
    from repro.core.compressor import SWEEP_OPS

    fn = SWEEP_OPS[op]
    return [_run_one(fn, task, kwargs) for task in tasks]


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class _SyncRecord:
    """What the parent believes one worker holds for one layer."""

    slot: int
    shm_name: str
    version: int
    epoch: int
    config: DKMConfig  # snapshot copy; detects in-place config edits


_TEARDOWN_DRAIN_S = 5.0
"""How long teardown waits for in-flight batches before hard-killing."""


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Hard-kill every worker process of ``pool`` (hung-worker path).

    ``shutdown(cancel_futures=True)`` cannot stop a task that is already
    executing; a worker wedged in a hung op only goes away via SIGKILL.
    Best-effort by design: processes may already be gone.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.kill()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=_TEARDOWN_DRAIN_S)
        except Exception:
            pass


def _teardown(state: dict) -> None:
    """Drain in-flight work, shut pools down, unlink exports.  Idempotent.

    Module-level so ``weakref.finalize`` can run it after the engine is
    gone; ``state`` is the engine's mutable holder, shared by reference.

    Ordering matters: unlinking a block while a worker still maps it is
    fine (POSIX keeps the pages alive), but unlinking while a *pending*
    task could still try to attach would turn shutdown into a worker
    crash.  So teardown first cancels what it can, briefly drains what is
    already running, hard-kills anything still wedged past the drain
    window, and only then unlinks.  Every export close is individually
    guarded: one failing unlink (already-reaped block, EPERM) must not
    leak the remaining blocks or leave the pools running -- teardown
    completes under double faults and is safe to call repeatedly.
    """
    inflight = list(state.get("inflight") or ())
    state["inflight"] = []
    for future in inflight:
        future.cancel()
    pending = [f for f in inflight if not f.cancelled() and not f.done()]
    hung = False
    if pending:
        _, not_done = futures_wait(pending, timeout=_TEARDOWN_DRAIN_S)
        hung = bool(not_done)
    pools = [state.get("pool")] + list(state.get("slots", []))
    state["pool"] = None
    state["slots"] = []
    for pool in pools:
        if pool is None:
            continue
        if hung:
            _kill_pool_processes(pool)
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    exports = state["exports"]
    for export in list(exports.values()):
        try:
            export.close()
        except Exception:
            # Best-effort: one failing unlink must not leak the rest (and
            # the serialization atexit backstop still covers this block).
            pass
    exports.clear()
    state["export_refs"].clear()


class ProcessLayerEngine:
    """Worker-lifecycle + shared-memory + affinity manager for the backend.

    One engine serves one :class:`~repro.core.compressor.ModelCompressor`.
    The pool width is fixed by ``config.resolve_workers`` at the first
    sweep and revisited every sweep: a width change under sticky affinity
    tears the slots down and rebalances the :class:`AffinityMap` (the
    only event that re-pins layers).  Weight exports are cached per layer
    and refreshed only when the layer's storage identity or version
    changes (i.e. after an optimizer write), which simultaneously demotes
    the layer from delta to full shipping.  Any error escaping a sweep
    triggers :meth:`reset`, which tears down pools, unlinks every block,
    and forgets every sync record before re-raising -- a crashed sweep
    never leaks ``/dev/shm`` segments and never trusts stale ``(storage,
    version)`` keys, and the next sweep transparently rebuilds all three.
    """

    def __init__(self, config: CompressorConfig) -> None:
        self.config = config
        # Mutable holder shared with the GC finalizer: "pool" is the live
        # chunked-mode executor, "slots" the sticky-mode single-worker
        # executors, "exports" maps layer name -> ShmExport, "export_refs"
        # maps layer name -> weakref to the exported Storage (identity
        # validation; ids can be recycled after garbage collection).
        self._state: dict = {
            "pool": None,
            "slots": [],
            "exports": {},
            "export_refs": {},
            "inflight": [],
        }
        self.transport = TransportStats()
        self.faults = FaultInjector.from_plan(config.fault_plan)
        self._affinity: AffinityMap | None = None
        self._sync: dict[str, _SyncRecord] = {}
        self._epochs: dict[str, int] = {}
        self._sweep_index = 0
        self._respawns = 0
        self._layer_failures: dict[str, int] = {}
        self._quarantined: set[str] = set()
        self._finalizer = weakref.finalize(self, _teardown, self._state)

    # -- lifecycle ------------------------------------------------------

    def _mp_context(self):
        return get_context(self.config.mp_context)

    def _ensure_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        pool = self._state["pool"]
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.config.resolve_workers(n_tasks),
                mp_context=self._mp_context(),
            )
            self._state["pool"] = pool
        return pool

    def _ensure_slots(self, n_workers: int) -> None:
        """Sticky slots at the requested width; resize drops all state."""
        slots = self._state["slots"]
        if len(slots) == n_workers:
            return
        for pool in slots:
            pool.shutdown(wait=False, cancel_futures=True)
        self._state["slots"] = [
            ProcessPoolExecutor(max_workers=1, mp_context=self._mp_context())
            for _ in range(n_workers)
        ]
        self._sync.clear()
        self._affinity = None

    def _respawn_slot(self, slot: int, kill: bool = False) -> None:
        """Replace one dead or hung slot worker; its layers re-ship full.

        ``kill=True`` is the watchdog path: the worker is wedged in a
        hung task, so its processes are SIGKILLed before the executor is
        shut down (``cancel_futures`` alone cannot stop a running task).
        Every respawn draws on ``config.max_pool_respawns``; past the
        budget :class:`~repro.core.faults.PoolExhausted` is raised so the
        compressor degrades the backend instead of respawning forever.
        """
        slots = self._state["slots"]
        if kill:
            _kill_pool_processes(slots[slot])
        slots[slot].shutdown(wait=False, cancel_futures=True)
        for name in [n for n, rec in self._sync.items() if rec.slot == slot]:
            del self._sync[name]
        self._respawns += 1
        if self._respawns > self.config.max_pool_respawns:
            raise PoolExhausted(
                f"worker respawn budget exhausted ({self._respawns - 1} respawns"
                f" > max_pool_respawns={self.config.max_pool_respawns})"
            )
        slots[slot] = ProcessPoolExecutor(
            max_workers=1, mp_context=self._mp_context()
        )

    def reset(self) -> None:
        """Tear down pools, exports, and sync records; engine stays usable.

        Idempotent, including under double faults: in-flight batches are
        drained or hard-killed before any block is unlinked, and a
        failing unlink never aborts the rest of the cleanup (see
        :func:`_teardown`).  Quarantine membership and per-layer failure
        counts survive a reset on purpose -- a poison layer stays
        quarantined across the error/rebuild cycle it caused.
        """
        _teardown(self._state)
        self._sync.clear()
        self._affinity = None

    def close(self) -> None:
        """Tear down pools, exports, and sync records (idempotent)."""
        self.reset()

    def __enter__(self) -> "ProcessLayerEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def active_shm_names(self) -> list[str]:
        """Names of currently-linked shared-memory blocks (for audits)."""
        return [export.name for export in self._state["exports"].values()]

    def affinity_map(self) -> AffinityMap | None:
        """The current pinning map (``None`` before the first sticky sweep)."""
        return self._affinity

    @property
    def fault_log(self) -> "FaultLog | None":
        """The injector's event log (``None`` on a fault-free engine)."""
        return None if self.faults is None else self.faults.log

    @property
    def respawns(self) -> int:
        """Worker respawns performed so far (crash + watchdog paths)."""
        return self._respawns

    @property
    def quarantined(self) -> frozenset[str]:
        """Layers demoted to in-parent serial execution for this run."""
        return frozenset(self._quarantined)

    # -- weight export cache --------------------------------------------

    def _export_weight(self, name: str, weights: "Tensor") -> ShmTensorHandle:
        """The layer's current export, refreshed if its storage changed."""
        exports: dict[str, ShmExport] = self._state["exports"]
        refs: dict[str, weakref.ReferenceType] = self._state["export_refs"]
        existing = exports.get(name)
        if existing is not None:
            ref = refs.get(name)
            same_storage = ref is not None and ref() is weights.storage
            handle = existing.handle
            if (
                same_storage
                and handle.version == weights.storage.version
                and handle.shape == tuple(weights.shape)
                and handle.strides == tuple(weights.strides)
                and handle.offset == int(weights.offset)
            ):
                return handle
            existing.close()
            del exports[name]
            refs.pop(name, None)
        export = export_tensor_shm(weights)
        exports[name] = export
        refs[name] = weakref.ref(weights.storage)
        return export.handle

    # -- sweep dispatch -------------------------------------------------

    def map_layers(
        self,
        op: str,
        layers: "list[tuple[str, DKMClusterer, Tensor]]",
        **kwargs,
    ) -> dict[str, LayerOutcome]:
        """Run ``op`` on every layer through the pool; insertion-order dict.

        ``layers`` is ``(name, clusterer, weight)`` per layer.  The
        clusterer is only read on the parent side (state snapshot + warm
        token); the worker builds or resumes its own from the shipped
        task.  Failures the sticky path *can* absorb -- crashes, hangs
        past ``task_timeout_s``, stale caches, corrupt deltas, lost shm
        blocks, transient worker errors -- are retried per slot up to
        ``max_task_retries`` times and then executed in-parent (see
        :meth:`_collect_slot`); on any failure beyond that taxonomy (a
        real op bug, the respawn budget running out) the engine is
        :meth:`reset` before the error propagates, so a failed sweep
        never merges partial results and never leaks ``/dev/shm``.
        """
        self._sweep_index += 1
        if self.faults is not None:
            self.faults.begin_sweep(
                self._sweep_index, [name for name, _, _ in layers], op
            )
        try:
            outcomes = self._dispatch(op, layers, kwargs)
        except BaseException:
            self.reset()
            raise
        self._state["inflight"] = []
        return {outcome.name: outcome for outcome in outcomes}

    def _dispatch(self, op, layers, kwargs) -> list[LayerOutcome]:
        """Route one sweep to the configured scheduling mode.

        The seam subclasses override: the sharded cluster engine
        (:class:`~repro.distributed.scheduler.ShardedClusterEngine`)
        replaces this with byte-balanced node placement while inheriting
        the sweep bookkeeping, fault arming, and reset-on-error contract
        of :meth:`map_layers` unchanged.
        """
        if self.config.affinity == "sticky":
            return self._map_sticky(op, layers, kwargs)
        return self._map_chunked(op, layers, kwargs)

    # -- chunked mode ---------------------------------------------------

    def _deadline(self, n_tasks: int) -> float | None:
        """The watchdog deadline for an ``n_tasks`` batch (``None`` = off)."""
        timeout = self.config.task_timeout_s
        return None if timeout is None else timeout * max(1, n_tasks)

    def _map_chunked(self, op, layers, kwargs) -> list[LayerOutcome]:
        self.transport.begin_sweep()
        tasks = []
        for name, clusterer, weights in layers:
            task = LayerTask(
                name=name,
                handle=self._export_weight(name, weights),
                dkm_config=clusterer.config,
                state=clusterer.state,
                warm=clusterer.fastpath.is_warm(
                    weights, clusterer.config.weight_dtype
                ),
            )
            tasks.append(self._inject_faults(task, name))
        pool = self._ensure_pool(len(tasks))
        chunk = self.config.resolve_task_chunk(len(tasks))
        futures = []
        for i in range(0, len(tasks), chunk):
            batch = tasks[i : i + chunk]
            self.transport.record_batch(batch)
            futures.append(pool.submit(_run_layer_batch, op, kwargs, batch))
        self._state["inflight"] = list(futures)
        outcomes: list[LayerOutcome] = []
        for index, future in enumerate(futures):
            deadline = self._deadline(min(chunk, len(tasks) - index * chunk))
            try:
                outcomes.extend(future.result(timeout=deadline))
            except FutureTimeout:
                # Chunked workers are stateless and interchangeable; there
                # is no per-slot respawn to do, so a hang is terminal for
                # the sweep (map_layers resets; the compressor degrades).
                raise WatchdogTimeout(
                    f"chunked batch exceeded its {deadline:.1f}s deadline"
                ) from None
        return outcomes

    # -- sticky mode ----------------------------------------------------

    def _next_epoch(self, name: str) -> int:
        epoch = self._epochs.get(name, 0) + 1
        self._epochs[name] = epoch
        return epoch

    def _full_task(
        self,
        name: str,
        clusterer: DKMClusterer,
        weights: "Tensor",
        handle: ShmTensorHandle,
        slot: int,
    ) -> LayerTask:
        """A full shipment, optimistically recorded as synced.

        Recording before the sweep completes is safe: every failure path
        that could leave the worker out of step either re-ships full
        (slot retry) or ends in :meth:`reset`, which forgets the record.
        """
        epoch = self._next_epoch(name)
        self._sync[name] = _SyncRecord(
            slot=slot,
            shm_name=handle.shm_name,
            version=handle.version,
            epoch=epoch,
            config=replace(clusterer.config),
        )
        return LayerTask(
            name=name,
            handle=handle,
            dkm_config=clusterer.config,
            state=clusterer.state,
            warm=clusterer.fastpath.is_warm(weights, clusterer.config.weight_dtype),
            epoch=epoch,
        )

    def _build_task(
        self,
        name: str,
        clusterer: DKMClusterer,
        weights: "Tensor",
        handle: ShmTensorHandle,
        slot: int,
    ) -> "LayerTask | LayerDelta":
        """Delta when the sync record still matches reality, else full."""
        rec = self._sync.get(name)
        if (
            rec is not None
            and rec.slot == slot
            and rec.shm_name == handle.shm_name
            and rec.version == handle.version
            and rec.config == clusterer.config
        ):
            warm = clusterer.fastpath.is_warm(weights, clusterer.config.weight_dtype)
            return LayerDelta(
                name=name,
                version=handle.version,
                epoch=rec.epoch,
                state=clusterer.state,
                warm=warm,
                digest=delta_digest(
                    name, handle.version, rec.epoch, warm, clusterer.state
                ),
            )
        return self._full_task(name, clusterer, weights, handle, slot)

    def _submit_slot(
        self,
        slot: int,
        op: str,
        kwargs: dict,
        batch: list,
        retain: "tuple[str, ...] | None" = None,
    ) -> "Future | None":
        """Submit one slot batch; ``None`` signals a dead worker (retry)."""
        try:
            future = self._state["slots"][slot].submit(
                _run_sticky_batch,
                op,
                kwargs,
                batch,
                self.config.worker_cache_bytes_limit,
                retain,
            )
        except BrokenExecutor:
            return None
        self._state["inflight"].append(future)
        return future

    def _map_sticky(self, op, layers, kwargs) -> list[LayerOutcome]:
        n_workers = self.config.resolve_workers(len(layers))
        self._ensure_slots(n_workers)
        names = tuple(name for name, _, _ in layers)
        amap = self._affinity
        prune_only_slots: set[int] = set()
        if amap is None or amap.names != names or amap.n_workers != n_workers:
            # A layer-set change at the same width keeps the live workers:
            # any slot can hold entries for re-pinned/removed layers, so
            # every slot must at least receive a prune message this sweep.
            if amap is not None and amap.n_workers == n_workers:
                prune_only_slots = set(range(n_workers))
            self._affinity = amap = AffinityMap.build(names, n_workers)
            # A record for a re-pinned layer points at a worker that no
            # longer owns it; drop it so the new owner gets a full task.
            for name in [
                n for n, rec in self._sync.items() if amap.pins.get(n) != rec.slot
            ]:
                del self._sync[name]
        self.transport.begin_sweep()
        spec: dict[str, tuple] = {}
        batches: list[list] = [[] for _ in range(n_workers)]
        by_name: dict[str, LayerOutcome] = {}
        for name, clusterer, weights in layers:
            if name in self._quarantined:
                # Poison layer: never shipped again; runs in-parent with
                # the exact worker-path semantics (cloned clusterer).
                by_name[name] = self._run_in_parent(
                    op, name, clusterer, weights, kwargs
                )
                continue
            handle = self._export_weight(name, weights)
            slot = amap.pins[name]
            spec[name] = (clusterer, weights, handle)
            batches[slot].append(
                self._inject_faults(
                    self._build_task(name, clusterer, weights, handle, slot), name
                )
            )
        futures: list["Future | None"] = []
        for slot in range(n_workers):
            if not batches[slot]:
                # No work for this slot; still flush stale residents if
                # the pin map just changed under live workers.
                future = None
                if slot in prune_only_slots:
                    future = self._submit_slot(slot, op, kwargs, [], retain=())
                futures.append(future)
                continue
            self.transport.record_batch(batches[slot])
            futures.append(
                self._submit_slot(
                    slot, op, kwargs, batches[slot],
                    retain=self._retain_for(slot),
                )
            )
        for slot in range(n_workers):
            if not batches[slot]:
                future = futures[slot]
                if future is not None:
                    try:
                        future.result(timeout=self._deadline(1))
                    except FutureTimeout:
                        self._respawn_slot(slot, kill=True)
                    except (BrokenExecutor, StaleWorkerCache):
                        pass  # a dead worker has nothing resident to prune
                continue
            for outcome in self._collect_slot(
                slot, op, kwargs, batches[slot], spec, futures[slot]
            ):
                by_name[outcome.name] = outcome
        return [by_name[name] for name in names]

    # -- failure recovery -----------------------------------------------

    def _retain_for(self, slot: int) -> tuple[str, ...]:
        """The slot's current pinned layer set, minus quarantined layers."""
        if self._affinity is None:
            return ()
        return tuple(
            name
            for name in self._affinity.layers_for(slot)
            if name not in self._quarantined
        )

    def _inject_faults(
        self, task: "LayerTask | LayerDelta", name: str
    ) -> "LayerTask | LayerDelta":
        """Apply any armed injections to one outbound task (chaos hook).

        Worker-side kinds ride along as the task's ``fault`` directive;
        ``corrupt_delta`` perturbs a *copy* of the delta's state after
        its digest was computed (corruption exists only on the wire);
        ``drop_shm`` unlinks the layer's live block out from under the
        engine, exactly as an external ``/dev/shm`` reaper would.
        No-op on fault-free engines.
        """
        injector = self.faults
        if injector is None:
            return task
        directive = injector.worker_directive(name)
        if directive is not None:
            task = replace(task, fault=directive)
        if isinstance(task, LayerDelta) and injector.fire("corrupt_delta", name):
            task = replace(task, state=corrupted_state(task.state))
        if injector.fire("drop_shm", name):
            self._drop_shm_block(name)
        return task

    def _drop_shm_block(self, name: str) -> None:
        """Simulate an externally-reaped block for ``name`` (injection).

        The block is unlinked while the parent's export (and any worker
        lease) still references it; the sync record is dropped so the
        next shipment attaches -- and trips over -- the missing block,
        surfacing as :class:`~repro.tensor.serialization.ShmLost`.
        """
        export = self._state["exports"].get(name)
        if export is not None:
            try:
                export.shm.unlink()
            except FileNotFoundError:
                pass
        self._sync.pop(name, None)

    def _drop_export(self, name: str) -> None:
        """Forget (and release) the layer's export after its block vanished."""
        export = self._state["exports"].pop(name, None)
        self._state["export_refs"].pop(name, None)
        self._sync.pop(name, None)
        if export is not None:
            export.close()  # tolerates the already-unlinked block

    def _collect_slot(
        self,
        slot: int,
        op: str,
        kwargs: dict,
        batch: list,
        spec: dict,
        future: "Future | None",
    ) -> list[LayerOutcome]:
        """Collect one slot's outcomes, absorbing every recoverable failure.

        The retry loop implements the recovery taxonomy (see
        ``docs/robustness.md``): a hang past the batch deadline kills and
        respawns the worker; a crash respawns it; a stale cache or
        corrupt payload re-ships full to the live worker; a lost shm
        block re-exports first; a transient error backs off
        exponentially (``retry_backoff_s * 2**attempt``) and retries in
        place.  Each retry re-ships the batch as full tasks.  After
        ``max_task_retries`` failed shipments the batch falls back to
        in-parent serial execution -- the sweep still completes -- and
        each layer's failure count advances toward quarantine.
        :class:`~repro.core.faults.PoolExhausted` (respawn budget spent)
        is deliberately *not* absorbed: it propagates so the compressor
        can demote the whole backend.
        """
        deadline = self._deadline(len(batch))
        retries = self.config.max_task_retries
        attempt = 0
        while True:
            kind = None
            if future is None:
                kind = "crash"  # worker was already dead at submit time
            else:
                try:
                    return future.result(timeout=deadline)
                except FutureTimeout:
                    kind = "hang"
                except BrokenExecutor:
                    kind = "crash"
                except (StaleWorkerCache, CorruptPayload):
                    kind = "stale"
                except ShmLost:
                    kind = "shm-lost"
                except TransientWorkerError:
                    kind = "transient"
            # Repair the slot before deciding retry vs fallback, so a
            # hung or dead worker never lingers into the next sweep.
            if kind == "hang":
                self._respawn_slot(slot, kill=True)
            elif kind == "crash":
                self._respawn_slot(slot)
            if kind == "shm-lost":
                for task in batch:
                    self._drop_export(task.name)
            if attempt >= retries:
                return self._fallback_in_parent(op, kwargs, batch, spec, kind)
            attempt += 1
            if kind == "transient" and self.config.retry_backoff_s > 0:
                time.sleep(self.config.retry_backoff_s * (2 ** (attempt - 1)))
            batch = self._rebuild_full(batch, spec, slot)
            future = self._submit_slot(
                slot, op, kwargs, batch, retain=self._retain_for(slot)
            )

    def _rebuild_full(self, batch: list, spec: dict, slot: int) -> list:
        """Re-ship a failed batch as full tasks (re-exporting as needed).

        Injections are re-applied on the rebuilt tasks: a fault spec with
        ``times > 1`` keeps firing on retries, which is how the chaos
        suite drives the retry budget all the way to quarantine.
        """
        full_batch = []
        for task in batch:
            clusterer, weights, _ = spec[task.name]
            handle = self._export_weight(task.name, weights)
            spec[task.name] = (clusterer, weights, handle)
            full_batch.append(
                self._inject_faults(
                    self._full_task(task.name, clusterer, weights, handle, slot),
                    task.name,
                )
            )
        self.transport.record_batch(full_batch)
        return full_batch

    def _fallback_in_parent(
        self, op: str, kwargs: dict, batch: list, spec: dict, kind: str
    ) -> list[LayerOutcome]:
        """Out of retries: run the batch in-parent and advance quarantine.

        The sweep still completes bit-identically (the in-parent path
        reproduces the worker-path semantics exactly); each layer's
        failure count advances, and a layer reaching
        ``max_layer_retries`` is quarantined -- permanently executed
        in-parent, never shipped again -- with a
        :class:`~repro.core.faults.RobustnessWarning`.
        """
        outcomes = []
        for task in batch:
            name = task.name
            failures = self._layer_failures.get(name, 0) + 1
            self._layer_failures[name] = failures
            self._sync.pop(name, None)
            if (
                failures >= self.config.max_layer_retries
                and name not in self._quarantined
            ):
                self._quarantined.add(name)
                warnings.warn(
                    f"layer {name!r} failed {failures} shipped batches (last "
                    f"failure: {kind}); quarantining it to in-parent serial "
                    "execution for the rest of the run",
                    RobustnessWarning,
                    stacklevel=6,
                )
            clusterer, weights, _ = spec[name]
            outcomes.append(self._run_in_parent(op, name, clusterer, weights, kwargs))
        return outcomes

    def _run_in_parent(
        self, op: str, name: str, clusterer: DKMClusterer, weights, kwargs: dict
    ) -> LayerOutcome:
        """Execute one layer in the parent with worker-path semantics.

        Mirrors :func:`_run_one` exactly: a *fresh* clusterer seeded with
        a copy of the parent's state (the parent clusterer is never
        mutated before the merge -- a later sweep failure followed by a
        degraded re-run must see unchanged inputs), the warm token
        becoming a phantom ``mark_computed``, and stats shipped as the
        fresh cache's totals, which the merge treats as deltas.  Counter
        accounting therefore stays bit-identical to the worker path.
        """
        from repro.core.compressor import SWEEP_OPS

        fn = SWEEP_OPS[op]
        local = DKMClusterer(clusterer.config)
        state = clusterer.state
        if state is not None:
            local.state = replace(
                state, centroids=np.array(state.centroids, copy=True)
            )
        if clusterer.fastpath.is_warm(weights, clusterer.config.weight_dtype):
            local.fastpath.mark_computed(weights, clusterer.config.weight_dtype)
        result = fn(local, weights, **kwargs)
        return LayerOutcome(
            name=name,
            result=result,
            state=local.state,
            stats=local.fastpath.stats,
            table=local.fastpath.peek_table(),
        )
