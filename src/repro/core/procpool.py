"""Process-pool execution backend for the per-layer compression engine.

The thread backend (:func:`repro.core.compressor.parallel_layer_map`) only
overlaps the GIL-releasing numpy kernels; on many-layer models the
Python-side op dispatch still serializes.  This module fans the engine's
no-grad sweeps (``refine`` / ``precluster`` / ``palettize``) out over a
``ProcessPoolExecutor`` instead, which overlaps dispatch as well -- the
"Process-pool fan-out" item of the roadmap.

Three design rules keep the backend bit-identical to the serial sweep and
cheap to feed:

- **Shared-memory weights.**  Each layer's weight storage is exported once
  into a ``multiprocessing.shared_memory`` block (the only byte copy);
  workers rebuild a zero-copy strided view from a tiny picklable
  :class:`~repro.tensor.serialization.ShmTensorHandle`.  Exports are keyed
  on (storage identity, version), so an optimizer step in the parent
  invalidates and re-exports exactly the layers it wrote.
- **Chunked task batching.**  Layers are grouped into
  ``CompressorConfig.resolve_task_chunk`` batches per pickled task, so
  per-task pickle + IPC overhead is amortized over many layers (one batch
  per worker by default).
- **Deterministic merge.**  Batches are submitted in layer insertion order
  and gathered in submission order; per-layer clustering is a pure
  function of (weight bytes, prior state, config), so centroids,
  assignments, carried attention tables, and
  :class:`~repro.core.fastpath.FastPathStats` counter deltas merge back
  bit-identical to the serial sweep no matter how the pool interleaves.

Worker lifecycle: the pool is spawn-safe (workers receive only picklable
task specs and import the codebase fresh under the default ``"spawn"``
context), lazily created on the first sweep, reused across sweeps, and
torn down -- together with every exported block -- by
:meth:`ProcessLayerEngine.close`, by :meth:`ProcessLayerEngine.reset` on
any sweep error, or by a ``weakref.finalize`` safety net if the engine is
garbage collected first.  Cleanup is verifiable:
:meth:`ProcessLayerEngine.active_shm_names` lists the live blocks, and
attaching to any of them after ``close()`` raises ``FileNotFoundError``.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any

from repro.core.config import CompressorConfig, DKMConfig
from repro.core.dkm import ClusterState, DKMClusterer
from repro.core.fastpath import FastPathStats
from repro.tensor.serialization import (
    ShmExport,
    ShmTensorHandle,
    attach_tensor_shm,
    export_tensor_shm,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np

    from repro.tensor.tensor import Tensor


@dataclass
class LayerTask:
    """One layer's worth of work shipped to a pool worker.

    Everything here pickles small: the shm handle is O(metadata), the
    cluster state is ``O(k)`` floats, and ``warm`` is the one-bit token
    telling the worker its first uniquify is logically a cache hit (the
    parent's step cache already covers these exact weight bytes), so the
    merged hit/miss counters match the serial sweep exactly.
    """

    name: str
    handle: ShmTensorHandle
    dkm_config: DKMConfig
    state: ClusterState | None
    warm: bool


@dataclass
class LayerOutcome:
    """What a worker sends home for one layer.

    ``result`` is the op's return value (a ``ClusterState`` snapshot, a
    ``LayerClusterResult``, or a ``PalettizedTensor``); ``state`` is the
    worker clusterer's final state, assigned back onto the parent layer;
    ``stats`` holds the worker cache's counter deltas; ``table`` carries
    the refine->forward attention table (``(centroids, temperature,
    table)`` or ``None``) so the parent cache can re-park it.
    """

    name: str
    result: Any
    state: ClusterState | None
    stats: FastPathStats
    table: "tuple[np.ndarray, float, np.ndarray] | None"


def _run_one(fn, task: LayerTask, kwargs: dict) -> LayerOutcome:
    """Execute one layer task against its shm view; copy results out.

    Runs in the worker process.  The lease is closed before returning, so
    nothing referencing the shared pages survives into the pickled
    outcome -- every array in the outcome is a fresh worker-local copy.
    """
    lease = attach_tensor_shm(task.handle)
    try:
        clusterer = DKMClusterer(task.dkm_config)
        if task.state is not None:
            clusterer.state = task.state
        if task.warm:
            clusterer.fastpath.mark_computed(
                lease.tensor, task.dkm_config.weight_dtype
            )
        result = fn(clusterer, lease.tensor, **kwargs)
        return LayerOutcome(
            name=task.name,
            result=result,
            state=clusterer.state,
            stats=clusterer.fastpath.stats,
            table=clusterer.fastpath.peek_table(),
        )
    finally:
        lease.close()


def _run_layer_batch(op: str, kwargs: dict, tasks: list[LayerTask]) -> list[LayerOutcome]:
    """Worker entry point: run a batch of layer tasks for one sweep op.

    Top-level (picklable by reference) so the spawn context can resolve it
    by import.  The op table lives in :mod:`repro.core.compressor` and is
    imported lazily here to keep the compressor -> procpool import edge
    one-directional at module load time.
    """
    from repro.core.compressor import SWEEP_OPS

    fn = SWEEP_OPS[op]
    return [_run_one(fn, task, kwargs) for task in tasks]


def _teardown(state: dict) -> None:
    """Shut the pool down and unlink every export.  Idempotent.

    Module-level so ``weakref.finalize`` can run it after the engine is
    gone; ``state`` is the engine's mutable holder, shared by reference.
    """
    pool = state.get("pool")
    state["pool"] = None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    exports = state["exports"]
    for export in list(exports.values()):
        export.close()
    exports.clear()
    state["export_refs"].clear()


class ProcessLayerEngine:
    """Worker-lifecycle + shared-memory manager for the process backend.

    One engine serves one :class:`~repro.core.compressor.ModelCompressor`.
    The pool width is fixed by ``config.resolve_workers`` at the first
    sweep and reused afterwards; weight exports are cached per layer and
    refreshed only when the layer's storage identity or version changes
    (i.e. after an optimizer write).  Any error escaping a sweep triggers
    :meth:`reset`, which tears down the pool and unlinks every block
    before re-raising -- a crashed sweep never leaks ``/dev/shm``
    segments, and the next sweep transparently rebuilds both.
    """

    def __init__(self, config: CompressorConfig) -> None:
        self.config = config
        # Mutable holder shared with the GC finalizer: "pool" is the live
        # executor, "exports" maps layer name -> ShmExport, "export_refs"
        # maps layer name -> weakref to the exported Storage (identity
        # validation; ids can be recycled after garbage collection).
        self._state: dict = {"pool": None, "exports": {}, "export_refs": {}}
        self._finalizer = weakref.finalize(self, _teardown, self._state)

    # -- lifecycle ------------------------------------------------------

    def _ensure_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        pool = self._state["pool"]
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.config.resolve_workers(n_tasks),
                mp_context=get_context(self.config.mp_context),
            )
            self._state["pool"] = pool
        return pool

    def reset(self) -> None:
        """Tear down pool and exports; the engine stays usable."""
        _teardown(self._state)

    def close(self) -> None:
        """Tear down pool and exports (idempotent; engine reusable)."""
        _teardown(self._state)

    def __enter__(self) -> "ProcessLayerEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def active_shm_names(self) -> list[str]:
        """Names of currently-linked shared-memory blocks (for audits)."""
        return [export.name for export in self._state["exports"].values()]

    # -- weight export cache --------------------------------------------

    def _export_weight(self, name: str, weights: "Tensor") -> ShmTensorHandle:
        """The layer's current export, refreshed if its storage changed."""
        exports: dict[str, ShmExport] = self._state["exports"]
        refs: dict[str, weakref.ReferenceType] = self._state["export_refs"]
        existing = exports.get(name)
        if existing is not None:
            ref = refs.get(name)
            same_storage = ref is not None and ref() is weights.storage
            handle = existing.handle
            if (
                same_storage
                and handle.version == weights.storage.version
                and handle.shape == tuple(weights.shape)
                and handle.strides == tuple(weights.strides)
                and handle.offset == int(weights.offset)
            ):
                return handle
            existing.close()
            del exports[name]
            refs.pop(name, None)
        export = export_tensor_shm(weights)
        exports[name] = export
        refs[name] = weakref.ref(weights.storage)
        return export.handle

    # -- sweep dispatch -------------------------------------------------

    def map_layers(
        self,
        op: str,
        layers: "list[tuple[str, DKMClusterer, Tensor]]",
        **kwargs,
    ) -> dict[str, LayerOutcome]:
        """Run ``op`` on every layer through the pool; insertion-order dict.

        ``layers`` is ``(name, clusterer, weight)`` per layer.  The
        clusterer is only read on the parent side (state snapshot + warm
        token); the worker builds its own from the pickled task.  On any
        failure -- a worker exception, a broken pool, a poisoned export --
        the engine is :meth:`reset` before the error propagates.
        """
        tasks = []
        try:
            for name, clusterer, weights in layers:
                state = clusterer.state
                tasks.append(
                    LayerTask(
                        name=name,
                        handle=self._export_weight(name, weights),
                        dkm_config=clusterer.config,
                        state=state,
                        warm=clusterer.fastpath.is_warm(
                            weights, clusterer.config.weight_dtype
                        ),
                    )
                )
            pool = self._ensure_pool(len(tasks))
            chunk = self.config.resolve_task_chunk(len(tasks))
            futures = [
                pool.submit(_run_layer_batch, op, kwargs, tasks[i : i + chunk])
                for i in range(0, len(tasks), chunk)
            ]
            outcomes = [outcome for future in futures for outcome in future.result()]
        except BaseException:
            self.reset()
            raise
        return {outcome.name: outcome for outcome in outcomes}
