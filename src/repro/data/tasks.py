"""Synthetic benchmark suites mirroring the paper's Table 3 columns.

Seven task generators, one per paper benchmark, each built on a distinct
slice of the fact world and scored exactly as lm-eval-harness scores the
real suites: multiple-choice by length-normalized continuation
log-likelihood, TriviaQA by greedy-generation exact match.

| suite            | analogue      | form                       | facts       |
|------------------|---------------|----------------------------|-------------|
| piqa_syn         | PIQA          | 2-choice tool selection    | tools       |
| hellaswag_syn    | HellaSwag     | 4-choice next step         | sequences   |
| winogrande_syn   | Winogrande    | 2-choice size resolution   | sizes       |
| arc_easy_syn     | ARC-e         | 4-choice common facts      | colors      |
| arc_challenge_syn| ARC-c         | 4-choice rare facts        | capitals    |
| triviaqa_syn     | TriviaQA      | one-shot cloze generation  | capitals    |
| mmlu_syn         | MMLU          | 4-choice, 2-shot, mixed    | all common  |
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.facts import Fact, FactWorld


@dataclass(frozen=True)
class MultipleChoiceItem:
    """Context plus options; exactly one correct."""

    context: str
    options: tuple[str, ...]
    answer_index: int


@dataclass(frozen=True)
class ClozeItem:
    """Few-shot prompt whose continuation must exactly match ``answer``."""

    prompt: str
    answer: str


@dataclass
class TaskSuite:
    name: str
    kind: str  # "multiple_choice" | "cloze"
    items: list = field(default_factory=list)
    n_options: int = 2

    @property
    def chance_accuracy(self) -> float:
        if self.kind == "cloze":
            return 0.0
        return 1.0 / self.n_options


def _sample_options(
    fact: Fact, n_options: int, rng: np.random.Generator
) -> tuple[tuple[str, ...], int]:
    pool = [d for d in fact.distractor_pool if d != fact.answer]
    n_distractors = min(n_options - 1, len(pool))
    chosen = list(rng.choice(pool, size=n_distractors, replace=False))
    options = chosen + [fact.answer]
    rng.shuffle(options)
    return tuple(options), options.index(fact.answer)


def _mc_suite(
    name: str,
    facts: list[Fact],
    context_fn,
    n_options: int,
    n_items: int,
    rng: np.random.Generator,
) -> TaskSuite:
    items = []
    for _ in range(n_items):
        fact = facts[rng.integers(0, len(facts))]
        options, answer = _sample_options(fact, n_options, rng)
        items.append(
            MultipleChoiceItem(
                context=context_fn(fact), options=options, answer_index=answer
            )
        )
    return TaskSuite(name=name, kind="multiple_choice", items=items, n_options=n_options)


def piqa_syn(world: FactWorld, n_items: int = 64, seed: int = 101) -> TaskSuite:
    rng = np.random.default_rng(seed)
    return _mc_suite(
        "piqa_syn",
        world.facts["tools"],
        lambda f: f"to {f.subject} you use a",
        n_options=2,
        n_items=n_items,
        rng=rng,
    )


def hellaswag_syn(world: FactWorld, n_items: int = 64, seed: int = 102) -> TaskSuite:
    rng = np.random.default_rng(seed)
    def context(f: Fact) -> str:
        activity, step = f.subject.split()
        return f"in {activity} the step after {step} is"
    return _mc_suite(
        "hellaswag_syn",
        world.facts["sequences"],
        context,
        n_options=4,
        n_items=n_items,
        rng=rng,
    )


def winogrande_syn(world: FactWorld, n_items: int = 64, seed: int = 103) -> TaskSuite:
    rng = np.random.default_rng(seed)
    def context(f: Fact) -> str:
        s0, s1 = f.subject.split()
        return f"between a {s0} and a {s1} the bigger one is the"
    return _mc_suite(
        "winogrande_syn",
        world.facts["sizes"],
        context,
        n_options=2,
        n_items=n_items,
        rng=rng,
    )


def arc_easy_syn(world: FactWorld, n_items: int = 64, seed: int = 104) -> TaskSuite:
    rng = np.random.default_rng(seed)
    return _mc_suite(
        "arc_easy_syn",
        world.facts["colors"],
        lambda f: f"the color of {f.subject} is",
        n_options=4,
        n_items=n_items,
        rng=rng,
    )


def arc_challenge_syn(world: FactWorld, n_items: int = 64, seed: int = 105) -> TaskSuite:
    rng = np.random.default_rng(seed)
    return _mc_suite(
        "arc_challenge_syn",
        world.facts["capitals"],
        lambda f: f"the capital of {f.subject} is",
        n_options=4,
        n_items=n_items,
        rng=rng,
    )


def triviaqa_syn(world: FactWorld, n_items: int = 48, seed: int = 106) -> TaskSuite:
    """One-shot cloze over the rare capital facts (paper footnote b)."""
    rng = np.random.default_rng(seed)
    facts = world.facts["capitals"]
    items = []
    for _ in range(n_items):
        target = facts[rng.integers(0, len(facts))]
        shot = facts[rng.integers(0, len(facts))]
        prompt = (
            f"the capital of {shot.subject} is {shot.answer} . "
            f"the capital of {target.subject} is"
        )
        items.append(ClozeItem(prompt=prompt, answer=target.answer))
    return TaskSuite(name="triviaqa_syn", kind="cloze", items=items)


def mmlu_syn(world: FactWorld, n_items: int = 64, seed: int = 107) -> TaskSuite:
    """Mixed-subject 4-choice with a 2-shot prompt per item."""
    rng = np.random.default_rng(seed)
    subjects = {
        "colors": lambda f: f"the color of {f.subject} is",
        "habitats": lambda f: f"the {f.subject} lives in the",
        "categories": lambda f: f"a {f.subject} is a kind of",
        "tools": lambda f: f"to {f.subject} you use a",
    }
    items = []
    names = list(subjects)
    for _ in range(n_items):
        family = names[rng.integers(0, len(names))]
        facts = world.facts[family]
        context_fn = subjects[family]
        target = facts[rng.integers(0, len(facts))]
        shots = [facts[rng.integers(0, len(facts))] for _ in range(2)]
        prefix = " . ".join(f"{context_fn(s)} {s.answer}" for s in shots)
        options, answer = _sample_options(target, 4, rng)
        items.append(
            MultipleChoiceItem(
                context=f"{prefix} . {context_fn(target)}",
                options=options,
                answer_index=answer,
            )
        )
    return TaskSuite(name="mmlu_syn", kind="multiple_choice", items=items, n_options=4)


def standard_suites(
    world: FactWorld, n_items: int = 64, seed: int = 100
) -> list[TaskSuite]:
    """The seven suites in the paper's column order."""
    return [
        piqa_syn(world, n_items, seed + 1),
        hellaswag_syn(world, n_items, seed + 2),
        winogrande_syn(world, n_items, seed + 3),
        arc_easy_syn(world, n_items, seed + 4),
        arc_challenge_syn(world, n_items, seed + 5),
        triviaqa_syn(world, max(n_items * 3 // 4, 8), seed + 6),
        mmlu_syn(world, n_items, seed + 7),
    ]
