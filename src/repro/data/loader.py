"""Batching utilities: padded causal-LM batches with instruction masking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.alpaca import InstructionExample
from repro.llm.tokenizer import WordTokenizer
from repro.nn.loss import IGNORE_INDEX
from repro.tensor.device import Device
from repro.tensor.tensor import Tensor


@dataclass
class Batch:
    """Input tokens and next-token targets, both (batch, seq)."""

    tokens: Tensor
    targets: Tensor

    @property
    def batch_size(self) -> int:
        return self.tokens.shape[0]


def _pad_and_shift(
    sequences: list[list[int]],
    loss_masks: list[list[bool]],
    pad_id: int,
    device: Device,
    max_len: int,
) -> Batch:
    """Right-pad, then shift: target[t] = token[t+1] (or IGNORE)."""
    width = min(max(len(s) for s in sequences), max_len)
    n = len(sequences)
    tokens = np.full((n, width), pad_id, dtype=np.int64)
    targets = np.full((n, width), IGNORE_INDEX, dtype=np.int64)
    for i, (seq, mask) in enumerate(zip(sequences, loss_masks)):
        seq = seq[:width]
        mask = mask[:width]
        tokens[i, : len(seq)] = seq
        for t in range(len(seq) - 1):
            if mask[t + 1]:
                targets[i, t] = seq[t + 1]
    return Batch(
        tokens=Tensor.from_numpy(tokens, device=device),
        targets=Tensor.from_numpy(targets, device=device),
    )


def corpus_batches(
    sentences: list[str],
    tokenizer: WordTokenizer,
    batch_size: int,
    device: Device,
    max_len: int = 64,
    seed: int = 0,
    epochs: int = 1,
) -> Iterator[Batch]:
    """Shuffled causal-LM batches over plain sentences (all tokens scored)."""
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        order = rng.permutation(len(sentences))
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            seqs = [
                tokenizer.encode(sentences[i], bos=True, eos=True) for i in chunk
            ]
            masks = [[True] * len(s) for s in seqs]
            yield _pad_and_shift(seqs, masks, tokenizer.pad_id, device, max_len)


def alpaca_batches(
    examples: list[InstructionExample],
    tokenizer: WordTokenizer,
    batch_size: int,
    device: Device,
    max_len: int = 64,
    seed: int = 0,
    epochs: int = 1,
) -> Iterator[Batch]:
    """Instruction batches: loss only on the response segment.

    The question tokens (everything up to and including the ``answer :``
    marker) are masked with IGNORE_INDEX, matching Alpaca-style fine-tuning.
    """
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        order = rng.permutation(len(examples))
        for start in range(0, len(order), batch_size):
            chunk = order[start : start + batch_size]
            seqs, masks = [], []
            for i in chunk:
                example = examples[i]
                prefix = f"question : {example.question} answer :"
                prefix_ids = tokenizer.encode(prefix, bos=True)
                full_ids = tokenizer.encode(example.text, bos=True, eos=True)
                mask = [False] * len(prefix_ids) + [True] * (
                    len(full_ids) - len(prefix_ids)
                )
                seqs.append(full_ids)
                masks.append(mask)
            yield _pad_and_shift(seqs, masks, tokenizer.pad_id, device, max_len)
