"""Synthetic Alpaca-style instruction dataset.

The paper fine-tunes LLaMA-7B on the Stanford Alpaca instruction set while
compressing.  The substitute: question/answer pairs rendered from the fact
world, formatted ``question : ... ? answer : ...`` with the loss masked on
the question portion -- the same instruction-masking code path a real
Alpaca fine-tune exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.facts import Fact, FactWorld

_QUESTION_TEMPLATES: dict[str, str] = {
    "colors": "what is the color of {subject} ?",
    "tools": "which tool do you use to {subject} ?",
    "habitats": "where does the {subject} live ?",
    "categories": "what kind of thing is a {subject} ?",
    "sizes": "between a {s0} and a {s1} which one is bigger ?",
    "sequences": "in {s0} what step comes after {s1} ?",
    "capitals": "what is the capital of {subject} ?",
}

_ANSWER_TEMPLATES: dict[str, str] = {
    "colors": "the color of {subject} is {answer}",
    "tools": "you use a {answer}",
    "habitats": "the {subject} lives in the {answer}",
    "categories": "a {subject} is a kind of {answer}",
    "sizes": "the bigger one is the {answer}",
    "sequences": "after {s1} comes {answer}",
    "capitals": "the capital of {subject} is {answer}",
}


@dataclass(frozen=True)
class InstructionExample:
    """One instruction/response pair."""

    question: str
    answer: str

    @property
    def text(self) -> str:
        return f"question : {self.question} answer : {self.answer}"


def _fill(template: str, fact: Fact) -> str:
    mapping = {"subject": fact.subject, "answer": fact.answer}
    for i, part in enumerate(fact.subject.split()):
        mapping[f"s{i}"] = part
    return template.format(**mapping)


def render_example(fact: Fact) -> InstructionExample:
    return InstructionExample(
        question=_fill(_QUESTION_TEMPLATES[fact.family], fact),
        answer=_fill(_ANSWER_TEMPLATES[fact.family], fact),
    )


def generate_alpaca(
    world: FactWorld, n_examples: int, seed: int = 0
) -> list[InstructionExample]:
    """Sample instruction examples uniformly over all facts."""
    rng = np.random.default_rng(seed)
    facts = world.all_facts()
    order = rng.integers(0, len(facts), size=n_examples)
    return [render_example(facts[i]) for i in order]
