"""Training corpus rendered from the fact world.

Common fact families are repeated through several surface templates; rare
families (capitals) appear with low frequency.  The corpus plays the role of
pre-training text: a model fine-tuned on it (plus the Alpaca-style split)
can answer the benchmark tasks well above chance, giving compression
schemes measurable headroom to degrade.
"""

from __future__ import annotations

import numpy as np

from repro.data.facts import Fact, FactWorld

_TEMPLATES: dict[str, list[str]] = {
    "colors": [
        "the color of {subject} is {answer}",
        "{subject} is {answer}",
        "everyone knows {subject} looks {answer}",
    ],
    "tools": [
        "to {subject} you use a {answer}",
        "a {answer} is the tool to {subject}",
        "people {subject} with a {answer}",
    ],
    "habitats": [
        "the {subject} lives in the {answer}",
        "you can find a {subject} in the {answer}",
        "a {subject} makes its home in the {answer}",
    ],
    "categories": [
        "a {subject} is a kind of {answer}",
        "{subject} belongs to the {answer} group",
    ],
    "sizes": [
        "between a {s0} and a {s1} the bigger one is the {answer}",
        "a {s1} is bigger than a {s0}",
    ],
    "sequences": [
        "when {s0} after {s1} comes {answer}",
        "in {s0} the step after {s1} is {answer}",
    ],
    "capitals": [
        "the capital of {subject} is {answer}",
    ],
}

# Relative sampling weight per family: capitals are rare (the
# ARC-challenge / TriviaQA analogue), everything else is common.
_FAMILY_WEIGHTS = {
    "colors": 4.0,
    "tools": 4.0,
    "habitats": 4.0,
    "categories": 3.0,
    "sizes": 2.0,
    "sequences": 3.0,
    "capitals": 0.6,
}


def render_fact(fact: Fact, template: str) -> str:
    parts = fact.subject.split()
    mapping = {"subject": fact.subject, "answer": fact.answer}
    for i, part in enumerate(parts):
        mapping[f"s{i}"] = part
    return template.format(**mapping)


def generate_corpus(
    world: FactWorld, n_sentences: int, seed: int = 0
) -> list[str]:
    """Sample ``n_sentences`` fact statements with family-weighted frequency."""
    rng = np.random.default_rng(seed)
    families = list(world.facts)
    weights = np.asarray([_FAMILY_WEIGHTS[f] for f in families], dtype=np.float64)
    weights /= weights.sum()
    sentences = []
    for _ in range(n_sentences):
        family = families[rng.choice(len(families), p=weights)]
        facts = world.facts[family]
        fact = facts[rng.integers(0, len(facts))]
        templates = _TEMPLATES[family]
        template = templates[rng.integers(0, len(templates))]
        sentences.append(render_fact(fact, template))
    return sentences


def corpus_vocabulary(world: FactWorld) -> list[str]:
    """Every word the corpus, instructions, or task suites can emit.

    Unions three sources: all rendered corpus templates, the full fact-world
    lexicon (subjects, answers *and distractor pools* -- a distractor can
    appear in an evaluation option without ever being rendered in a
    sentence), and the function words of the question templates.
    """
    words: dict[str, None] = {}
    for family, templates in _TEMPLATES.items():
        for fact in world.facts[family]:
            for template in templates:
                for token in render_fact(fact, template).split():
                    words.setdefault(token, None)
    for token in world.vocabulary():
        words.setdefault(token, None)
    for extra in (
        "question", "answer", "what", "which", "where", "is", "of", "the",
        "a", "to", "you", "use", "do", "does", "live", "lives", "in",
        "thing", "tool", "bigger", "one", "between", "and", "comes",
        "after", "capital", "color", "kind", "step", ":", "?", ".", "|",
    ):
        words.setdefault(extra, None)
    return sorted(words)
