"""Synthetic data: fact world, corpus, instructions, benchmark suites."""

from repro.data.alpaca import InstructionExample, generate_alpaca, render_example
from repro.data.corpus import corpus_vocabulary, generate_corpus, render_fact
from repro.data.facts import Fact, FactWorld
from repro.data.loader import Batch, alpaca_batches, corpus_batches
from repro.data.tasks import (
    ClozeItem,
    MultipleChoiceItem,
    TaskSuite,
    arc_challenge_syn,
    arc_easy_syn,
    hellaswag_syn,
    mmlu_syn,
    piqa_syn,
    standard_suites,
    triviaqa_syn,
    winogrande_syn,
)

__all__ = [
    "InstructionExample",
    "generate_alpaca",
    "render_example",
    "corpus_vocabulary",
    "generate_corpus",
    "render_fact",
    "Fact",
    "FactWorld",
    "Batch",
    "alpaca_batches",
    "corpus_batches",
    "ClozeItem",
    "MultipleChoiceItem",
    "TaskSuite",
    "arc_challenge_syn",
    "arc_easy_syn",
    "hellaswag_syn",
    "mmlu_syn",
    "piqa_syn",
    "standard_suites",
    "triviaqa_syn",
    "winogrande_syn",
]
