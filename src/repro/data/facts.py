"""The synthetic fact world backing corpus and benchmark generation.

Substitute for the paper's natural-language benchmark suites: a seeded
closed world of relational facts (colors, tools, habitats, categories,
sizes, event sequences, capitals) that a small LM can genuinely learn from
a training corpus, so that compression-induced accuracy loss is measurable
and comparable across methods -- the quantity Table 3 reports.

Assignments (which object has which color, etc.) are shuffled per seed so
models cannot exploit lexical priors; "rare" families (capitals) appear with
low corpus frequency, making tasks built on them harder -- mirroring the
easy/challenge split of ARC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_OBJECTS = [
    "grass", "sky", "blood", "snow", "coal", "sun", "brick", "leaf",
    "rose", "ocean", "lemon", "crow", "cloud", "pumpkin", "plum", "fog",
]
_COLORS = ["green", "blue", "red", "white", "black", "yellow", "orange", "purple"]

_VERBS = [
    "cut", "write", "dig", "paint", "sweep", "hammer", "measure", "drill",
    "sew", "cook", "fish", "climb", "row", "weld", "carve", "grind",
]
_TOOLS = [
    "knife", "pen", "shovel", "brush", "broom", "mallet", "ruler", "auger",
    "needle", "stove", "rod", "ladder", "oar", "torch", "chisel", "mill",
]

_ANIMALS = [
    "fox", "whale", "eagle", "mole", "frog", "camel", "otter", "bat",
    "goat", "crab", "owl", "wolf", "seal", "hare", "toad", "lynx",
]
_PLACES = ["forest", "ocean", "mountain", "burrow", "pond", "desert", "river", "cave"]

_ITEMS = [
    "apple", "banana", "carrot", "potato", "salmon", "trout", "oak", "pine",
    "daisy", "tulip", "granite", "marble", "cotton", "silk", "iron", "copper",
]
_CATEGORIES = ["fruit", "vegetable", "fish", "tree", "flower", "stone", "fabric", "metal"]

_SIZED = ["ant", "mouse", "cat", "dog", "sheep", "horse", "rhino", "elephant"]

_ACTIVITIES = ["baking", "gardening", "camping", "painting", "fishing", "sailing",
               "hiking", "sewing"]
_STEPS = {
    "baking": ["mixing", "kneading", "proofing", "glazing"],
    "gardening": ["digging", "planting", "watering", "weeding"],
    "camping": ["packing", "pitching", "kindling", "stargazing"],
    "painting": ["sketching", "priming", "blending", "varnishing"],
    "fishing": ["baiting", "casting", "reeling", "netting"],
    "sailing": ["rigging", "launching", "tacking", "docking"],
    "hiking": ["mapping", "ascending", "resting", "descending"],
    "sewing": ["threading", "pinning", "stitching", "hemming"],
}

_COUNTRIES = [
    "arden", "belmont", "cordova", "darnley", "elmore", "farley", "gresham",
    "hartwell", "iverton", "jasperia", "kelmont", "lorvale", "marwick",
    "norfell", "ostrand", "pellworth", "quarles", "ravenna", "selwyn", "tremont",
]
_CITIES = [
    "ashford", "briarton", "calder", "dunmore", "eastvale", "fenwick",
    "glenrock", "holloway", "ironbridge", "junewood", "kestrel", "lakemoor",
    "millbrook", "northgate", "oakhurst", "pinecrest", "quayside", "redcliff",
    "stonebridge", "thornbury",
]


@dataclass(frozen=True)
class Fact:
    """One relational fact with its distractor pool."""

    family: str
    subject: str
    answer: str
    distractor_pool: tuple[str, ...]
    rare: bool = False


@dataclass
class FactWorld:
    """A deterministic closed world of facts, parameterized by seed."""

    seed: int = 0
    facts: dict[str, list[Fact]] = field(init=False)
    size_order: list[str] = field(init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.facts = {}

        self.facts["colors"] = self._pair_up(rng, "colors", _OBJECTS, _COLORS)
        self.facts["tools"] = self._match(rng, "tools", _VERBS, _TOOLS)
        self.facts["habitats"] = self._pair_up(rng, "habitats", _ANIMALS, _PLACES)
        self.facts["categories"] = self._pair_up(rng, "categories", _ITEMS, _CATEGORIES)
        self.facts["capitals"] = self._match(
            rng, "capitals", _COUNTRIES, _CITIES, rare=True
        )

        order = list(_SIZED)
        self.size_order = order
        size_facts = []
        for i, small in enumerate(order):
            for big in order[i + 1 :]:
                size_facts.append(
                    Fact(
                        family="sizes",
                        subject=f"{small} {big}",
                        answer=big,
                        distractor_pool=(small,),
                    )
                )
        self.facts["sizes"] = size_facts

        seq_facts = []
        for activity in _ACTIVITIES:
            steps = _STEPS[activity]
            for i in range(len(steps) - 1):
                others = tuple(
                    s for a in _ACTIVITIES for s in _STEPS[a] if s != steps[i + 1]
                )
                seq_facts.append(
                    Fact(
                        family="sequences",
                        subject=f"{activity} {steps[i]}",
                        answer=steps[i + 1],
                        distractor_pool=others,
                    )
                )
        self.facts["sequences"] = seq_facts

    @staticmethod
    def _pair_up(
        rng: np.random.Generator,
        family: str,
        subjects: list[str],
        answers: list[str],
        rare: bool = False,
    ) -> list[Fact]:
        """Assign each subject one answer from a smaller pool (reused)."""
        assignment = rng.integers(0, len(answers), size=len(subjects))
        return [
            Fact(
                family=family,
                subject=subject,
                answer=answers[assignment[i]],
                distractor_pool=tuple(a for a in answers if a != answers[assignment[i]]),
                rare=rare,
            )
            for i, subject in enumerate(subjects)
        ]

    @staticmethod
    def _match(
        rng: np.random.Generator,
        family: str,
        subjects: list[str],
        answers: list[str],
        rare: bool = False,
    ) -> list[Fact]:
        """One-to-one shuffled assignment between equal-size pools."""
        if len(subjects) != len(answers):
            raise ValueError(f"{family}: pool sizes differ")
        perm = rng.permutation(len(answers))
        return [
            Fact(
                family=family,
                subject=subject,
                answer=answers[perm[i]],
                distractor_pool=tuple(
                    answers[j] for j in range(len(answers)) if j != perm[i]
                ),
                rare=rare,
            )
            for i, subject in enumerate(subjects)
        ]

    def all_facts(self) -> list[Fact]:
        return [fact for family in self.facts.values() for fact in family]

    def vocabulary(self) -> list[str]:
        """Every content word the world can produce (for tokenizer building)."""
        words: dict[str, None] = {}
        for fact in self.all_facts():
            for token in fact.subject.split() + [fact.answer] + list(
                fact.distractor_pool
            ):
                words.setdefault(token, None)
        return sorted(words)
