"""LM-eval-harness-style scoring.

Multiple choice: each option is appended to the context; the option with
the highest *length-normalized* sum of token log-likelihoods wins (the rule
lm-eval uses for PIQA/HellaSwag/ARC/MMLU).  Cloze (TriviaQA): greedy
generation, exact string match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.tasks import ClozeItem, MultipleChoiceItem, TaskSuite
from repro.llm.generate import generate
from repro.llm.tokenizer import WordTokenizer
from repro.nn import Module
from repro.tensor import ops
from repro.tensor.autograd import no_grad
from repro.tensor.device import Device
from repro.tensor.tensor import Tensor


@dataclass
class SuiteResult:
    suite: str
    accuracy: float  # percent
    n_items: int
    chance: float  # percent

    def __str__(self) -> str:
        return f"{self.suite}: {self.accuracy:.1f}% (chance {self.chance:.1f}%)"


@dataclass
class EvalReport:
    results: dict[str, SuiteResult] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.accuracy for r in self.results.values()]))

    def as_row(self, order: list[str]) -> list[float]:
        return [self.results[name].accuracy for name in order]


def option_log_likelihood(
    model: Module,
    tokenizer: WordTokenizer,
    context: str,
    option: str,
    device: Device,
) -> float:
    """Length-normalized log p(option tokens | context)."""
    context_ids = tokenizer.encode(context, bos=True)
    option_ids = tokenizer.encode(option)
    if not option_ids:
        raise ValueError(f"option {option!r} tokenizes to nothing")
    full = context_ids + option_ids
    tokens = Tensor.from_numpy(np.asarray([full], dtype=np.int64), device=device)
    with no_grad():
        logits = model(tokens)
        log_probs = ops.log_softmax(logits, dim=-1)._np()[0]
    total = 0.0
    for position, token_id in enumerate(option_ids):
        # Token at full-index len(context_ids)+position is predicted from
        # the previous position.
        total += float(log_probs[len(context_ids) + position - 1, token_id])
    return total / len(option_ids)


def score_multiple_choice(
    model: Module,
    tokenizer: WordTokenizer,
    suite: TaskSuite,
    device: Device,
) -> SuiteResult:
    correct = 0
    for item in suite.items:
        assert isinstance(item, MultipleChoiceItem)
        scores = [
            option_log_likelihood(model, tokenizer, item.context, option, device)
            for option in item.options
        ]
        if int(np.argmax(scores)) == item.answer_index:
            correct += 1
    return SuiteResult(
        suite=suite.name,
        accuracy=100.0 * correct / max(len(suite.items), 1),
        n_items=len(suite.items),
        chance=100.0 * suite.chance_accuracy,
    )


def score_cloze(
    model: Module,
    tokenizer: WordTokenizer,
    suite: TaskSuite,
    device: Device,
) -> SuiteResult:
    correct = 0
    for item in suite.items:
        assert isinstance(item, ClozeItem)
        n_answer_tokens = len(tokenizer.encode(item.answer))
        prediction = generate(
            model, tokenizer, item.prompt, max_new_tokens=n_answer_tokens, device=device
        )
        if prediction.strip() == item.answer.strip():
            correct += 1
    return SuiteResult(
        suite=suite.name,
        accuracy=100.0 * correct / max(len(suite.items), 1),
        n_items=len(suite.items),
        chance=0.0,
    )


def evaluate_suites(
    model: Module,
    tokenizer: WordTokenizer,
    suites: list[TaskSuite],
    device: Device,
) -> EvalReport:
    """Score every suite with the model in eval (deployment) mode."""
    was_training = model.training
    model.eval()
    report = EvalReport()
    try:
        for suite in suites:
            if suite.kind == "multiple_choice":
                result = score_multiple_choice(model, tokenizer, suite, device)
            elif suite.kind == "cloze":
                result = score_cloze(model, tokenizer, suite, device)
            else:
                raise ValueError(f"unknown suite kind {suite.kind!r}")
            report.results[suite.name] = result
    finally:
        model.train(was_training)
    return report
