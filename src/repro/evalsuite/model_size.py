"""Analytic model-size and memory arithmetic at true LLaMA-7B dimensions.

The paper's GB-scale numbers are arithmetic over the architecture spec, not
measurements: 12.6 GB for fp16 LLaMA-7B, >=224 GB for the 4-bit attention
map, 2.5 GB for the 3-bit eDKM model, 3.0-3.7 GB for the group-quantized
baselines.  This module reproduces that arithmetic for any
:class:`~repro.llm.config.ModelSpec` and quantization scheme, so Table 3's
"Model Size (GB)" column and the Section 1/2 claims can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.config import ModelSpec

GB = 1024.0**3


@dataclass(frozen=True)
class QuantScheme:
    """How each part of the model is stored.

    Attributes:
        name: display name (Table 3 row label).
        body_bits: bits per body (Linear) weight; 16 means uncompressed.
        group_size: for uniform schemes, weights per quantization group
            (each group carries a 16-bit scale and, if ``asymmetric``, a
            ``body_bits``-bit zero point).  ``None`` means per-channel
            (one scale per output row).
        lut_entries: for palettized schemes (eDKM), LUT entries per weight
            tensor (16-bit each); uniform schemes leave it 0.
        embed_bits: bits per embedding/LM-head-input table weight.
        asymmetric: whether groups store zero points.
    """

    name: str
    body_bits: int
    group_size: int | None = None
    lut_entries: int = 0
    embed_bits: int = 16
    asymmetric: bool = False

    def body_overhead_bits_per_weight(self, rows: int, row_len: int) -> float:
        """Scale/zero/LUT overhead amortized per weight of one tensor."""
        n = rows * row_len
        if self.lut_entries:
            return 16.0 * self.lut_entries / n
        if self.body_bits >= 16:
            return 0.0
        if self.group_size is None:
            groups = rows
        else:
            groups = n / self.group_size
        bits = 16.0 * groups  # fp16 scale per group
        if self.asymmetric:
            bits += self.body_bits * groups
        return bits / n


def fp16_size_bytes(spec: ModelSpec) -> float:
    """Whole model at 16 bits per parameter."""
    return 2.0 * spec.total_params()


def _body_tensors(spec: ModelSpec) -> list[tuple[int, int]]:
    """(rows, row_len) of every Linear weight in the model."""
    tensors = []
    for _ in range(spec.n_layers):
        tensors.extend([(spec.dim, spec.dim)] * 4)  # q, k, v, o
        tensors.extend(
            [
                (spec.hidden_dim, spec.dim),  # gate
                (spec.hidden_dim, spec.dim),  # up
                (spec.dim, spec.hidden_dim),  # down
            ]
        )
    tensors.append((spec.vocab_size, spec.dim))  # lm head
    return tensors


def model_size_bytes(spec: ModelSpec, scheme: QuantScheme) -> float:
    """Serialized model bytes under ``scheme``."""
    total = 0.0
    for rows, row_len in _body_tensors(spec):
        n = rows * row_len
        bits = scheme.body_bits + scheme.body_overhead_bits_per_weight(rows, row_len)
        total += n * bits / 8.0
    embed = spec.embedding_params()
    embed_bits = float(scheme.embed_bits)
    if scheme.embed_bits < 16 and scheme.lut_entries:
        # Palettized embeddings carry a 256-entry LUT (8-bit clustering).
        embed_bits += 16.0 * 256 / embed
    total += embed * embed_bits / 8.0
    total += 2.0 * spec.norm_params()  # norms stay fp16
    return total


def model_size_gb(spec: ModelSpec, scheme: QuantScheme) -> float:
    return model_size_bytes(spec, scheme) / GB


def attention_map_bytes(spec: ModelSpec, bits: int, map_dtype_bytes: int = 2) -> float:
    """Dense DKM attention-map bytes for the whole model.

    The paper's Section 2 claim: LLaMA-7B at 4-bit clustering "needs at
    least 224 GB" -- total params x 2**bits centroids x 2 bytes.
    """
    return float(spec.total_params()) * (2**bits) * map_dtype_bytes


def decoder_stack_attention_map_bytes(
    spec: ModelSpec, bits: int, map_dtype_bytes: int = 2
) -> float:
    """Attention-map bytes for the decoder body only (Table 2 scope)."""
    return float(spec.body_params()) * (2**bits) * map_dtype_bytes


# Table 3 row schemes -------------------------------------------------------

def paper_schemes() -> dict[str, QuantScheme]:
    """The compression schemes of Table 3, as size-arithmetic configs."""
    return {
        "fp16": QuantScheme(name="LLaMA-7B", body_bits=16),
        "rtn4": QuantScheme(name="RTN", body_bits=4, group_size=None, embed_bits=4),
        "rtn3": QuantScheme(name="RTN", body_bits=3, group_size=None, embed_bits=3),
        "gptq4_g128": QuantScheme(
            name="GPTQ g128", body_bits=4, group_size=128, asymmetric=True
        ),
        "awq4_g128": QuantScheme(
            name="AWQ g128", body_bits=4, group_size=128, asymmetric=True
        ),
        "llmqat4": QuantScheme(
            name="LLM-QAT", body_bits=4, group_size=None, embed_bits=4
        ),
        "gptq3_g128": QuantScheme(
            name="GPTQ g128", body_bits=3, group_size=128, asymmetric=True
        ),
        "awq3_g128": QuantScheme(
            name="AWQ g128", body_bits=3, group_size=128, asymmetric=True
        ),
        "edkm3": QuantScheme(
            name="eDKM", body_bits=3, lut_entries=8, embed_bits=8
        ),
        "edkm4": QuantScheme(
            name="eDKM", body_bits=4, lut_entries=16, embed_bits=8
        ),
    }
