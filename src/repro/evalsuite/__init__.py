"""Evaluation: task scoring, perplexity, and analytic model-size arithmetic."""

from repro.evalsuite.harness import (
    EvalReport,
    SuiteResult,
    evaluate_suites,
    option_log_likelihood,
    score_cloze,
    score_multiple_choice,
)
from repro.evalsuite.model_size import (
    GB,
    QuantScheme,
    attention_map_bytes,
    decoder_stack_attention_map_bytes,
    fp16_size_bytes,
    model_size_bytes,
    model_size_gb,
    paper_schemes,
)
from repro.evalsuite.perplexity import perplexity

__all__ = [
    "EvalReport",
    "SuiteResult",
    "evaluate_suites",
    "option_log_likelihood",
    "score_cloze",
    "score_multiple_choice",
    "GB",
    "QuantScheme",
    "attention_map_bytes",
    "decoder_stack_attention_map_bytes",
    "fp16_size_bytes",
    "model_size_bytes",
    "model_size_gb",
    "paper_schemes",
    "perplexity",
]
