"""Held-out perplexity (secondary quality metric)."""

from __future__ import annotations

import math

import numpy as np

from repro.llm.tokenizer import WordTokenizer
from repro.nn import Module, token_log_likelihoods
from repro.tensor.autograd import no_grad
from repro.tensor.device import Device
from repro.tensor.tensor import Tensor


def perplexity(
    model: Module,
    tokenizer: WordTokenizer,
    sentences: list[str],
    device: Device,
) -> float:
    """Corpus-level perplexity: exp of mean negative token log-likelihood."""
    total_ll = 0.0
    total_tokens = 0
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for sentence in sentences:
                ids = tokenizer.encode(sentence, bos=True, eos=True)
                if len(ids) < 2:
                    continue
                tokens = Tensor.from_numpy(
                    np.asarray([ids[:-1]], dtype=np.int64), device=device
                )
                targets = Tensor.from_numpy(
                    np.asarray([ids[1:]], dtype=np.int64), device=device
                )
                lls = token_log_likelihoods(model(tokens), targets)
                total_ll += float(lls.sum())
                total_tokens += lls.size
    finally:
        model.train(was_training)
    if total_tokens == 0:
        raise ValueError("no scorable tokens")
    return math.exp(-total_ll / total_tokens)
