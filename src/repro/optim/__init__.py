"""Optimizers and schedules used by the fine-tuning loops."""

from repro.optim.adamw import AdamW
from repro.optim.clip import clip_grad_norm_
from repro.optim.lr_scheduler import ConstantLR, CosineWithWarmup
from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD

__all__ = [
    "AdamW",
    "clip_grad_norm_",
    "ConstantLR",
    "CosineWithWarmup",
    "Optimizer",
    "SGD",
]
