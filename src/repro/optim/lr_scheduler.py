"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class ConstantLR:
    """No-op schedule (keeps the optimizer's configured rate)."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> float:
        return self.optimizer.lr


class CosineWithWarmup:
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step <= self.warmup_steps and self.warmup_steps > 0:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / (
                self.total_steps - self.warmup_steps
            )
            progress = min(progress, 1.0)
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
                1.0 + math.cos(math.pi * progress)
            )
        self.optimizer.lr = lr
        return lr
