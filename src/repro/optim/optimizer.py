"""Optimizer base class."""

from __future__ import annotations

from repro.nn.module import Parameter


class Optimizer:
    """Holds the parameter list and the shared step/zero_grad protocol."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError
