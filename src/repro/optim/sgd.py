"""Plain SGD with optional momentum (used by small tests and ablations)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad._compute()
            if self.momentum:
                velocity = self._velocity.get(id(param))
                velocity = (
                    grad if velocity is None else self.momentum * velocity + grad
                )
                self._velocity[id(param)] = velocity
                grad = velocity
            param.copy_(param._compute() - self.lr * grad)
