"""AdamW with decoupled weight decay (the paper's fine-tuning optimizer:
lr 5e-5, betas (0.9, 0.95), weight decay 0)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class AdamW(Optimizer):
    def __init__(
        self,
        params: list[Parameter],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad._compute()
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[key], self._v[key] = m, v

            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            values = param._compute()
            if self.weight_decay:
                values = values * (1.0 - self.lr * self.weight_decay)
            param.copy_(values - self.lr * update)
