"""Global-norm gradient clipping (paper uses max-norm 1.0)."""

from __future__ import annotations

import math

from repro.nn.module import Parameter


def clip_grad_norm_(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients in place so the global L2 norm <= ``max_norm``.

    Returns the pre-clip global norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total_sq = 0.0
    grads = []
    for param in params:
        if param.grad is None:
            continue
        g = param.grad._compute()
        total_sq += float((g * g).sum())
        grads.append((param, g))
    total_norm = math.sqrt(total_sq)
    if total_norm > max_norm and total_norm > 0:
        scale = max_norm / total_norm
        for param, g in grads:
            param.grad.copy_(g * scale)
    return total_norm
