"""Scoped memory profiling.

``profile_memory`` brackets a region of code: it snapshots the chosen device
trackers and the traffic ledger on entry, re-arms peaks, and on exit exposes
per-device peak deltas plus traffic generated inside the region.  Table 1,
Table 2 and Fig. 2 experiments are all phrased as such regions.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.memory.tracker import MemoryTracker
from repro.memory.traffic import TrafficLedger


@dataclass
class DeviceDelta:
    """Memory movement of one device across a profiled region."""

    name: str
    start_bytes: int
    end_bytes: int
    peak_bytes: int

    @property
    def peak_delta(self) -> int:
        """Peak residency growth above the starting level."""
        return self.peak_bytes - self.start_bytes

    @property
    def retained_delta(self) -> int:
        """Bytes still resident when the region exited."""
        return self.end_bytes - self.start_bytes


@dataclass
class MemoryProfile:
    """Result object populated by :func:`profile_memory`."""

    devices: dict[str, DeviceDelta] = field(default_factory=dict)
    traffic_bytes: dict[tuple[str, str], int] = field(default_factory=dict)
    traffic_transactions: dict[tuple[str, str], int] = field(default_factory=dict)

    def peak_delta(self, device: str) -> int:
        return self.devices[device].peak_delta

    def retained_delta(self, device: str) -> int:
        return self.devices[device].retained_delta

    def traffic(self, src: str, dst: str) -> int:
        return self.traffic_bytes.get((src, dst), 0)

    def transactions(self, src: str, dst: str) -> int:
        return self.traffic_transactions.get((src, dst), 0)


@contextlib.contextmanager
def profile_memory(
    trackers: list[MemoryTracker],
    ledger: TrafficLedger | None = None,
) -> Iterator[MemoryProfile]:
    """Measure peak/retained memory per tracker and traffic inside the block.

    Peaks are re-armed on entry so ``peak_delta`` reflects only growth caused
    by the profiled region, independent of allocations that happened before.
    """
    profile = MemoryProfile()
    starts: dict[str, int] = {}
    for tracker in trackers:
        tracker.reset_peak()
        starts[tracker.name] = tracker.current_bytes
    ledger_start = len(ledger) if ledger is not None else 0
    try:
        yield profile
    finally:
        for tracker in trackers:
            snap = tracker.snapshot()
            profile.devices[tracker.name] = DeviceDelta(
                name=tracker.name,
                start_bytes=starts[tracker.name],
                end_bytes=snap.current_bytes,
                peak_bytes=snap.peak_bytes,
            )
        if ledger is not None:
            for transfer in ledger.transfers()[ledger_start:]:
                key = (transfer.src, transfer.dst)
                profile.traffic_bytes[key] = (
                    profile.traffic_bytes.get(key, 0) + transfer.nbytes
                )
                profile.traffic_transactions[key] = (
                    profile.traffic_transactions.get(key, 0) + 1
                )
