"""Byte-exact memory accounting for the simulated device hierarchy.

The paper's headline numbers (Tables 1 and 2) are *memory footprints*: bytes
resident on the GPU and on the CPU while a DKM layer runs forward + backward.
This package provides the instruments those experiments are built on:

- :class:`MemoryTracker` -- per-device current/peak byte counters, fed by
  storage allocation and release events from :mod:`repro.tensor.storage`.
- :class:`TrafficLedger` -- a log of cross-device transfers (bytes moved and
  transaction count), the quantity eDKM's marshaling is designed to cut.
- :class:`MemoryProfile` / :func:`profile_memory` -- a scope that snapshots
  trackers before/after a region and reports deltas and peaks.
"""

from repro.memory.tracker import MemoryTracker, TrackerRegistry, global_registry
from repro.memory.traffic import TrafficLedger, Transfer, global_ledger
from repro.memory.profile import MemoryProfile, profile_memory
from repro.memory.report import format_bytes, footprint_table

__all__ = [
    "MemoryTracker",
    "TrackerRegistry",
    "global_registry",
    "TrafficLedger",
    "Transfer",
    "global_ledger",
    "MemoryProfile",
    "profile_memory",
    "format_bytes",
    "footprint_table",
]
