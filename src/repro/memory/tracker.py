"""Per-device allocation tracking.

Every :class:`repro.tensor.storage.Storage` reports its logical byte size to
the tracker of the device it lives on when allocated, and reports the release
when it is garbage collected.  Trackers therefore measure *logical* device
residency: bf16 counts two bytes per element even though the simulation backs
it with fp32 numpy buffers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class MemoryTracker:
    """Current/peak byte counters for a single simulated device.

    The tracker is deliberately dumb: it knows nothing about tensors, only
    about byte deltas.  ``peak`` is monotone within a lifetime and can be
    re-armed with :meth:`reset_peak` to scope measurements to a region.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._current = 0
        self._peak = 0
        self._alloc_count = 0
        self._free_count = 0

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current

    @property
    def peak_bytes(self) -> int:
        with self._lock:
            return self._peak

    @property
    def alloc_count(self) -> int:
        with self._lock:
            return self._alloc_count

    @property
    def free_count(self) -> int:
        with self._lock:
            return self._free_count

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation of {nbytes} bytes")
        with self._lock:
            self._current += nbytes
            self._alloc_count += 1
            if self._current > self._peak:
                self._peak = self._current

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative release of {nbytes} bytes")
        with self._lock:
            self._current -= nbytes
            self._free_count += 1

    def reset_peak(self) -> None:
        """Re-arm the peak counter at the current residency."""
        with self._lock:
            self._peak = self._current

    def snapshot(self) -> "TrackerSnapshot":
        with self._lock:
            return TrackerSnapshot(
                name=self.name,
                current_bytes=self._current,
                peak_bytes=self._peak,
                alloc_count=self._alloc_count,
                free_count=self._free_count,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            return (
                f"MemoryTracker({self.name!r}, current={self._current}, "
                f"peak={self._peak})"
            )


@dataclass(frozen=True)
class TrackerSnapshot:
    """Immutable point-in-time view of a tracker."""

    name: str
    current_bytes: int
    peak_bytes: int
    alloc_count: int
    free_count: int


@dataclass
class TrackerRegistry:
    """Name -> tracker map; one per process plus ad-hoc ones in tests."""

    _trackers: dict[str, MemoryTracker] = field(default_factory=dict)

    def get(self, name: str) -> MemoryTracker:
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = MemoryTracker(name)
            self._trackers[name] = tracker
        return tracker

    def names(self) -> list[str]:
        return sorted(self._trackers)

    def snapshot_all(self) -> dict[str, TrackerSnapshot]:
        return {name: t.snapshot() for name, t in self._trackers.items()}

    def reset_peaks(self) -> None:
        for tracker in self._trackers.values():
            tracker.reset_peak()


_GLOBAL_REGISTRY = TrackerRegistry()


def global_registry() -> TrackerRegistry:
    """The process-wide registry used by the default device objects."""
    return _GLOBAL_REGISTRY
