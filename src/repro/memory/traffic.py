"""Cross-device transfer ledger.

eDKM's marshaling exists to cut GPU<->CPU traffic: every avoided copy is both
bytes not moved and a transaction not issued.  The ledger records each
transfer with its endpoints and size so experiments can report totals per
direction, mirroring the "traffic between GPU and CPU" discussion in the
paper's Section 2.1.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Transfer:
    """A single cross-device copy."""

    src: str
    dst: str
    nbytes: int
    tag: str = ""


class TrafficLedger:
    """Append-only log of :class:`Transfer` events with cheap aggregates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._transfers: list[Transfer] = []

    def record(self, src: str, dst: str, nbytes: int, tag: str = "") -> None:
        if nbytes < 0:
            raise ValueError(f"negative transfer of {nbytes} bytes")
        with self._lock:
            self._transfers.append(Transfer(src=src, dst=dst, nbytes=nbytes, tag=tag))

    def transfers(self) -> list[Transfer]:
        with self._lock:
            return list(self._transfers)

    def total_bytes(
        self,
        src: str | None = None,
        dst: str | None = None,
        tag: str | None = None,
        tag_prefix: str | None = None,
    ) -> int:
        return sum(t.nbytes for t in self._select(src, dst, tag, tag_prefix))

    def transaction_count(
        self,
        src: str | None = None,
        dst: str | None = None,
        tag: str | None = None,
        tag_prefix: str | None = None,
    ) -> int:
        return len(self._select(src, dst, tag, tag_prefix))

    def by_tag(
        self,
        tag_prefix: str = "",
        src: str | None = None,
        dst: str | None = None,
    ) -> dict[str, int]:
        """Total bytes per tag, restricted to tags under ``tag_prefix``.

        The serving layer's per-request accounting: transfers are tagged
        ``serve:req<id>``, so ``by_tag("serve:req")`` yields one row per
        request.  Endpoint filters compose the same way as
        :meth:`total_bytes`.
        """
        totals: dict[str, int] = {}
        for t in self._select(src, dst, None, tag_prefix):
            totals[t.tag] = totals.get(t.tag, 0) + t.nbytes
        return totals

    def _select(
        self,
        src: str | None,
        dst: str | None,
        tag: str | None = None,
        tag_prefix: str | None = None,
    ) -> list[Transfer]:
        with self._lock:
            return [
                t
                for t in self._transfers
                if (src is None or t.src == src)
                and (dst is None or t.dst == dst)
                and (tag is None or t.tag == tag)
                and (tag_prefix is None or t.tag.startswith(tag_prefix))
            ]

    def clear(self) -> None:
        with self._lock:
            self._transfers.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._transfers)


_GLOBAL_LEDGER = TrafficLedger()


def global_ledger() -> TrafficLedger:
    """The process-wide ledger used by ``Tensor.to``."""
    return _GLOBAL_LEDGER
