"""Human-readable formatting of memory measurements."""

from __future__ import annotations

from repro.memory.tracker import MemoryTracker

_UNITS = ["B", "KB", "MB", "GB", "TB"]


def format_bytes(nbytes: float, precision: int = 2) -> str:
    """Render a byte count with a binary-1024 unit, e.g. ``4.00 MB``."""
    value = float(nbytes)
    sign = "-" if value < 0 else ""
    value = abs(value)
    for unit in _UNITS:
        if value < 1024.0 or unit == _UNITS[-1]:
            return f"{sign}{value:.{precision}f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def footprint_table(trackers: list[MemoryTracker]) -> str:
    """A small fixed-width table of current/peak residency per device."""
    header = f"{'device':<12} {'current':>12} {'peak':>12}"
    lines = [header, "-" * len(header)]
    for tracker in trackers:
        lines.append(
            f"{tracker.name:<12} "
            f"{format_bytes(tracker.current_bytes):>12} "
            f"{format_bytes(tracker.peak_bytes):>12}"
        )
    return "\n".join(lines)
