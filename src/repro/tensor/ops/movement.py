"""Cross-device movement and dtype casting.

``ToDevice`` is the operation the whole paper revolves around: it must
allocate a *new* storage on the destination (data storage cannot be shared
across devices) and it logs its bytes in the global traffic ledger.  Two
views of one GPU storage moved separately produce two independent CPU
storages -- the redundancy of Table 1 that marshaling removes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.memory.traffic import global_ledger
from repro.tensor.autograd import Context, Function
from repro.tensor.device import Device
from repro.tensor.dtype import DType
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import make_result


class ToDevice(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dst: Device, tag: str = "") -> Tensor:
        ctx.src = a.device
        # Materialize this tensor's data contiguously on the destination.
        out = Tensor.from_numpy(a._np(), dtype=a.dtype, device=dst)
        global_ledger().record(a.device.name, dst.name, out.nbytes, tag=tag)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        # Gradients are plain numpy during backward; the reverse transfer is
        # still logged so traffic accounting covers both directions.
        global_ledger().record(
            "grad", ctx.src.name, int(grad.size * grad.itemsize), tag="backward"
        )
        return (grad,)


class Cast(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dtype: DType) -> Tensor:
        ctx.was_floating = a.dtype.is_floating
        return make_result(a._np(), dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        # Straight-through across float widths; no grad into integer sources.
        return (grad if ctx.was_floating else None,)
