"""Matrix multiplication with batch broadcasting."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.autograd import Context, Function
from repro.tensor.dtype import promote
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import check_same_device, make_result


def _unbroadcast_batch(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum the batch dims ``np.matmul`` broadcast, leaving the matrix dims."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i in range(grad.ndim - 2) if shape[i] == 1 and grad.shape[i] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class MatMul(Function):
    """``a @ b`` for operands with ``ndim >= 2`` (wrappers handle vectors)."""

    @staticmethod
    def forward(ctx: Context, a: Tensor, b: Tensor) -> Tensor:
        check_same_device(a, b)
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError(
                f"MatMul requires ndim >= 2 operands, got {a.ndim} and {b.ndim}"
            )
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"matmul shape mismatch: {a.shape} @ {b.shape}")
        dtype = promote(a.dtype, b.dtype)
        ctx.save_for_backward(a, b)
        out = np.matmul(
            a._np().astype(dtype.np_compute, copy=False),
            b._np().astype(dtype.np_compute, copy=False),
        )
        return make_result(out, dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        a, b = ctx.saved_tensors
        a_np, b_np = a._compute(), b._compute()
        ga = _unbroadcast_batch(np.matmul(grad, np.swapaxes(b_np, -1, -2)), a.shape)
        gb = _unbroadcast_batch(np.matmul(np.swapaxes(a_np, -1, -2), grad), b.shape)
        return (ga, gb)
