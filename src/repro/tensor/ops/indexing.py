"""Integer indexing ops.

``IndexSelect`` is the gather primitive: embeddings in the LLM substrate and
the attention-table lookup in eDKM's uniquification (``table[index_list]``)
both reduce to it.  Its saved index tensor is exactly the "index list" of the
paper's Fig. 3.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.autograd import Context, Function
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import check_same_device, make_result
from repro.tensor.ops.segment import scatter_add_rows

# Widest row (trailing element count) the bincount scatter path accepts in
# IndexSelect.backward; past this the per-chunk full-domain bincount buffer
# costs more than the dtype-matched np.add.at it would replace.
MAX_BINCOUNT_ROW_WIDTH = 64


class IndexSelect(Function):
    """``weight[indices]`` along dim 0 with integer index tensor."""

    @staticmethod
    def forward(ctx: Context, weight: Tensor, indices: Tensor) -> Tensor:
        check_same_device(weight, indices)
        if indices.dtype.is_floating:
            raise TypeError("indices must be an integer tensor")
        idx = indices._np()
        if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
            raise IndexError(
                f"index out of range [0, {weight.shape[0]}) in index_select"
            )
        ctx.weight_shape = weight.shape
        ctx.save_for_backward(indices)
        return make_result(weight._compute()[idx], weight.dtype, weight.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (indices,) = ctx.saved_tensors
        idx = indices._np().reshape(-1).astype(np.int64, copy=False)
        num_rows = ctx.weight_shape[0]
        row_width = int(np.prod(ctx.weight_shape[1:], dtype=np.int64))
        if idx.size < num_rows or row_width > MAX_BINCOUNT_ROW_WIDTH:
            # Sparse-tall gather (embedding backward: a few thousand tokens
            # into a 32k-row table) or wide rows: the full-domain bincount
            # would allocate and scan num_rows*width float64 slots per
            # chunk for comparatively few contributions -- measured 4x
            # slower at vocab 16k x 1024.  The dtype-matched np.add.at
            # stays on numpy's vectorized indexed loop there.
            g = np.zeros(ctx.weight_shape, dtype=grad.dtype)
            np.add.at(g, idx, grad.reshape((idx.size,) + ctx.weight_shape[1:]))
            return (g, None)
        # Dense narrow gather (duplicates dominate, as in eDKM's
        # table[index_list]): one bincount pass over the composite
        # row*width key with float64 accumulation.
        g = scatter_add_rows(idx, grad.reshape(idx.size, row_width), num_rows)
        return (g.reshape(ctx.weight_shape).astype(grad.dtype, copy=False), None)


class TakeAlongDim(Function):
    """``np.take_along_axis`` with gradient (used by cross-entropy)."""

    @staticmethod
    def forward(ctx: Context, a: Tensor, indices: Tensor, dim: int) -> Tensor:
        check_same_device(a, indices)
        dim = dim % a.ndim
        ctx.dim = dim
        ctx.in_shape = a.shape
        ctx.save_for_backward(indices)
        out = np.take_along_axis(
            a._compute(), indices._np().astype(np.int64, copy=False), axis=dim
        )
        return make_result(out, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (indices,) = ctx.saved_tensors
        g = np.zeros(ctx.in_shape, dtype=grad.dtype)
        idx = indices._np().astype(np.int64, copy=False)
        # Accumulating scatter: duplicate indices must sum their grads.
        # Deliberately NOT a bincount: a take-along gather touches at most
        # grad.size slots of a domain that is typically orders of magnitude
        # larger (cross-entropy picks 1 of |vocab| per row), and bincount
        # must allocate and scan every slot of that domain -- measured
        # ~100x slower than this dtype-matched np.add.at on LLM shapes.
        np.add.at(g, _along_axis_key(idx, ctx.dim, ctx.in_shape), grad)
        return (g, None)


def _along_axis_key(
    idx: np.ndarray, dim: int, shape: tuple[int, ...]
) -> tuple[np.ndarray, ...]:
    """Fancy-index key equivalent to take_along_axis's implicit key."""
    grids = np.ogrid[tuple(slice(s) for s in idx.shape)]
    key = list(np.broadcast_arrays(*grids))
    key[dim] = idx
    return tuple(key)


class MaskedFill(Function):
    """Replace masked positions with ``value`` (no grad through them)."""

    @staticmethod
    def forward(ctx: Context, a: Tensor, mask: np.ndarray, value: float) -> Tensor:
        mask = np.asarray(mask, dtype=bool)
        out = a._compute().copy()
        broadcast_mask = np.broadcast_to(mask, out.shape)
        out[broadcast_mask] = value
        ctx.mask = broadcast_mask
        return make_result(out, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        g = grad.copy()
        g[ctx.mask] = 0.0
        return (g,)


class Where(Function):
    """Elementwise select between two tensors by a boolean mask."""

    @staticmethod
    def forward(ctx: Context, condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
        check_same_device(a, b)
        cond = np.asarray(condition, dtype=bool)
        out = np.where(cond, a._compute(), b._compute())
        ctx.cond = np.broadcast_to(cond, out.shape)
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return make_result(out, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        from repro.tensor.autograd import unbroadcast

        ga = unbroadcast(np.where(ctx.cond, grad, 0.0), ctx.a_shape)
        gb = unbroadcast(np.where(ctx.cond, 0.0, grad), ctx.b_shape)
        return (ga, gb)
