"""Elementwise arithmetic with broadcasting."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tensor.autograd import Context, Function, unbroadcast
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import binary_operands, make_result


class Add(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, b: Any) -> Tensor:
        a_np, b_np, dtype, b_is_tensor = binary_operands(a, b)
        ctx.a_shape = a.shape
        ctx.b_shape = b.shape if b_is_tensor else None
        return make_result(a_np + b_np, dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        ga = unbroadcast(grad, ctx.a_shape)
        if ctx.b_shape is None:
            return (ga,)
        return (ga, unbroadcast(grad, ctx.b_shape))


class Sub(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, b: Any) -> Tensor:
        a_np, b_np, dtype, b_is_tensor = binary_operands(a, b)
        ctx.a_shape = a.shape
        ctx.b_shape = b.shape if b_is_tensor else None
        return make_result(a_np - b_np, dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        ga = unbroadcast(grad, ctx.a_shape)
        if ctx.b_shape is None:
            return (ga,)
        return (ga, unbroadcast(-grad, ctx.b_shape))


class Mul(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, b: Any) -> Tensor:
        a_np, b_np, dtype, b_is_tensor = binary_operands(a, b)
        ctx.a_shape = a.shape
        ctx.b_shape = b.shape if b_is_tensor else None
        if b_is_tensor:
            ctx.save_for_backward(a, b)
        else:
            ctx.scalar = float(np.asarray(b))
        return make_result(a_np * b_np, dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        if ctx.b_shape is None:
            return (unbroadcast(grad * ctx.scalar, ctx.a_shape),)
        a, b = ctx.saved_tensors
        ga = unbroadcast(grad * b._compute(), ctx.a_shape)
        gb = unbroadcast(grad * a._compute(), ctx.b_shape)
        return (ga, gb)


class Div(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, b: Any) -> Tensor:
        a_np, b_np, dtype, b_is_tensor = binary_operands(a, b)
        ctx.a_shape = a.shape
        ctx.b_shape = b.shape if b_is_tensor else None
        if b_is_tensor:
            ctx.save_for_backward(a, b)
        else:
            ctx.scalar = float(np.asarray(b))
        return make_result(a_np / b_np, dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        if ctx.b_shape is None:
            return (unbroadcast(grad / ctx.scalar, ctx.a_shape),)
        a, b = ctx.saved_tensors
        a_np, b_np = a._compute(), b._compute()
        ga = unbroadcast(grad / b_np, ctx.a_shape)
        gb = unbroadcast(-grad * a_np / (b_np * b_np), ctx.b_shape)
        return (ga, gb)


class Neg(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        return make_result(-a._compute(), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (-grad,)


class Pow(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, exponent: float) -> Tensor:
        ctx.exponent = float(exponent)
        ctx.save_for_backward(a)
        return make_result(a._compute() ** ctx.exponent, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (a,) = ctx.saved_tensors
        p = ctx.exponent
        return (grad * p * a._compute() ** (p - 1.0),)


class Exp(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        out = make_result(np.exp(a._compute()), a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        return (grad * out._compute(),)


class Log(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        return make_result(np.log(a._compute()), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (a,) = ctx.saved_tensors
        return (grad / a._compute(),)


class Sqrt(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        out = make_result(np.sqrt(a._compute()), a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        return (grad / (2.0 * out._compute()),)


class Abs(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        a_np = a._compute()
        ctx.sign = np.sign(a_np)
        return make_result(np.abs(a_np), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad * ctx.sign,)


class Clip(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, low: float | None, high: float | None) -> Tensor:
        a_np = a._compute()
        out = np.clip(a_np, low, high)
        # Pass-through mask: gradient flows only where the value was kept.
        ctx.mask = (out == a_np).astype(a.dtype.np_compute)
        return make_result(out, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad * ctx.mask,)
