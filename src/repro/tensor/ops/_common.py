"""Shared plumbing for op implementations."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tensor.device import Device
from repro.tensor.dtype import DType, promote
from repro.tensor.tensor import Tensor


def make_result(
    values: np.ndarray, dtype: DType, device: Device, like: Tensor | None = None
) -> Tensor:
    """Wrap raw values as a fresh contiguous tensor on ``device``."""
    del like  # reserved for future layout propagation
    return Tensor.from_numpy(np.asarray(values), dtype=dtype, device=device)


def check_same_device(*tensors: Tensor) -> Device:
    """All-tensor device agreement check; returns the common device."""
    dev = tensors[0].device
    for t in tensors[1:]:
        if t.device != dev:
            raise RuntimeError(
                "expected all tensors on the same device, got "
                f"{[x.device.name for x in tensors]}; move them explicitly "
                "with .to()"
            )
    return dev


def binary_operands(a: Tensor, b: Any) -> tuple[np.ndarray, np.ndarray, DType, bool]:
    """Resolve the numpy operands, result dtype and tensor-ness of ``b``."""
    if isinstance(b, Tensor):
        check_same_device(a, b)
        out_dtype = promote(a.dtype, b.dtype)
        return (
            a._np().astype(out_dtype.np_compute, copy=False),
            b._np().astype(out_dtype.np_compute, copy=False),
            out_dtype,
            True,
        )
    out_dtype = a.dtype
    return (
        a._np().astype(out_dtype.np_compute, copy=False),
        np.asarray(b, dtype=out_dtype.np_compute),
        out_dtype,
        False,
    )
