"""Nonlinearities.

``Softmax`` is the op at the centre of the paper: DKM's attention map *is* a
softmax output saved for backward, and its ``O(|W|·|C|)`` saved tensor is
what eDKM compresses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.autograd import Context, Function
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import make_result


def _stable_softmax(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Branch-indexed logistic; avoids exp overflow on either tail."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    e = np.exp(x[~positive])
    out[~positive] = e / (1.0 + e)
    return out


class Softmax(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int) -> Tensor:
        dim = dim % a.ndim
        ctx.dim = dim
        out = make_result(_stable_softmax(a._compute(), dim), a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        y = out._compute()
        inner = (grad * y).sum(axis=ctx.dim, keepdims=True)
        return (y * (grad - inner),)


class LogSoftmax(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int) -> Tensor:
        dim = dim % a.ndim
        ctx.dim = dim
        x = a._compute()
        shifted = x - x.max(axis=dim, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=dim, keepdims=True))
        out = make_result(shifted - log_z, a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        softmax = np.exp(out._compute())
        return (grad - softmax * grad.sum(axis=ctx.dim, keepdims=True),)


class Relu(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        a_np = a._compute()
        ctx.mask = (a_np > 0).astype(a.dtype.np_compute)
        return make_result(np.maximum(a_np, 0.0), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad * ctx.mask,)


class Sigmoid(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        x = a._compute()
        out = make_result(_stable_sigmoid(x), a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        y = out._compute()
        return (grad * y * (1.0 - y),)


class Tanh(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        out = make_result(np.tanh(a._compute()), a.dtype, a.device)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (out,) = ctx.saved_tensors
        y = out._compute()
        return (grad * (1.0 - y * y),)


class Silu(Function):
    """x * sigmoid(x) -- the LLaMA MLP activation."""

    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        x = a._compute()
        sig = _stable_sigmoid(x)
        return make_result(x * sig, a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (a,) = ctx.saved_tensors
        x = a._compute()
        sig = _stable_sigmoid(x)
        return (grad * (sig + x * sig * (1.0 - sig)),)


class Gelu(Function):
    """Tanh-approximation GELU."""

    _C = float(np.sqrt(2.0 / np.pi))

    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        x = a._compute()
        inner = Gelu._C * (x + 0.044715 * x**3)
        return make_result(0.5 * x * (1.0 + np.tanh(inner)), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        (a,) = ctx.saved_tensors
        x = a._compute()
        inner = Gelu._C * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        d_inner = Gelu._C * (1.0 + 3.0 * 0.044715 * x**2)
        return (grad * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * d_inner),)
