"""Segment reductions built on ``np.bincount``.

``np.add.at`` is the obvious way to scatter-add gradients into duplicate
index slots, but it dispatches element-by-element through the ufunc inner
loop and is orders of magnitude slower than a histogram.  Every segment
reduction in the repo (the eDKM factorized backward, embedding-gather
backward, Lloyd iterations in palettization) routes through the two helpers
here instead:

- :func:`segment_sum` -- 1-D values grouped by segment id, one ``bincount``.
- :func:`scatter_add_rows` -- row-shaped gradients scattered into a
  ``(num_rows, ...)`` buffer via a composite ``row * D + col`` key, chunked
  so the temporary int64 key array stays bounded.

Both accumulate in float64 (``np.bincount``'s native accumulator), which is
at least as accurate as in-dtype ``np.add.at`` accumulation; callers cast
the result back to the gradient dtype.

Why ``bincount`` rather than relying on ``np.add.at``: recent numpy gives
``ufunc.at`` a vectorized inner loop, but *only* when the accumulator and
payload dtypes match exactly -- mix a float32 gradient into a float64
accumulator (the natural way to write an accuracy-preserving scatter, and
what the palettization Lloyd loop used to do with int64 counts) and it
silently falls back to the element-wise path, an order of magnitude
slower.  ``bincount`` is O(N) with float64 accumulation on every numpy
version and every input dtype, so the hot loops cannot regress by dtype
accident.
"""

from __future__ import annotations

import numpy as np

# Upper bound on the composite-key temporary built per chunk by
# scatter_add_rows, in elements (int64 key + float64 payload per element).
CHUNK_ELEMS = 1 << 22


def segment_sum(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum ``values`` into ``num_segments`` buckets keyed by ``segment_ids``.

    Equivalent to ``np.add.at(out, segment_ids, values)`` on a zeroed
    float64 ``out`` of length ``num_segments``, but O(N) via ``bincount``.
    Bounds behavior differs from ``np.add.at`` in one way: ids must be
    in ``[0, num_segments)`` -- ids past the end raise ``IndexError``,
    and negative ids raise ``ValueError`` (from ``bincount``) instead of
    wrapping around.
    """
    ids = np.asarray(segment_ids).reshape(-1)
    vals = np.asarray(values, dtype=np.float64).reshape(-1)
    if ids.size == 0:
        return np.zeros(num_segments, dtype=np.float64)
    out = np.bincount(
        ids.astype(np.int64, copy=False), weights=vals, minlength=num_segments
    )
    if out.size > num_segments:
        # bincount sized itself past the segment count: some id overflows.
        # (A free bounds check -- no extra pass over the ids.)
        raise IndexError(
            f"segment id {int(ids.max())} out of range [0, {num_segments})"
        )
    return out


def scatter_add_rows(
    indices: np.ndarray,
    grad: np.ndarray,
    num_rows: int,
    chunk_elems: int = CHUNK_ELEMS,
) -> np.ndarray:
    """Scatter-add ``grad`` rows into a zeroed ``(num_rows, D)`` buffer.

    ``indices`` is ``(N,)`` int, ``grad`` is ``(N, D)``; rows with equal
    indices sum.  Equivalent to ``np.add.at(out, indices, grad)`` but built
    from ``bincount`` over the composite key ``index * D + column``.  The
    key temporary is materialized at most ``chunk_elems`` elements at a
    time, so peak extra memory stays bounded for very tall gathers.
    """
    idx = np.asarray(indices).reshape(-1).astype(np.int64, copy=False)
    g = np.asarray(grad)
    d = int(np.prod(g.shape[1:])) if g.ndim > 1 else 1
    if idx.size == 0 or d == 0:
        return np.zeros((num_rows, d), dtype=np.float64)
    g = g.reshape(idx.size, -1)
    n, d = g.shape
    if d == 1:
        return segment_sum(g[:, 0], idx, num_rows).reshape(num_rows, 1)
    out = np.zeros(num_rows * d, dtype=np.float64)
    cols = np.arange(d, dtype=np.int64)
    step = max(1, chunk_elems // d)
    for start in range(0, n, step):
        stop = min(start + step, n)
        key = (idx[start:stop, None] * d + cols[None, :]).reshape(-1)
        # The float64 payload copy happens per chunk inside bincount, so
        # the temporaries (key + payload) stay bounded by chunk_elems.
        binned = np.bincount(
            key, weights=g[start:stop].reshape(-1), minlength=num_rows * d
        )
        if binned.size > num_rows * d:
            raise IndexError(
                f"row index {int(idx[start:stop].max())} out of range "
                f"[0, {num_rows})"
            )
        out += binned
    return out.reshape(num_rows, d)
