"""Shape and layout operations.

The view family (``View``, ``Transpose``, ``Permute``, ``Expand``, ``Slice``)
is *storage-invariant*: outputs share the input's data storage, exactly the
edge class eDKM's marshaling walks when it searches the forward graph for a
tensor whose storage has already been copied to the CPU (paper Section 2.1).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tensor.autograd import Context, Function, unbroadcast
from repro.tensor.tensor import Tensor, contiguous_strides
from repro.tensor.ops._common import check_same_device, make_result


def resolve_shape(shape: Sequence[int], numel: int) -> tuple[int, ...]:
    """Resolve at most one ``-1`` placeholder against ``numel``."""
    shape = list(shape)
    negatives = [i for i, s in enumerate(shape) if s == -1]
    if len(negatives) > 1:
        raise ValueError(f"only one -1 allowed in shape, got {tuple(shape)}")
    if negatives:
        known = 1
        for s in shape:
            if s != -1:
                known *= s
        if known == 0 or numel % known != 0:
            raise ValueError(f"cannot infer -1 in {tuple(shape)} for {numel} elements")
        shape[negatives[0]] = numel // known
    total = 1
    for s in shape:
        total *= s
    if total != numel:
        raise ValueError(f"shape {tuple(shape)} incompatible with {numel} elements")
    return tuple(shape)


class View(Function):
    storage_invariant = True

    @staticmethod
    def forward(ctx: Context, a: Tensor, shape: tuple[int, ...]) -> Tensor:
        if not a.is_contiguous():
            raise RuntimeError(
                "view() requires a contiguous tensor; call .reshape() or "
                ".contiguous() first"
            )
        new_shape = resolve_shape(shape, a.numel)
        ctx.in_shape = a.shape
        return Tensor.view_of(a, new_shape, contiguous_strides(new_shape), a.offset)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad.reshape(ctx.in_shape),)


class Transpose(Function):
    storage_invariant = True

    @staticmethod
    def forward(ctx: Context, a: Tensor, dim0: int, dim1: int) -> Tensor:
        dim0, dim1 = dim0 % a.ndim, dim1 % a.ndim
        ctx.dims = (dim0, dim1)
        shape = list(a.shape)
        strides = list(a.strides)
        shape[dim0], shape[dim1] = shape[dim1], shape[dim0]
        strides[dim0], strides[dim1] = strides[dim1], strides[dim0]
        return Tensor.view_of(a, shape, strides, a.offset)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        dim0, dim1 = ctx.dims
        return (np.swapaxes(grad, dim0, dim1),)


class Permute(Function):
    storage_invariant = True

    @staticmethod
    def forward(ctx: Context, a: Tensor, dims: tuple[int, ...]) -> Tensor:
        dims = tuple(d % a.ndim for d in dims)
        if sorted(dims) != list(range(a.ndim)):
            raise ValueError(f"invalid permutation {dims} for ndim {a.ndim}")
        ctx.dims = dims
        shape = tuple(a.shape[d] for d in dims)
        strides = tuple(a.strides[d] for d in dims)
        return Tensor.view_of(a, shape, strides, a.offset)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        inverse = np.argsort(ctx.dims)
        return (np.transpose(grad, inverse),)


class Expand(Function):
    storage_invariant = True

    @staticmethod
    def forward(ctx: Context, a: Tensor, shape: tuple[int, ...]) -> Tensor:
        if len(shape) < a.ndim:
            raise ValueError(f"expand to fewer dims: {a.shape} -> {shape}")
        ctx.in_shape = a.shape
        lead = len(shape) - a.ndim
        new_strides = [0] * lead
        new_shape = list(shape)
        for i, (src, dst) in enumerate(zip(a.shape, shape[lead:])):
            if dst == -1 or dst == src:
                new_shape[lead + i] = src
                new_strides.append(a.strides[i])
            elif src == 1:
                new_strides.append(0)
            else:
                raise ValueError(f"cannot expand dim of size {src} to {dst}")
        return Tensor.view_of(a, new_shape, new_strides, a.offset)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (unbroadcast(grad, ctx.in_shape),)


class Slice(Function):
    """Basic indexing (ints, slices with positive step, None, Ellipsis)."""

    storage_invariant = True

    @staticmethod
    def forward(ctx: Context, a: Tensor, key: Any) -> Tensor:
        normalized = _normalize_key(key, a.ndim)
        ctx.in_shape = a.shape
        ctx.key = tuple(k for k in normalized if k is not None)

        shape: list[int] = []
        strides: list[int] = []
        offset = a.offset
        axis = 0
        for item in normalized:
            if item is None:
                shape.append(1)
                strides.append(0)
                continue
            size = a.shape[axis]
            stride = a.strides[axis]
            if isinstance(item, int):
                idx = item if item >= 0 else item + size
                if not 0 <= idx < size:
                    raise IndexError(f"index {item} out of range for dim {axis}")
                offset += idx * stride
            else:
                start, stop, step = item.indices(size)
                if step <= 0:
                    raise ValueError("negative slice steps are not supported")
                length = max(0, (stop - start + step - 1) // step)
                shape.append(length)
                strides.append(stride * step)
                offset += start * stride
            axis += 1
        # Remaining axes are taken whole.
        shape.extend(a.shape[axis:])
        strides.extend(a.strides[axis:])
        return Tensor.view_of(a, shape, strides, offset)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        out = np.zeros(ctx.in_shape, dtype=grad.dtype)
        view_shape = out[ctx.key].shape
        out[ctx.key] = grad.reshape(view_shape)
        return (out,)


def _normalize_key(key: Any, ndim: int) -> list[Any]:
    """Expand Ellipsis and validate a basic-indexing key."""
    if not isinstance(key, tuple):
        key = (key,)
    if any(isinstance(k, (list, np.ndarray, Tensor)) for k in key):
        raise TypeError(
            "advanced (array) indexing is not supported by __getitem__; "
            "use ops.index_select / ops.take_along_dim"
        )
    n_ellipsis = sum(1 for k in key if k is Ellipsis)
    if n_ellipsis > 1:
        raise IndexError("at most one Ellipsis allowed")
    consumed = sum(1 for k in key if k is not None and k is not Ellipsis)
    if consumed > ndim:
        raise IndexError(f"too many indices ({consumed}) for ndim {ndim}")
    out: list[Any] = []
    for k in key:
        if k is Ellipsis:
            out.extend([slice(None)] * (ndim - consumed))
        else:
            out.append(k)
    return out


class Cat(Function):
    @staticmethod
    def forward(ctx: Context, *tensors: Tensor, dim: int = 0) -> Tensor:
        if not tensors:
            raise ValueError("cat of zero tensors")
        check_same_device(*tensors)
        dim = dim % tensors[0].ndim
        ctx.dim = dim
        ctx.sizes = [t.shape[dim] for t in tensors]
        dtype = tensors[0].dtype
        out = np.concatenate([t._compute() for t in tensors], axis=dim)
        return make_result(out, dtype, tensors[0].device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        splits = np.cumsum(ctx.sizes)[:-1]
        return tuple(np.array_split(grad, splits, axis=ctx.dim))


class Contiguous(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor) -> Tensor:
        return make_result(np.ascontiguousarray(a._np()), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (grad,)
