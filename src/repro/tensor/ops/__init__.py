"""Functional namespace over the op Functions.

Everything here takes and returns :class:`~repro.tensor.tensor.Tensor`
objects; gradients flow through all of it unless documented otherwise.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tensor.device import Device
from repro.tensor.dtype import DType, bool_, get_dtype, int64
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import make_result
from repro.tensor.ops.arithmetic import (
    Abs,
    Add,
    Clip,
    Div,
    Exp,
    Log,
    Mul,
    Neg,
    Pow,
    Sqrt,
    Sub,
)
from repro.tensor.ops.activation import (
    Gelu,
    LogSoftmax,
    Relu,
    Sigmoid,
    Silu,
    Softmax,
    Tanh,
)
from repro.tensor.ops.indexing import IndexSelect, MaskedFill, TakeAlongDim, Where
from repro.tensor.ops.matmul import MatMul
from repro.tensor.ops.movement import Cast, ToDevice
from repro.tensor.ops.reduce import Max, Mean, Min, Sum
from repro.tensor.ops.shape import Cat, Contiguous, Expand, Permute, Slice, Transpose, View


# -- arithmetic -------------------------------------------------------------

def add(a: Tensor, b: Any) -> Tensor:
    return Add.apply(a, b)


def sub(a: Tensor, b: Any) -> Tensor:
    return Sub.apply(a, b)


def mul(a: Tensor, b: Any) -> Tensor:
    return Mul.apply(a, b)


def div(a: Tensor, b: Any) -> Tensor:
    return Div.apply(a, b)


def neg(a: Tensor) -> Tensor:
    return Neg.apply(a)


def pow(a: Tensor, exponent: float) -> Tensor:  # noqa: A001 - mirrors torch
    return Pow.apply(a, exponent)


def exp(a: Tensor) -> Tensor:
    return Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return Log.apply(a)


def sqrt(a: Tensor) -> Tensor:
    return Sqrt.apply(a)


def abs_(a: Tensor) -> Tensor:
    return Abs.apply(a)


def clip(a: Tensor, low: float | None, high: float | None) -> Tensor:
    return Clip.apply(a, low, high)


# -- matmul -----------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    squeeze_front = a.ndim == 1
    squeeze_back = b.ndim == 1
    if squeeze_front:
        a = a.unsqueeze(0)
    if squeeze_back:
        b = b.unsqueeze(1)
    out = MatMul.apply(a, b)
    if squeeze_back:
        out = out.squeeze(out.ndim - 1)
    if squeeze_front:
        out = out.squeeze(0)
    return out


# -- reductions ---------------------------------------------------------------

def sum_(a: Tensor, dim: int | None = None, keepdim: bool = False) -> Tensor:
    return Sum.apply(a, dim if dim is None else dim % a.ndim, keepdim)


def mean(a: Tensor, dim: int | None = None, keepdim: bool = False) -> Tensor:
    return Mean.apply(a, dim if dim is None else dim % a.ndim, keepdim)


def max_(a: Tensor, dim: int | None = None, keepdim: bool = False) -> Tensor:
    return Max.apply(a, dim if dim is None else dim % a.ndim, keepdim)


def min_(a: Tensor, dim: int | None = None, keepdim: bool = False) -> Tensor:
    return Min.apply(a, dim if dim is None else dim % a.ndim, keepdim)


# -- activations --------------------------------------------------------------

def softmax(a: Tensor, dim: int = -1) -> Tensor:
    return Softmax.apply(a, dim)


def log_softmax(a: Tensor, dim: int = -1) -> Tensor:
    return LogSoftmax.apply(a, dim)


def relu(a: Tensor) -> Tensor:
    return Relu.apply(a)


def sigmoid(a: Tensor) -> Tensor:
    return Sigmoid.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def silu(a: Tensor) -> Tensor:
    return Silu.apply(a)


def gelu(a: Tensor) -> Tensor:
    return Gelu.apply(a)


# -- shape --------------------------------------------------------------------

def view(a: Tensor, shape: Sequence[int]) -> Tensor:
    return View.apply(a, tuple(shape))


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    if a.is_contiguous():
        return View.apply(a, tuple(shape))
    return View.apply(Contiguous.apply(a), tuple(shape))


def transpose(a: Tensor, dim0: int, dim1: int) -> Tensor:
    return Transpose.apply(a, dim0, dim1)


def permute(a: Tensor, dims: Sequence[int]) -> Tensor:
    return Permute.apply(a, tuple(dims))


def expand(a: Tensor, shape: Sequence[int]) -> Tensor:
    return Expand.apply(a, tuple(shape))


def slice_(a: Tensor, key: Any) -> Tensor:
    return Slice.apply(a, key)


def contiguous(a: Tensor) -> Tensor:
    return Contiguous.apply(a)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    return Cat.apply(*tensors, dim=dim)


def stack(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    return cat([t.unsqueeze(dim) for t in tensors], dim=dim)


def split(a: Tensor, size: int, dim: int = 0) -> list[Tensor]:
    """Split into chunks of ``size`` along ``dim`` (last may be smaller)."""
    dim = dim % a.ndim
    chunks = []
    for start in range(0, a.shape[dim], size):
        key = [slice(None)] * a.ndim
        key[dim] = slice(start, min(start + size, a.shape[dim]))
        chunks.append(slice_(a, tuple(key)))
    return chunks


# -- indexing -----------------------------------------------------------------

def index_select(weight: Tensor, indices: Tensor) -> Tensor:
    return IndexSelect.apply(weight, indices)


def embedding(weight: Tensor, indices: Tensor) -> Tensor:
    """Alias of :func:`index_select` named for its LLM use."""
    return IndexSelect.apply(weight, indices)


def take_along_dim(a: Tensor, indices: Tensor, dim: int) -> Tensor:
    return TakeAlongDim.apply(a, indices, dim)


def masked_fill(a: Tensor, mask: np.ndarray, value: float) -> Tensor:
    return MaskedFill.apply(a, mask, value)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    return Where.apply(condition, a, b)


# -- movement -----------------------------------------------------------------

def to_device(a: Tensor, device: Device, tag: str = "") -> Tensor:
    return ToDevice.apply(a, device, tag=tag)


def cast(a: Tensor, dtype: DType) -> Tensor:
    return Cast.apply(a, dtype)


# -- non-differentiable helpers -------------------------------------------------

def compare(a: Tensor, b: Any, kind: str) -> Tensor:
    """Elementwise comparison producing a bool tensor (never on the tape)."""
    b_np = b._np() if isinstance(b, Tensor) else np.asarray(b)
    a_np = a._np()
    fn = {
        "eq": np.equal,
        "ne": np.not_equal,
        "lt": np.less,
        "le": np.less_equal,
        "gt": np.greater,
        "ge": np.greater_equal,
    }[kind]
    return make_result(fn(a_np, b_np), bool_, a.device)


def argmax(a: Tensor, dim: int | None = None) -> Tensor:
    return make_result(np.argmax(a._np(), axis=dim), int64, a.device)


def argmin(a: Tensor, dim: int | None = None) -> Tensor:
    return make_result(np.argmin(a._np(), axis=dim), int64, a.device)


def constant_like(a: Tensor, value: Any) -> Tensor:
    """A constant scalar/array tensor on ``a``'s device and dtype."""
    return Tensor.from_numpy(
        np.broadcast_to(np.asarray(value, dtype=a.dtype.np_compute), a.shape),
        dtype=a.dtype,
        device=a.device,
    )


def one_hot(indices: Tensor, num_classes: int, dtype: DType | str = "float32") -> Tensor:
    dt = get_dtype(dtype)
    idx = indices._np().astype(np.int64, copy=False)
    eye = np.eye(num_classes, dtype=dt.np_storage)
    return make_result(eye[idx], dt, indices.device)


def causal_mask(size: int) -> np.ndarray:
    """Boolean mask that is True strictly above the diagonal (to be filled)."""
    return np.triu(np.ones((size, size), dtype=bool), k=1)
