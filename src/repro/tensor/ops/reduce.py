"""Reductions: sum, mean, max, min."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.autograd import Context, Function
from repro.tensor.tensor import Tensor
from repro.tensor.ops._common import make_result


def _restore_dims(
    grad: np.ndarray, in_shape: tuple[int, ...], dim: int | None, keepdim: bool
) -> np.ndarray:
    """Broadcast a reduced gradient back to the input shape."""
    if dim is None:
        return np.broadcast_to(grad.reshape((1,) * len(in_shape)), in_shape)
    if not keepdim:
        grad = np.expand_dims(grad, axis=dim)
    return np.broadcast_to(grad, in_shape)


class Sum(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int | None, keepdim: bool) -> Tensor:
        ctx.in_shape, ctx.dim, ctx.keepdim = a.shape, dim, keepdim
        out = a._compute().sum(axis=dim, keepdims=keepdim if dim is not None else False)
        return make_result(np.asarray(out), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return (_restore_dims(grad, ctx.in_shape, ctx.dim, ctx.keepdim).copy(),)


class Mean(Function):
    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int | None, keepdim: bool) -> Tensor:
        ctx.in_shape, ctx.dim, ctx.keepdim = a.shape, dim, keepdim
        if dim is None:
            ctx.count = max(a.numel, 1)
        else:
            ctx.count = a.shape[dim]
        out = a._compute().mean(axis=dim, keepdims=keepdim if dim is not None else False)
        return make_result(np.asarray(out), a.dtype, a.device)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        g = _restore_dims(grad, ctx.in_shape, ctx.dim, ctx.keepdim) / ctx.count
        return (g.copy(),)


class _ExtremumBase(Function):
    """Shared machinery for Max/Min: route gradient to the arg position."""

    reducer: staticmethod
    arg_reducer: staticmethod

    @classmethod
    def _forward(cls, ctx: Context, a: Tensor, dim: int | None, keepdim: bool) -> Tensor:
        a_np = a._compute()
        ctx.in_shape, ctx.dim, ctx.keepdim = a.shape, dim, keepdim
        if dim is None:
            flat_idx = int(cls.arg_reducer(a_np))
            ctx.flat_index = flat_idx
            out = np.asarray(cls.reducer(a_np))
        else:
            idx = cls.arg_reducer(a_np, axis=dim)
            ctx.indices = idx
            out = cls.reducer(a_np, axis=dim, keepdims=keepdim)
        return make_result(out, a.dtype, a.device)

    @classmethod
    def _backward(cls, ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        g = np.zeros(ctx.in_shape, dtype=grad.dtype)
        if ctx.dim is None:
            g.reshape(-1)[ctx.flat_index] = grad.reshape(())
        else:
            expanded = grad if ctx.keepdim else np.expand_dims(grad, axis=ctx.dim)
            np.put_along_axis(
                g, np.expand_dims(ctx.indices, axis=ctx.dim), expanded, axis=ctx.dim
            )
        return (g,)


class Max(_ExtremumBase):
    reducer = staticmethod(np.max)
    arg_reducer = staticmethod(np.argmax)

    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int | None, keepdim: bool) -> Tensor:
        return Max._forward(ctx, a, dim, keepdim)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return Max._backward(ctx, grad)


class Min(_ExtremumBase):
    reducer = staticmethod(np.min)
    arg_reducer = staticmethod(np.argmin)

    @staticmethod
    def forward(ctx: Context, a: Tensor, dim: int | None, keepdim: bool) -> Tensor:
        return Min._forward(ctx, a, dim, keepdim)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        return Min._backward(ctx, grad)
