"""Logical dtypes over numpy physical storage.

The engine distinguishes a dtype's *logical* width (what a real accelerator
would allocate, used for byte accounting) from its *physical* numpy backing.
This is how bfloat16 is simulated: numpy has no bf16, so bf16 tensors are
backed by float32 buffers whose values are truncated to the bf16 grid, while
memory accounting charges 2 bytes per element.

The 16-bit floating dtypes also expose :func:`bit_pattern16`, the exact
mechanism eDKM's weight uniquification keys on: a 16-bit weight tensor has at
most ``2**16`` distinct bit patterns (paper Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


def _truncate_to_bf16(array: np.ndarray) -> np.ndarray:
    """Round-to-nearest-even truncation of fp32 values onto the bf16 grid."""
    f32 = np.ascontiguousarray(array, dtype=np.float32)
    bits = f32.view(np.uint32)
    # Round-to-nearest-even on the low 16 bits before truncating them.
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32)


@dataclass(frozen=True)
class DType:
    """A logical element type.

    Attributes:
        name: canonical name, e.g. ``"bfloat16"``.
        itemsize: logical bytes per element, used for memory accounting.
        np_storage: numpy dtype physically backing the buffer.
        np_compute: numpy dtype arithmetic is performed in.
        quantize: optional projection applied to values entering storage
            (identity for natively representable dtypes).
        is_floating: whether the dtype is a floating-point type.
    """

    name: str
    itemsize: int
    np_storage: np.dtype
    np_compute: np.dtype
    quantize: Callable[[np.ndarray], np.ndarray] | None
    is_floating: bool

    def project(self, array: np.ndarray) -> np.ndarray:
        """Project raw values onto this dtype's representable grid."""
        out = np.asarray(array, dtype=self.np_storage)
        if self.quantize is not None:
            out = self.quantize(out)
        return out

    def __reduce__(self):
        """Pickle by name so unpickling returns the interned singleton.

        Dispatch throughout the engine compares dtypes by identity
        (``dtype is bfloat16``); a structurally-pickled copy crossing a
        process boundary -- e.g. a ``DKMConfig`` shipped to a pool worker --
        would silently fail every such check.
        """
        return (get_dtype, (self.name,))

    def __repr__(self) -> str:
        return f"repro.{self.name}"


float32 = DType(
    name="float32",
    itemsize=4,
    np_storage=np.dtype(np.float32),
    np_compute=np.dtype(np.float32),
    quantize=None,
    is_floating=True,
)

float16 = DType(
    name="float16",
    itemsize=2,
    np_storage=np.dtype(np.float16),
    np_compute=np.dtype(np.float32),
    quantize=None,
    is_floating=True,
)

bfloat16 = DType(
    name="bfloat16",
    itemsize=2,
    np_storage=np.dtype(np.float32),
    np_compute=np.dtype(np.float32),
    quantize=_truncate_to_bf16,
    is_floating=True,
)

float64 = DType(
    name="float64",
    itemsize=8,
    np_storage=np.dtype(np.float64),
    np_compute=np.dtype(np.float64),
    quantize=None,
    is_floating=True,
)

int64 = DType(
    name="int64",
    itemsize=8,
    np_storage=np.dtype(np.int64),
    np_compute=np.dtype(np.int64),
    quantize=None,
    is_floating=False,
)

int32 = DType(
    name="int32",
    itemsize=4,
    np_storage=np.dtype(np.int32),
    np_compute=np.dtype(np.int32),
    quantize=None,
    is_floating=False,
)

uint16 = DType(
    name="uint16",
    itemsize=2,
    np_storage=np.dtype(np.uint16),
    np_compute=np.dtype(np.uint16),
    quantize=None,
    is_floating=False,
)

uint8 = DType(
    name="uint8",
    itemsize=1,
    np_storage=np.dtype(np.uint8),
    np_compute=np.dtype(np.uint8),
    quantize=None,
    is_floating=False,
)

bool_ = DType(
    name="bool",
    itemsize=1,
    np_storage=np.dtype(np.bool_),
    np_compute=np.dtype(np.bool_),
    quantize=None,
    is_floating=False,
)

_ALL = {
    d.name: d
    for d in (float64, float32, float16, bfloat16, int64, int32, uint16, uint8, bool_)
}
_ALIASES = {"float": "float32", "half": "float16", "bf16": "bfloat16", "fp16": "float16"}


def get_dtype(spec: "DType | str") -> DType:
    """Resolve a dtype object or name (with common aliases) to a DType."""
    if isinstance(spec, DType):
        return spec
    name = _ALIASES.get(spec, spec)
    try:
        return _ALL[name]
    except KeyError:
        raise ValueError(f"unknown dtype {spec!r}; known: {sorted(_ALL)}") from None


def from_numpy_dtype(np_dtype: np.dtype) -> DType:
    """Best-effort mapping from a numpy dtype to a logical DType."""
    np_dtype = np.dtype(np_dtype)
    for candidate in (float64, float32, float16, int64, int32, uint16, uint8, bool_):
        if candidate.np_storage == np_dtype:
            return candidate
    if np_dtype.kind == "i":
        return int64
    if np_dtype.kind == "u":
        return uint16
    if np_dtype.kind == "f":
        return float32
    if np_dtype.kind == "b":
        return bool_
    raise ValueError(f"no logical dtype for numpy dtype {np_dtype}")


# Floating widths used by type promotion, narrowest to widest.
_FLOAT_ORDER = [float16, bfloat16, float32, float64]


def promote(a: DType, b: DType) -> DType:
    """Result dtype of a binary op between ``a`` and ``b``.

    Floats dominate ints; among floats the wider wins; the fp16/bf16 pair
    (equal width, different grids) promotes to float32.
    """
    if a is b:
        return a
    if a.is_floating and not b.is_floating:
        return a
    if b.is_floating and not a.is_floating:
        return b
    if a.is_floating and b.is_floating:
        if {a, b} == {float16, bfloat16}:
            return float32
        return a if _FLOAT_ORDER.index(a) >= _FLOAT_ORDER.index(b) else b
    # Both integral: pick the wider, ties broken toward signed.
    if a.itemsize != b.itemsize:
        return a if a.itemsize > b.itemsize else b
    return a


def bit_pattern16(array: np.ndarray, dtype: DType) -> np.ndarray:
    """The 16-bit pattern of each element, as a uint16 array.

    This is the uniquification key from the paper: two weights with equal bit
    patterns provably receive identical attention rows, so the attention map
    collapses to one row per distinct pattern.
    """
    if dtype is float16:
        return np.ascontiguousarray(array, dtype=np.float16).view(np.uint16).copy()
    if dtype is bfloat16:
        f32 = _truncate_to_bf16(np.ascontiguousarray(array, dtype=np.float32))
        return (f32.view(np.uint32) >> 16).astype(np.uint16)
    raise ValueError(
        f"bit_pattern16 requires a 16-bit floating dtype, got {dtype.name}"
    )


def decode_pattern16(patterns: np.ndarray, dtype: DType) -> np.ndarray:
    """Inverse of :func:`bit_pattern16`: patterns back to float32 values."""
    patterns = np.ascontiguousarray(patterns, dtype=np.uint16)
    if dtype is float16:
        return patterns.view(np.float16).astype(np.float32)
    if dtype is bfloat16:
        return (patterns.astype(np.uint32) << 16).view(np.float32).copy()
    raise ValueError(
        f"decode_pattern16 requires a 16-bit floating dtype, got {dtype.name}"
    )
