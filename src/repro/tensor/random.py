"""Seeded random tensor creation.

All stochastic components in the library (init, data generation, dropout-free
by design) draw from explicit generators so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.device import CPU, Device
from repro.tensor.dtype import DType, float32, get_dtype
from repro.tensor.tensor import Tensor

_default_rng = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Re-seed the module-level generator."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


def default_rng(seed: int | None = None) -> np.random.Generator:
    """The library's generator factory -- the one sanctioned entry point.

    With ``seed=None`` returns the shared module-level generator (advanced
    by every draw; re-seed with :func:`manual_seed`).  With an explicit
    seed returns a *fresh* generator, bit-identical across calls -- the
    idiom modules use for deterministic default initialisation.  All other
    ``np.random.default_rng`` construction outside this module is flagged
    by repolint rule RL302.
    """
    if seed is None:
        return _default_rng
    return np.random.default_rng(seed)


def rand(
    *shape: int,
    dtype: DType | str = float32,
    device: Device | str = CPU,
    requires_grad: bool = False,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Uniform [0, 1) tensor."""
    rng = rng or _default_rng
    dt = get_dtype(dtype)
    values = rng.random(shape, dtype=np.float64).astype(np.float32)
    return Tensor.from_numpy(values, dtype=dt, device=device, requires_grad=requires_grad)


def randn(
    *shape: int,
    dtype: DType | str = float32,
    device: Device | str = CPU,
    requires_grad: bool = False,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Standard-normal tensor."""
    rng = rng or _default_rng
    dt = get_dtype(dtype)
    values = rng.standard_normal(shape).astype(np.float32)
    return Tensor.from_numpy(values, dtype=dt, device=device, requires_grad=requires_grad)


def randint(
    low: int,
    high: int,
    shape: tuple[int, ...],
    device: Device | str = CPU,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Uniform integer tensor in [low, high)."""
    rng = rng or _default_rng
    return Tensor.from_numpy(
        rng.integers(low, high, size=shape, dtype=np.int64), device=device
    )
