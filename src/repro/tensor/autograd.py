"""Reverse-mode autograd.

The engine mirrors the parts of PyTorch autograd that eDKM's memory
optimizations interact with:

- every differentiable op is a :class:`Function` with a ``Context`` whose
  ``save_for_backward`` routes tensors through the active
  :func:`saved_tensors_hooks` pair -- the hook point eDKM uses to offload,
  deduplicate (marshal), uniquify and shard saved activations;
- the forward graph is retained as :class:`Node` objects holding *weak*
  references to their input/output tensors, so eDKM's marshaling can walk
  the graph ("within 4 hops") without extending tensor lifetimes;
- saved tensors hold strong references until ``backward`` consumes them,
  which is precisely the memory cost the paper attacks.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tensor.tensor import Tensor


# --------------------------------------------------------------------------
# Grad mode
# --------------------------------------------------------------------------

_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_STATE, "grad_enabled", True)


def is_grad_enabled() -> bool:
    """Whether new operations will be recorded on the autograd tape."""
    return _grad_enabled()


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording inside the block (like ``torch.no_grad``)."""
    previous = _grad_enabled()
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Re-enable graph recording inside the block."""
    previous = _grad_enabled()
    _STATE.grad_enabled = True
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


# --------------------------------------------------------------------------
# Saved-tensor hooks (the eDKM integration point)
# --------------------------------------------------------------------------


def _hook_stack() -> list[tuple[Callable[["Tensor"], Any], Callable[[Any], "Tensor"]]]:
    stack = getattr(_STATE, "hooks", None)
    if stack is None:
        stack = []
        _STATE.hooks = stack
    return stack


@contextlib.contextmanager
def saved_tensors_hooks(
    pack: Callable[["Tensor"], Any],
    unpack: Callable[[Any], "Tensor"],
) -> Iterator[None]:
    """Install a pack/unpack pair applied to tensors saved for backward.

    Matches ``torch.autograd.graph.saved_tensors_hooks`` semantics: the
    innermost pair wins; ``pack`` runs at save time and may return an
    arbitrary handle; ``unpack`` runs when ``ctx.saved_tensors`` is read
    during backward and must return an equivalent tensor.
    """
    stack = _hook_stack()
    stack.append((pack, unpack))
    try:
        yield
    finally:
        stack.pop()


def _current_hooks() -> (
    tuple[Callable[["Tensor"], Any], Callable[[Any], "Tensor"]] | None
):
    stack = _hook_stack()
    return stack[-1] if stack else None


# --------------------------------------------------------------------------
# Context / Node / Function
# --------------------------------------------------------------------------


class Context:
    """Per-call scratch space connecting forward and backward.

    ``save_for_backward`` stores tensors (through the active hooks);
    arbitrary non-tensor metadata can be attached as attributes.
    """

    __slots__ = ("_packed", "_unpack_fns", "needs_input_grad", "_extras")

    def __init__(self) -> None:
        self._packed: list[Any] = []
        self._unpack_fns: list[Callable[[Any], "Tensor"] | None] = []
        self.needs_input_grad: tuple[bool, ...] = ()
        self._extras: dict[str, Any] = {}

    def save_for_backward(self, *tensors: "Tensor") -> None:
        hooks = _current_hooks()
        for tensor in tensors:
            if hooks is None:
                self._packed.append(tensor)
                self._unpack_fns.append(None)
            else:
                pack, unpack = hooks
                self._packed.append(pack(tensor))
                self._unpack_fns.append(unpack)

    @property
    def saved_tensors(self) -> tuple["Tensor", ...]:
        out = []
        for payload, unpack in zip(self._packed, self._unpack_fns):
            out.append(payload if unpack is None else unpack(payload))
        return tuple(out)

    def release_saved(self) -> None:
        """Drop saved payloads (called after backward consumes the node)."""
        self._packed = []
        self._unpack_fns = []

    # Attribute-style extras, e.g. ``ctx.dim = 1``.
    def __setattr__(self, name: str, value: Any) -> None:
        if name in Context.__slots__:
            object.__setattr__(self, name, value)
        else:
            self._extras[name] = value

    def __getattr__(self, name: str) -> Any:
        try:
            return self._extras[name]
        except KeyError:
            raise AttributeError(name) from None


class Node:
    """One recorded op application in the autograd graph.

    ``edges`` point at the producers of each tensor input: either another
    Node, a leaf tensor (strong reference, so ``.grad`` can be accumulated),
    or ``None`` for inputs that do not require grad.  ``input_refs`` and
    ``output_ref`` are weak references used only by graph-walking consumers
    (eDKM marshaling) and never extend tensor lifetimes.
    """

    __slots__ = (
        "fn",
        "ctx",
        "op_name",
        "storage_invariant",
        "edges",
        "input_refs",
        "output_ref",
        "consumed",
        "__weakref__",
    )

    def __init__(
        self,
        fn: type["Function"],
        ctx: Context,
        op_name: str,
        storage_invariant: bool,
        edges: list[tuple[str, Any]],
        input_refs: list["weakref.ReferenceType[Tensor] | None"],
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.op_name = op_name
        self.storage_invariant = storage_invariant
        self.edges = edges
        self.input_refs = input_refs
        self.output_ref: weakref.ReferenceType["Tensor"] | None = None
        self.consumed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.op_name})"


class Function:
    """Base class for differentiable operations.

    Subclasses implement ``forward(ctx, *args, **kwargs) -> Tensor`` working
    at the Tensor level (so view ops can share storage) and
    ``backward(ctx, grad_output: np.ndarray) -> Sequence[np.ndarray | None]``
    returning one gradient per *tensor* positional input, aligned with the
    order tensors appeared in ``args``.
    """

    op_name: str | None = None
    # True for ops whose output shares the input's data storage (view,
    # transpose, ...): the set eDKM's marshaling walks through.
    storage_invariant: bool = False

    @staticmethod
    def forward(ctx: Context, *args: Any, **kwargs: Any) -> "Tensor":
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad_output: np.ndarray) -> Sequence[np.ndarray | None]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        from repro.tensor.tensor import Tensor

        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        record = _grad_enabled() and any(t.requires_grad for t in tensor_inputs)

        ctx = Context()
        ctx.needs_input_grad = tuple(t.requires_grad for t in tensor_inputs)
        output = cls.forward(ctx, *args, **kwargs)

        if record:
            edges: list[tuple[str, Any]] = []
            input_refs: list[weakref.ReferenceType[Tensor] | None] = []
            for t in tensor_inputs:
                input_refs.append(weakref.ref(t))
                if not t.requires_grad:
                    edges.append(("none", None))
                elif t.grad_fn is not None:
                    edges.append(("node", t.grad_fn))
                else:
                    edges.append(("leaf", t))
            node = Node(
                fn=cls,
                ctx=ctx,
                op_name=cls.op_name or cls.__name__,
                storage_invariant=cls.storage_invariant,
                edges=edges,
                input_refs=input_refs,
            )
            node.output_ref = weakref.ref(output)
            output.grad_fn = node
            output.requires_grad = True
            # Forward (consumer) edges, so graph walks can move from a
            # tensor to the ops that used it -- needed by eDKM marshaling.
            node_ref = weakref.ref(node)
            for t in tensor_inputs:
                if t.consumers is None:
                    t.consumers = []
                t.consumers.append(node_ref)
        return output


# --------------------------------------------------------------------------
# Backward engine
# --------------------------------------------------------------------------


def backward(root: "Tensor", grad: np.ndarray | None = None) -> None:
    """Run reverse-mode accumulation from ``root``.

    Gradients are accumulated into the ``.grad`` of every reachable leaf
    tensor with ``requires_grad=True``.  Saved tensors are released as each
    node is consumed (retain_graph semantics are not supported; running
    backward twice through the same node raises).
    """
    if root.grad_fn is None:
        raise RuntimeError("backward called on a tensor with no grad_fn")
    if grad is None:
        if root.numel != 1:
            raise RuntimeError(
                "grad must be provided for non-scalar outputs "
                f"(output shape {root.shape})"
            )
        grad = np.ones(root.shape, dtype=root.dtype.np_compute)
    else:
        grad = np.asarray(grad, dtype=root.dtype.np_compute)
        if grad.shape != root.shape:
            raise RuntimeError(
                f"grad shape {grad.shape} does not match output shape {root.shape}"
            )

    topo = _topological_order(root.grad_fn)
    node_grads: dict[int, np.ndarray] = {id(root.grad_fn): grad}
    nodes_by_id = {id(n): n for n in topo}

    for node in topo:
        node_grad = node_grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node.consumed:
            raise RuntimeError(
                f"node {node.op_name} was already consumed by a previous "
                "backward pass (retain_graph is not supported)"
            )
        grads = node.fn.backward(node.ctx, node_grad)
        node.consumed = True
        node.ctx.release_saved()
        if len(grads) != len(node.edges):
            raise RuntimeError(
                f"{node.op_name}.backward returned {len(grads)} grads for "
                f"{len(node.edges)} inputs"
            )
        for (kind, target), g in zip(node.edges, grads):
            if g is None or kind == "none":
                continue
            if kind == "leaf":
                _accumulate_leaf(target, g)
            else:
                key = id(target)
                assert key in nodes_by_id
                existing = node_grads.get(key)
                node_grads[key] = g if existing is None else existing + g


def _topological_order(root_node: Node) -> list[Node]:
    """Nodes ordered so every node precedes the producers of its inputs."""
    order: list[Node] = []
    visited: set[int] = set()
    # Iterative DFS; graph depth can exceed Python's recursion limit for
    # long training graphs.
    stack: list[tuple[Node, bool]] = [(root_node, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for kind, target in node.edges:
            if kind == "node" and id(target) not in visited:
                stack.append((target, False))
    order.reverse()
    return order


def _accumulate_leaf(leaf: "Tensor", grad: np.ndarray) -> None:
    from repro.tensor.tensor import Tensor

    grad = np.asarray(grad, dtype=leaf.dtype.np_compute)
    if grad.shape != leaf.shape:
        raise RuntimeError(
            f"leaf grad shape {grad.shape} does not match leaf shape {leaf.shape}"
        )
    with no_grad():
        if leaf.grad is None:
            leaf.grad = Tensor.from_numpy(grad, dtype=leaf.dtype, device=leaf.device)
        else:
            leaf.grad._unsafe_add_(grad)


# --------------------------------------------------------------------------
# Helpers shared by op implementations
# --------------------------------------------------------------------------


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dims that were size-1 in the target.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
