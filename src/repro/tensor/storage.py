"""Tensor data storage.

A :class:`Storage` is a flat, device-tagged buffer, mirroring PyTorch's
``UntypedStorage``.  Tensors are (shape, strides, offset) metadata over a
storage; view operations share the storage, which is why they cost no device
memory (Table 1 of the paper, lines 0-1), while a cross-device move must
allocate a fresh storage on the destination (lines 2-3).

Byte accounting happens here: allocation charges ``numel * dtype.itemsize``
logical bytes to the owning device's tracker, and a weakref finalizer
releases them when the buffer is garbage collected.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.tensor.device import Device
from repro.tensor.dtype import DType


class Storage:
    """A 1-D physical buffer charged against a device tracker."""

    __slots__ = (
        "data",
        "dtype",
        "device",
        "nbytes",
        "version",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self, data: np.ndarray, dtype: DType, device: Device) -> None:
        if data.ndim != 1:
            raise ValueError(f"storage buffer must be 1-D, got shape {data.shape}")
        if data.dtype != dtype.np_storage:
            raise ValueError(
                f"buffer dtype {data.dtype} does not match physical dtype "
                f"{dtype.np_storage} of {dtype.name}"
            )
        self.data = data
        self.dtype = dtype
        self.device = device
        self.nbytes = int(data.size) * dtype.itemsize
        # In-place write counter (PyTorch ``_version`` analogue).  Bumped by
        # every Tensor in-place mutation; per-layer step caches key on it to
        # detect optimizer writes between training steps.
        self.version = 0
        device.tracker.allocate(self.nbytes)
        self._finalizer = weakref.finalize(self, device.tracker.release, self.nbytes)

    @property
    def numel(self) -> int:
        return int(self.data.size)

    @property
    def physical_nbytes(self) -> int:
        """Bytes of the backing numpy buffer (not the logical accounting).

        For natively-representable dtypes this equals ``nbytes``; for
        simulated ones it differs -- bfloat16 is *accounted* at 2 bytes per
        element but *stored* in a float32 buffer at 4.  Byte-level transports
        (the shared-memory codec in :mod:`repro.tensor.serialization`) must
        size their blocks off this figure, not ``nbytes``.
        """
        return int(self.data.size) * int(self.data.dtype.itemsize)

    def bump_version(self) -> None:
        """Record an in-place write to the buffer.

        Writers (optimizer steps, ``copy_``) run on the thread that owns the
        training loop; the parallel compression engine only *reads* weights
        from pool workers, and a stale read of ``version`` merely causes a
        step-cache recompute, never a wrong hit -- the cache validates the
        full (storage, version, view) key under its own lock.
        """
        self.version += 1

    @classmethod
    def from_values(cls, values: np.ndarray, dtype: DType, device: Device) -> "Storage":
        """Allocate a storage holding ``values`` projected onto ``dtype``."""
        flat = dtype.project(values).reshape(-1)
        # Always own the buffer: the caller's array may alias something else.
        if flat.base is not None or flat is values:
            flat = flat.copy()
        return cls(flat, dtype, device)

    def clone_to(self, device: Device) -> "Storage":
        """A byte-for-byte copy of this storage on another (or same) device."""
        return Storage(self.data.copy(), self.dtype, device)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Storage(numel={self.numel}, dtype={self.dtype.name}, "
            f"device={self.device.name}, nbytes={self.nbytes})"
        )
