"""A numpy-backed tensor engine with PyTorch's memory architecture.

This package is the substrate substitution for PyTorch (see DESIGN.md): it
reproduces the pieces of the PyTorch tensor/autograd architecture that the
eDKM paper's memory optimizations act on --

- storage/metadata separation, so views are free and cross-device moves
  duplicate storage (paper Table 1);
- simulated ``gpu``/``cpu`` devices with byte-exact memory accounting and a
  cross-device traffic ledger;
- reverse-mode autograd whose saved-for-backward tensors pass through
  ``saved_tensors_hooks`` -- the hook eDKM uses to offload, marshal,
  uniquify and shard activations.
"""

from repro.tensor import ops
from repro.tensor.autograd import (
    Context,
    Function,
    enable_grad,
    is_grad_enabled,
    no_grad,
    saved_tensors_hooks,
)
from repro.tensor.device import CPU, GPU, Device, device
from repro.tensor.dtype import (
    DType,
    bfloat16,
    bit_pattern16,
    bool_,
    decode_pattern16,
    float16,
    float32,
    float64,
    get_dtype,
    int32,
    int64,
    promote,
    uint8,
    uint16,
)
from repro.tensor.random import default_rng, manual_seed, rand, randint, randn
from repro.tensor.serialization import load_state, save_state
from repro.tensor.tensor import Tensor, arange, full, ones, tensor, zeros

__all__ = [
    "ops",
    "Context",
    "Function",
    "enable_grad",
    "is_grad_enabled",
    "no_grad",
    "saved_tensors_hooks",
    "CPU",
    "GPU",
    "Device",
    "device",
    "DType",
    "bfloat16",
    "bit_pattern16",
    "bool_",
    "decode_pattern16",
    "float16",
    "float32",
    "float64",
    "get_dtype",
    "int32",
    "int64",
    "promote",
    "uint8",
    "uint16",
    "default_rng",
    "manual_seed",
    "rand",
    "randint",
    "randn",
    "load_state",
    "save_state",
    "Tensor",
    "arange",
    "full",
    "ones",
    "tensor",
    "zeros",
]
