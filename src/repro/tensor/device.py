"""Simulated devices.

All data physically lives in host numpy arrays; a :class:`Device` is a named
accounting domain with its own :class:`~repro.memory.tracker.MemoryTracker`.
``"gpu"`` and ``"cpu"`` model the accelerator and host of a single learner;
sharding experiments additionally use per-learner devices like ``"cpu:3"``.
"""

from __future__ import annotations

from repro.memory.tracker import MemoryTracker, global_registry


class Device:
    """A named memory domain.

    Two Device objects with the same name are the same device (interned via
    :func:`device`); identity comparisons are therefore safe.
    """

    def __init__(self, name: str, tracker: MemoryTracker) -> None:
        self.name = name
        self.tracker = tracker

    def __repr__(self) -> str:
        return f"device({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Device) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


_INTERNED: dict[str, Device] = {}


def device(spec: "Device | str") -> Device:
    """Resolve a device name (or pass through a Device) to the interned object."""
    if isinstance(spec, Device):
        return spec
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"invalid device spec {spec!r}")
    dev = _INTERNED.get(spec)
    if dev is None:
        dev = Device(spec, global_registry().get(spec))
        _INTERNED[spec] = dev
    return dev


CPU = device("cpu")
GPU = device("gpu")
