"""State-dict persistence as ``.npz`` archives."""

from __future__ import annotations

import json
import os

import numpy as np

from repro.tensor.device import CPU, Device, device as as_device
from repro.tensor.dtype import get_dtype
from repro.tensor.tensor import Tensor


def save_state(path: str, state: dict[str, Tensor]) -> None:
    """Write a name->tensor mapping to ``path`` (npz + dtype sidecar)."""
    arrays = {name: t.numpy() for name, t in state.items()}
    dtypes = {name: t.dtype.name for name, t in state.items()}
    np.savez(path, **arrays)
    with open(_sidecar(path), "w", encoding="utf-8") as fh:
        json.dump(dtypes, fh)


def load_state(path: str, device: Device | str = CPU) -> dict[str, Tensor]:
    """Read a mapping written by :func:`save_state`."""
    dev = as_device(device)
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    dtype_names: dict[str, str] = {}
    sidecar = _sidecar(path)
    if os.path.exists(sidecar):
        with open(sidecar, encoding="utf-8") as fh:
            dtype_names = json.load(fh)
    out = {}
    for name, array in arrays.items():
        dtype = get_dtype(dtype_names[name]) if name in dtype_names else None
        out[name] = Tensor.from_numpy(array, dtype=dtype, device=dev)
    return out


def _sidecar(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".dtypes.json"
