"""Tensor serialization: ``.npz`` state-dicts and the shared-memory codec.

Two transports live here:

- :func:`save_state` / :func:`load_state` -- durable name->tensor archives
  (npz payload + a JSON sidecar carrying the *logical* dtypes numpy cannot
  represent, e.g. bfloat16).
- the **shm codec** -- zero-copy hand-off of a tensor between processes on
  one host via ``multiprocessing.shared_memory``.  The exporting process
  copies the tensor's physical storage buffer into a named block once
  (:func:`export_tensor_shm`); any number of worker processes then
  reconstruct a read-only view over the *same* pages
  (:func:`attach_tensor_shm`) from a tiny picklable
  :class:`ShmTensorHandle`, so fanning a sweep out over a process pool
  ships O(metadata) per task instead of O(weight bytes).

Lifecycle rules of the codec (enforced by :class:`ShmExport` /
:class:`ShmLease`):

- the exporter owns the block: ``ShmExport.close()`` unmaps *and unlinks*
  it; every attach is read-only and must be closed by the worker --
  either transiently per task, or held *pinned* across tasks through a
  :class:`ShmLeaseRegistry`, which re-attaches automatically when the
  exporter rotates a block.
- attaching never takes resource-tracker *ownership* of the block
  (``track=False`` on Python >= 3.13; on older interpreters the attach's
  registration is harmless because workers share the exporter's tracker
  and the exporter's ``unlink`` clears the per-name entry exactly once --
  see :func:`_open_shm_untracked` for why it must *not* be explicitly
  unregistered).
- blocks are sized off ``Storage.physical_nbytes`` -- the numpy buffer,
  not the logical accounting -- because simulated dtypes (bfloat16) store
  wider than they account.
- an attach against an unlinked block raises the typed :class:`ShmLost`
  (a ``FileNotFoundError`` subclass that pickles across the pool
  boundary), which the process engine treats as a recoverable fault:
  drop the stale export, re-export, re-ship.
- a module-level ``atexit`` backstop unlinks every block still owned by
  a live :class:`ShmExport` when the interpreter exits, so a parent that
  dies between sweeps without running ``close()`` cannot leak
  ``/dev/shm`` segments (``kill -9`` excepted -- no exit hook survives
  that; the checkpoint journal covers recovery instead).
"""

from __future__ import annotations

import atexit
import errno
import json
import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.tensor.device import CPU, Device, device as as_device
from repro.tensor.dtype import get_dtype
from repro.tensor.storage import Storage
from repro.tensor.tensor import Tensor


def save_state(path: str, state: dict[str, Tensor]) -> None:
    """Write a name->tensor mapping to ``path`` (npz + dtype sidecar)."""
    arrays = {name: t.numpy() for name, t in state.items()}
    dtypes = {name: t.dtype.name for name, t in state.items()}
    np.savez(path, **arrays)
    with open(_sidecar(path), "w", encoding="utf-8") as fh:
        json.dump(dtypes, fh)


def load_state(path: str, device: Device | str = CPU) -> dict[str, Tensor]:
    """Read a mapping written by :func:`save_state`."""
    dev = as_device(device)
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    dtype_names: dict[str, str] = {}
    sidecar = _sidecar(path)
    if os.path.exists(sidecar):
        with open(sidecar, encoding="utf-8") as fh:
            dtype_names = json.load(fh)
    out = {}
    for name, array in arrays.items():
        dtype = get_dtype(dtype_names[name]) if name in dtype_names else None
        out[name] = Tensor.from_numpy(array, dtype=dtype, device=dev)
    return out


def _sidecar(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".dtypes.json"


# ----------------------------------------------------------------------
# Shared-memory codec
# ----------------------------------------------------------------------


class ShmLost(FileNotFoundError):
    """A shared-memory block named by a live handle no longer exists.

    The typed form of the codec's one external failure mode: the block
    was unlinked out from under a handle -- a crashed exporter, an
    overzealous ``/dev/shm`` reaper, or the fault injector.  Subclasses
    ``FileNotFoundError`` so pre-existing callers keep working, but
    carries the block name and pickles cleanly across the process-pool
    boundary, so the parent engine can recover (drop the stale export,
    re-export, re-ship) instead of pattern-matching on ``errno``.
    """

    def __init__(self, shm_name: str):
        super().__init__(
            errno.ENOENT,
            f"shared-memory block {shm_name!r} is gone (unlinked or never created)",
        )
        self.shm_name = shm_name

    def __reduce__(self):
        """Pickle by block name (OSError's default reduce would re-init
        with ``(errno, message)`` and crash on this signature)."""
        return (type(self), (self.shm_name,))


# Every live ShmExport, tracked weakly for the atexit backstop below.
_LIVE_EXPORTS: "weakref.WeakSet[ShmExport]" = weakref.WeakSet()


def _atexit_unlink_exports() -> None:
    """Unlink every block still owned by a live export at interpreter exit.

    Each export already has a ``weakref.finalize`` safety net, but a
    parent that exits while an engine (and therefore its export cache)
    is still strongly referenced -- an uncaught exception between sweeps,
    a bare ``sys.exit`` -- would otherwise rely on interpreter-teardown
    GC ordering to run those finalizers.  This hook makes the guarantee
    unconditional for any exit that runs ``atexit`` at all (nothing can
    help after ``kill -9``; crash *recovery* for that case is the
    checkpoint journal's job).  It unlinks the raw block directly rather
    than going through ``export.close()``, so it still works when an
    export's finalizer was detached or already consumed.
    """
    for export in list(_LIVE_EXPORTS):
        try:
            _destroy_shm(export.shm)
        except Exception:  # pragma: no cover - best-effort teardown
            pass


atexit.register(_atexit_unlink_exports)


@dataclass(frozen=True)
class ShmTensorHandle:
    """Picklable descriptor of a tensor exported to a shared-memory block.

    Carries everything a worker needs to rebuild a zero-copy view: the
    block name, the logical dtype *name* (resolved back to the interned
    :class:`~repro.tensor.dtype.DType` on attach), the storage element
    count, and the (shape, strides, offset) view metadata.  ``version`` is
    the source storage's in-place-write counter at export time, so the
    exporter can detect that a handle has gone stale after an optimizer
    step without re-hashing any bytes.
    """

    shm_name: str
    dtype_name: str
    storage_numel: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    offset: int
    version: int
    device_name: str = "cpu"


class ShmExport:
    """Owner of one exported block: closes *and unlinks* on ``close()``.

    A safety-net ``weakref.finalize`` unlinks the block if the owner is
    garbage collected (or the interpreter exits) without an explicit
    close, so a crashed sweep cannot leak ``/dev/shm`` segments.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: ShmTensorHandle):
        self.shm = shm
        self.handle = handle
        self._finalizer = weakref.finalize(self, _destroy_shm, shm)
        _LIVE_EXPORTS.add(self)

    @property
    def name(self) -> str:
        """The block's name (what :func:`attach_tensor_shm` opens)."""
        return self.handle.shm_name

    def close(self) -> None:
        """Unmap and unlink the block.  Idempotent."""
        self._finalizer()

    def __enter__(self) -> "ShmExport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _destroy_shm(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - stray view still alive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _open_shm_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking tracker ownership.

    Python >= 3.13 exposes ``track=False`` for exactly this.  On older
    interpreters the attach registers the name with the resource tracker;
    that is harmless *and must be left in place*: pool workers share the
    exporting process's tracker (spawn hands children the tracker fd), its
    cache is a per-name set, so the attach-side registration is idempotent
    with the exporter's own and is cleared exactly once by the exporter's
    ``unlink``.  Explicitly unregistering here would strip the exporter's
    entry from the shared tracker and make that later ``unlink`` a noisy
    double-unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def export_tensor_shm(tensor: Tensor, name: str | None = None) -> ShmExport:
    """Copy ``tensor``'s storage into a fresh shared-memory block.

    The whole backing storage is exported (views share storages, so one
    export serves every view of a weight) together with the tensor's view
    metadata.  This is the codec's only byte copy; attaches are zero-copy.
    A zero-size storage still allocates a 1-byte block (the OS refuses
    empty segments); the handle's ``storage_numel`` keeps the truth.
    """
    _sweep_deferred_closes()
    storage = tensor.storage
    phys = storage.data
    shm = shared_memory.SharedMemory(
        create=True, size=max(1, storage.physical_nbytes), name=name
    )
    try:
        staging = np.frombuffer(shm.buf, dtype=phys.dtype, count=phys.size)
        staging[...] = phys
        del staging
        handle = ShmTensorHandle(
            shm_name=shm.name,
            dtype_name=storage.dtype.name,
            storage_numel=storage.numel,
            shape=tuple(tensor.shape),
            strides=tuple(tensor.strides),
            offset=int(tensor.offset),
            version=int(storage.version),
            device_name=storage.device.name,
        )
    except BaseException:
        _destroy_shm(shm)
        raise
    return ShmExport(shm, handle)


# Leases whose unmap had to wait for an outstanding view: (weakref to the
# pinning buffer array, shm).  Plain weakrefs, no callbacks -- a weakref
# *callback* fires mid-deallocation, before numpy has released its buffer
# export, so closing from one still hits BufferError; polling the ref
# instead guarantees the export is fully gone.  The strong shm reference
# also keeps ``SharedMemory.__del__`` (which would warn) from ever running
# on an un-closable mapping.
_deferred_closes: list[tuple[weakref.ReferenceType, shared_memory.SharedMemory]] = []


def _sweep_deferred_closes() -> None:
    """Unmap any parked lease whose last pinning view has died."""
    still_pinned = []
    for ref, shm in _deferred_closes:
        if ref() is not None:
            still_pinned.append((ref, shm))
            continue
        try:
            shm.close()
        except BufferError:  # pragma: no cover - export released lazily
            still_pinned.append((ref, shm))
    _deferred_closes[:] = still_pinned


class ShmLease:
    """A worker-side attachment: tensor view + the duty to close it.

    ``tensor`` is valid only while the lease is open.  ``close()`` unmaps
    the block immediately when nothing else references the mapped pages
    (the worker path -- results were copied out first); if the caller
    still holds the tensor (easy to do with the ``with ... as t``
    binding), the mapping is parked and unmapped by the next codec call
    after the last view dies, instead of raising ``BufferError``.  The
    block is never *unlinked* here -- the exporter owns its lifetime.
    """

    def __init__(self, handle: ShmTensorHandle):
        self.handle = handle
        try:
            self._shm: shared_memory.SharedMemory | None = _open_shm_untracked(
                handle.shm_name
            )
        except FileNotFoundError as exc:
            raise ShmLost(handle.shm_name) from exc
        dtype = get_dtype(handle.dtype_name)
        data = np.frombuffer(
            self._shm.buf, dtype=dtype.np_storage, count=handle.storage_numel
        )
        # The pages are shared by every worker and reused across sweeps;
        # a stray in-place write must fail loudly, not corrupt them all.
        data.flags.writeable = False
        self._data: np.ndarray | None = data
        storage = Storage(data, dtype, as_device(handle.device_name))
        self.tensor: Tensor | None = Tensor(
            storage, handle.shape, handle.strides, handle.offset
        )

    def close(self) -> None:
        """Release the lease; unmap now or as soon as the last view dies."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        data, self._data = self._data, None
        self.tensor = None
        data_ref = weakref.ref(data)
        del data
        try:
            shm.close()
        except BufferError:
            _deferred_closes.append((data_ref, shm))
        _sweep_deferred_closes()

    def __enter__(self) -> Tensor:
        assert self.tensor is not None
        return self.tensor

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_tensor_shm(handle: ShmTensorHandle) -> ShmLease:
    """Open a zero-copy view of an exported tensor in this process.

    Returns a :class:`ShmLease`; use it as a context manager (the yielded
    tensor shares the exporter's physical pages and must not outlive the
    lease).  Raises :class:`ShmLost` (a ``FileNotFoundError`` subclass)
    if the block was already unlinked -- the signal tests use to verify
    cleanup, and the signal the process engine recovers from by
    re-exporting.
    """
    _sweep_deferred_closes()
    return ShmLease(handle)


class ShmLeaseRegistry:
    """Long-lived lease pool keyed by a caller-chosen identity.

    The transient attach/compute/close pattern re-maps a layer's pages on
    every task; a *pinned* worker instead holds one lease per assigned
    layer across sweeps.  ``acquire`` hands back the held lease while the
    exported handle is unchanged (same block name, version, and view
    metadata -- the frozen-dataclass equality of
    :class:`ShmTensorHandle`), and transparently closes + re-attaches
    when the exporter rotated the block (an optimizer write re-exported
    the weight).  A key whose old block was unlinked under us still
    re-attaches cleanly: the held mapping keeps the dead block's pages
    alive only for this process and is released on rotation.

    Not thread-safe -- a process-pool worker services one task at a time,
    which is the intended habitat.  ``close_all`` releases every mapping
    (worker shutdown / engine reset).
    """

    def __init__(self) -> None:
        self._leases: dict[str, ShmLease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def acquire(self, key: str, handle: ShmTensorHandle) -> ShmLease:
        """The lease for ``key``, reused while ``handle`` is unchanged."""
        held = self._leases.get(key)
        if held is not None:
            if held.handle == handle and held.tensor is not None:
                return held
            held.close()
            del self._leases[key]
        lease = attach_tensor_shm(handle)
        self._leases[key] = lease
        return lease

    def release(self, key: str) -> None:
        """Close and forget ``key``'s lease (missing keys are a no-op)."""
        held = self._leases.pop(key, None)
        if held is not None:
            held.close()

    def close_all(self) -> None:
        """Release every held lease.  Idempotent."""
        for key in list(self._leases):
            self.release(key)


def materialize_shm(handle: ShmTensorHandle) -> np.ndarray:
    """Attach, copy the tensor's data out, detach.

    The round-trip primitive: safe to call from any process, returns a
    plain owned array (physical dtype), leaves the block mapped nowhere.
    """
    lease = attach_tensor_shm(handle)
    try:
        assert lease.tensor is not None
        return lease.tensor.numpy()
    finally:
        lease.close()
