"""The Tensor: strided metadata over a shared Storage.

Reproduces the PyTorch tensor architecture the paper's Section 2.1 describes:
a tensor is (shape, strides, offset) metadata plus a reference to a
:class:`~repro.tensor.storage.Storage`.  View operations (``view``,
``transpose``, ``expand``, basic slicing) return new metadata over the *same*
storage and cost no device memory; ``.to(device)`` must materialize a new
storage on the destination and is the operation whose redundancy eDKM's
marshaling removes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.tensor import autograd
from repro.tensor import dtype as dtypes
from repro.tensor.device import CPU, Device, device as as_device
from repro.tensor.dtype import DType, get_dtype
from repro.tensor.storage import Storage


def contiguous_strides(shape: Sequence[int]) -> tuple[int, ...]:
    """Row-major element strides for ``shape``."""
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(strides)


def _ops():
    from repro.tensor import ops

    return ops


class Tensor:
    """A strided, device-tagged, optionally differentiable array."""

    __slots__ = (
        "storage",
        "dtype",
        "shape",
        "strides",
        "offset",
        "requires_grad",
        "grad",
        "grad_fn",
        "consumers",
        "__weakref__",
    )

    def __init__(
        self,
        storage: Storage,
        shape: tuple[int, ...],
        strides: tuple[int, ...],
        offset: int = 0,
        requires_grad: bool = False,
    ) -> None:
        self.storage = storage
        self.dtype = storage.dtype
        self.shape = tuple(int(s) for s in shape)
        self.strides = tuple(int(s) for s in strides)
        self.offset = int(offset)
        self.requires_grad = bool(requires_grad)
        self.grad: Tensor | None = None
        self.grad_fn: autograd.Node | None = None
        # Weak references to Nodes that consumed this tensor as an input;
        # populated by Function.apply and walked (descendant direction) by
        # eDKM's cross-device marshaling.
        self.consumers: list[Any] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        values: np.ndarray,
        dtype: DType | str | None = None,
        device: Device | str = CPU,
        requires_grad: bool = False,
    ) -> "Tensor":
        """Allocate a fresh contiguous tensor holding ``values``."""
        values = np.asarray(values)
        if dtype is None:
            dtype = dtypes.from_numpy_dtype(values.dtype)
        dtype = get_dtype(dtype)
        dev = as_device(device)
        storage = Storage.from_values(values, dtype, dev)
        return cls(
            storage,
            shape=values.shape,
            strides=contiguous_strides(values.shape),
            requires_grad=requires_grad,
        )

    @classmethod
    def view_of(
        cls,
        base: "Tensor",
        shape: Sequence[int],
        strides: Sequence[int],
        offset: int,
    ) -> "Tensor":
        """A new tensor sharing ``base``'s storage with different metadata."""
        return cls(base.storage, tuple(shape), tuple(strides), offset)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def device(self) -> Device:
        return self.storage.device

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def numel(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_leaf(self) -> bool:
        return self.grad_fn is None

    @property
    def nbytes(self) -> int:
        """Logical bytes of this tensor's *storage* (shared across views)."""
        return self.storage.nbytes

    def is_contiguous(self) -> bool:
        return self.strides == contiguous_strides(self.shape)

    def shares_storage_with(self, other: "Tensor") -> bool:
        return self.storage is other.storage

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def _np(self) -> np.ndarray:
        """A (possibly non-contiguous) numpy view over this tensor's data."""
        phys = self.storage.data
        itemsize = phys.itemsize
        byte_strides = tuple(s * itemsize for s in self.strides)
        return np.lib.stride_tricks.as_strided(
            phys[self.offset :], shape=self.shape, strides=byte_strides
        )

    def _compute(self) -> np.ndarray:
        """Data as a contiguous array in the dtype's compute precision."""
        return np.ascontiguousarray(self._np(), dtype=self.dtype.np_compute)

    def numpy(self) -> np.ndarray:
        """A defensive copy of this tensor's data (physical dtype)."""
        return np.array(self._np())

    def item(self) -> float | int | bool:
        if self.numel != 1:
            raise ValueError(f"item() on tensor of shape {self.shape}")
        return self._np().reshape(()).item()

    def tolist(self) -> Any:
        return self._np().tolist()

    # ------------------------------------------------------------------
    # In-place mutation (never recorded on the tape)
    # ------------------------------------------------------------------

    def copy_(self, values: "Tensor | np.ndarray") -> "Tensor":
        """Overwrite data in place, preserving storage identity and device."""
        if isinstance(values, Tensor):
            values = values._compute()
        values = np.broadcast_to(np.asarray(values), self.shape)
        self._np()[...] = self.dtype.project(values).reshape(self.shape)
        self.storage.bump_version()
        return self

    def fill_(self, value: float) -> "Tensor":
        self._np()[...] = self.dtype.project(np.asarray(value))
        self.storage.bump_version()
        return self

    def zero_(self) -> "Tensor":
        return self.fill_(0.0)

    def _unsafe_add_(self, values: np.ndarray) -> "Tensor":
        """In-place accumulate, used only by the autograd engine."""
        current = self._np().astype(self.dtype.np_compute)
        self._np()[...] = self.dtype.project(current + values)
        self.storage.bump_version()
        return self

    # ------------------------------------------------------------------
    # Autograd surface
    # ------------------------------------------------------------------

    def backward(self, grad: "np.ndarray | Tensor | None" = None) -> None:
        if isinstance(grad, Tensor):
            grad = grad._compute()
        autograd.backward(self, grad)

    def detach(self) -> "Tensor":
        """A new leaf sharing this tensor's storage (no grad history)."""
        out = Tensor(self.storage, self.shape, self.strides, self.offset)
        return out

    def requires_grad_(self, value: bool = True) -> "Tensor":
        if value and self.grad_fn is not None:
            raise RuntimeError("cannot require grad on a non-leaf tensor")
        self.requires_grad = value
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Movement / casting
    # ------------------------------------------------------------------

    def to(self, device: Device | str, tag: str = "") -> "Tensor":
        """Copy to ``device`` (new storage; traffic is recorded).

        Returns ``self`` when already on the target device, mirroring
        ``torch.Tensor.to``.
        """
        dev = as_device(device)
        if dev == self.device:
            return self
        return _ops().to_device(self, dev, tag=tag)

    def cast(self, dtype: DType | str) -> "Tensor":
        dtype = get_dtype(dtype)
        if dtype is self.dtype:
            return self
        return _ops().cast(self, dtype)

    def float(self) -> "Tensor":
        return self.cast(dtypes.float32)

    def half(self) -> "Tensor":
        return self.cast(dtypes.float16)

    def bfloat16(self) -> "Tensor":
        return self.cast(dtypes.bfloat16)

    # ------------------------------------------------------------------
    # Shape ops (delegate to autograd Functions)
    # ------------------------------------------------------------------

    def view(self, *shape: int) -> "Tensor":
        return _ops().view(self, _normalize_shape(shape))

    def reshape(self, *shape: int) -> "Tensor":
        return _ops().reshape(self, _normalize_shape(shape))

    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        return _ops().transpose(self, dim0, dim1)

    def permute(self, *dims: int) -> "Tensor":
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        return _ops().permute(self, dims)

    def expand(self, *shape: int) -> "Tensor":
        return _ops().expand(self, _normalize_shape(shape))

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def squeeze(self, dim: int | None = None) -> "Tensor":
        if dim is None:
            new_shape = tuple(s for s in self.shape if s != 1) or (1,)
        else:
            dim = dim % max(self.ndim, 1)
            if self.shape[dim] != 1:
                return self
            new_shape = self.shape[:dim] + self.shape[dim + 1 :]
        return self.reshape(*new_shape)

    def unsqueeze(self, dim: int) -> "Tensor":
        dim = dim % (self.ndim + 1)
        new_shape = self.shape[:dim] + (1,) + self.shape[dim:]
        return self.reshape(*new_shape)

    def contiguous(self) -> "Tensor":
        if self.is_contiguous():
            return self
        return _ops().contiguous(self)

    @property
    def T(self) -> "Tensor":
        if self.ndim != 2:
            raise ValueError(".T requires a 2-D tensor")
        return self.transpose(0, 1)

    def __getitem__(self, key: Any) -> "Tensor":
        return _ops().slice_(self, key)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: Any) -> "Tensor":
        return _ops().add(self, other)

    def __radd__(self, other: Any) -> "Tensor":
        return _ops().add(self, other)

    def __sub__(self, other: Any) -> "Tensor":
        return _ops().sub(self, other)

    def __rsub__(self, other: Any) -> "Tensor":
        return _ops().sub(_ops().constant_like(self, other), self)

    def __mul__(self, other: Any) -> "Tensor":
        return _ops().mul(self, other)

    def __rmul__(self, other: Any) -> "Tensor":
        return _ops().mul(self, other)

    def __truediv__(self, other: Any) -> "Tensor":
        return _ops().div(self, other)

    def __rtruediv__(self, other: Any) -> "Tensor":
        return _ops().div(_ops().constant_like(self, other), self)

    def __neg__(self) -> "Tensor":
        return _ops().neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return _ops().pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return _ops().matmul(self, other)

    # Comparisons: non-differentiable, produce bool tensors.
    def __eq__(self, other: Any):  # type: ignore[override]
        return _ops().compare(self, other, "eq")

    def __ne__(self, other: Any):  # type: ignore[override]
        return _ops().compare(self, other, "ne")

    def __lt__(self, other: Any) -> "Tensor":
        return _ops().compare(self, other, "lt")

    def __le__(self, other: Any) -> "Tensor":
        return _ops().compare(self, other, "le")

    def __gt__(self, other: Any) -> "Tensor":
        return _ops().compare(self, other, "gt")

    def __ge__(self, other: Any) -> "Tensor":
        return _ops().compare(self, other, "ge")

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------
    # Reductions / elementwise sugar
    # ------------------------------------------------------------------

    def sum(self, dim: int | None = None, keepdim: bool = False) -> "Tensor":
        return _ops().sum_(self, dim=dim, keepdim=keepdim)

    def mean(self, dim: int | None = None, keepdim: bool = False) -> "Tensor":
        return _ops().mean(self, dim=dim, keepdim=keepdim)

    def max(self, dim: int | None = None, keepdim: bool = False) -> "Tensor":
        return _ops().max_(self, dim=dim, keepdim=keepdim)

    def min(self, dim: int | None = None, keepdim: bool = False) -> "Tensor":
        return _ops().min_(self, dim=dim, keepdim=keepdim)

    def exp(self) -> "Tensor":
        return _ops().exp(self)

    def log(self) -> "Tensor":
        return _ops().log(self)

    def sqrt(self) -> "Tensor":
        return _ops().sqrt(self)

    def abs(self) -> "Tensor":
        return _ops().abs_(self)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        return _ops().clip(self, low, high)

    def softmax(self, dim: int = -1) -> "Tensor":
        return _ops().softmax(self, dim=dim)

    def log_softmax(self, dim: int = -1) -> "Tensor":
        return _ops().log_softmax(self, dim=dim)

    def argmax(self, dim: int | None = None) -> "Tensor":
        return _ops().argmax(self, dim=dim)

    def argmin(self, dim: int | None = None) -> "Tensor":
        return _ops().argmin(self, dim=dim)

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
            f"device={self.device.name}{grad_part})\n{self._np()!r}"
        )

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]


def _normalize_shape(shape: tuple) -> tuple[int, ...]:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        return tuple(int(s) for s in shape[0])
    return tuple(int(s) for s in shape)


# --------------------------------------------------------------------------
# Factory functions
# --------------------------------------------------------------------------


def tensor(
    data: Any,
    dtype: DType | str | None = None,
    device: Device | str = CPU,
    requires_grad: bool = False,
) -> Tensor:
    """Create a tensor from array-like data."""
    array = np.asarray(data)
    if dtype is None and array.dtype == np.float64:
        dtype = dtypes.float32
    return Tensor.from_numpy(array, dtype=dtype, device=device, requires_grad=requires_grad)


def zeros(
    *shape: int,
    dtype: DType | str = dtypes.float32,
    device: Device | str = CPU,
    requires_grad: bool = False,
) -> Tensor:
    shape = _normalize_shape(shape)
    dt = get_dtype(dtype)
    return Tensor.from_numpy(
        np.zeros(shape, dtype=dt.np_storage),
        dtype=dt,
        device=device,
        requires_grad=requires_grad,
    )


def ones(
    *shape: int,
    dtype: DType | str = dtypes.float32,
    device: Device | str = CPU,
    requires_grad: bool = False,
) -> Tensor:
    shape = _normalize_shape(shape)
    dt = get_dtype(dtype)
    return Tensor.from_numpy(
        np.ones(shape, dtype=dt.np_storage),
        dtype=dt,
        device=device,
        requires_grad=requires_grad,
    )


def full(
    shape: Iterable[int],
    value: float,
    dtype: DType | str = dtypes.float32,
    device: Device | str = CPU,
) -> Tensor:
    dt = get_dtype(dtype)
    return Tensor.from_numpy(
        np.full(tuple(shape), value, dtype=dt.np_storage), dtype=dt, device=device
    )


def arange(
    start: int,
    stop: int | None = None,
    step: int = 1,
    dtype: DType | str = dtypes.int64,
    device: Device | str = CPU,
) -> Tensor:
    if stop is None:
        start, stop = 0, start
    dt = get_dtype(dtype)
    return Tensor.from_numpy(
        np.arange(start, stop, step).astype(dt.np_storage), dtype=dt, device=device
    )
