"""Word-level tokenizer over a closed vocabulary.

The synthetic fact world (see :mod:`repro.data`) has a small closed lexicon,
so a word-level tokenizer gives the small substrate models a realistic
learning problem (facts, not spelling).  Special tokens follow LLM
conventions: BOS/EOS framing and PAD for batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WordTokenizer:
    """Bidirectional word <-> id mapping with special tokens."""

    words: list[str]
    pad_token: str = "<pad>"
    bos_token: str = "<bos>"
    eos_token: str = "<eos>"
    unk_token: str = "<unk>"
    _word_to_id: dict[str, int] = field(init=False, repr=False)
    _id_to_word: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        specials = [self.pad_token, self.bos_token, self.eos_token, self.unk_token]
        seen = dict.fromkeys(specials)
        for word in self.words:
            if word not in seen:
                seen[word] = None
        self._id_to_word = list(seen)
        self._word_to_id = {w: i for i, w in enumerate(self._id_to_word)}

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    @property
    def pad_id(self) -> int:
        return self._word_to_id[self.pad_token]

    @property
    def bos_id(self) -> int:
        return self._word_to_id[self.bos_token]

    @property
    def eos_id(self) -> int:
        return self._word_to_id[self.eos_token]

    @property
    def unk_id(self) -> int:
        return self._word_to_id[self.unk_token]

    def encode(self, text: str, bos: bool = False, eos: bool = False) -> list[int]:
        ids = [self._word_to_id.get(w, self.unk_id) for w in text.split()]
        if bos:
            ids.insert(0, self.bos_id)
        if eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        specials = {self.pad_id, self.bos_id, self.eos_id}
        words = []
        for token_id in ids:
            if skip_special and token_id in specials:
                continue
            if 0 <= token_id < len(self._id_to_word):
                words.append(self._id_to_word[token_id])
            else:
                words.append(self.unk_token)
        return " ".join(words)

    @classmethod
    def from_corpus(cls, sentences: list[str]) -> "WordTokenizer":
        """Build the vocabulary from every word appearing in ``sentences``."""
        vocab: dict[str, None] = {}
        for sentence in sentences:
            for word in sentence.split():
                vocab.setdefault(word, None)
        return cls(words=sorted(vocab))
