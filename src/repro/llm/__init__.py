"""LLM substrate: tokenizer, model presets, generation, fine-tuning."""

from repro.llm.config import LLAMA_7B, MICRO, SMALL, TINY, ModelSpec, build_model
from repro.llm.finetune import FinetuneConfig, TrainResult, train_causal_lm
from repro.llm.generate import batched_last_logits, generate, generate_batch
from repro.llm.tokenizer import WordTokenizer

__all__ = [
    "LLAMA_7B",
    "MICRO",
    "SMALL",
    "TINY",
    "ModelSpec",
    "build_model",
    "FinetuneConfig",
    "TrainResult",
    "train_causal_lm",
    "batched_last_logits",
    "generate",
    "generate_batch",
    "WordTokenizer",
]
