"""Autoregressive generation: single-prompt, batched, and bucketed logits.

Batched decoding here is **length-bucketed**, not padded: active rows
are grouped by current window length and each group runs one forward.
Rows of equal length stack into one ``(B, L)`` call whose per-row logits
are bit-identical to ``B`` separate ``(1, L)`` calls (numpy executes a
stacked matmul as independent per-row gemms, and every other op in the
model is row-wise), so ``generate_batch`` over N prompts reproduces N
``generate`` calls *exactly* -- the property the serving layer's
identity gates rely on.  Right-padding was rejected because numpy's
pairwise summation associates differently at different reduction
lengths, which breaks bit-identity through softmax/norm denominators.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.llm.tokenizer import WordTokenizer
from repro.nn import Transformer
from repro.tensor.autograd import no_grad
from repro.tensor.device import Device
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


def batched_last_logits(
    model: Transformer,
    windows: list[list[int]],
    device: Device | None = None,
) -> list[np.ndarray]:
    """Last-position logits for each token window, bucketed by length.

    ``windows[i]`` is a token window of length ``<= model.max_seq_len``
    (callers truncate).  Windows of equal length share one batched
    forward; the result list lines up with ``windows`` and each entry is
    bit-identical to a single-prompt forward of that window.
    """
    if not windows:
        return []
    device = device or model.embed.weight.device
    buckets: dict[int, list[int]] = defaultdict(list)
    for i, window in enumerate(windows):
        if not window:
            raise ValueError("empty token window")
        if len(window) > model.max_seq_len:
            raise ValueError(
                f"window of {len(window)} tokens exceeds max_seq_len "
                f"{model.max_seq_len}"
            )
        buckets[len(window)].append(i)
    out: list[np.ndarray | None] = [None] * len(windows)
    with no_grad():
        for length, rows in sorted(buckets.items()):
            tokens = Tensor.from_numpy(
                np.asarray([windows[i] for i in rows], dtype=np.int64),
                device=device,
            )
            logits = model(tokens)._compute()
            for pos, i in enumerate(rows):
                out[i] = np.ascontiguousarray(logits[pos, length - 1])
    return out  # type: ignore[return-value]


def _pick_next(
    last: np.ndarray, temperature: float, rng: np.random.Generator
) -> int:
    """Greedy argmax at temperature 0, else temperature sampling."""
    if temperature > 0:
        scaled = last / temperature
        scaled -= scaled.max()
        probs = np.exp(scaled) / np.exp(scaled).sum()
        return int(rng.choice(len(probs), p=probs))
    return int(np.argmax(last))


def generate_batch(
    model: Transformer,
    tokenizer: WordTokenizer,
    prompts: list[str],
    max_new_tokens: int = 8,
    temperature: float = 0.0,
    device: Device | None = None,
    rngs: list[np.random.Generator] | None = None,
) -> list[str]:
    """Continue every prompt; returns only the newly generated texts.

    Decoding is continuous at the function scale: each step forwards only
    the still-active rows (EOS or token budget retires a row without
    stalling the others), grouped into length buckets.  With the default
    per-row rngs the output is bit-identical to calling :func:`generate`
    once per prompt.
    """
    device = device or model.embed.weight.device
    if rngs is None:
        rngs = [default_rng(0) for _ in prompts]
    if len(rngs) != len(prompts):
        raise ValueError(
            f"got {len(rngs)} rngs for {len(prompts)} prompts"
        )
    ids = [tokenizer.encode(prompt, bos=True) for prompt in prompts]
    generated: list[list[int]] = [[] for _ in prompts]
    active = list(range(len(prompts)))
    for _ in range(max_new_tokens):
        if not active:
            break
        windows = [ids[i][-model.max_seq_len :] for i in active]
        lasts = batched_last_logits(model, windows, device=device)
        still_active: list[int] = []
        for i, last in zip(active, lasts):
            next_id = _pick_next(last, temperature, rngs[i])
            if next_id == tokenizer.eos_id:
                continue
            ids[i].append(next_id)
            generated[i].append(next_id)
            still_active.append(i)
        active = still_active
    return [tokenizer.decode(tokens) for tokens in generated]


def generate(
    model: Transformer,
    tokenizer: WordTokenizer,
    prompt: str,
    max_new_tokens: int = 8,
    temperature: float = 0.0,
    device: Device | None = None,
    rng: np.random.Generator | None = None,
) -> str:
    """Continue ``prompt``; returns only the newly generated text.

    ``temperature == 0`` is greedy decoding; generation stops early at
    EOS.  Implemented as a batch of one -- :func:`generate_batch` is the
    engine.
    """
    return generate_batch(
        model,
        tokenizer,
        [prompt],
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        device=device,
        rngs=[rng or default_rng(0)],
    )[0]
