"""Autoregressive generation (greedy and temperature sampling)."""

from __future__ import annotations

import numpy as np

from repro.llm.tokenizer import WordTokenizer
from repro.nn import Transformer
from repro.tensor.autograd import no_grad
from repro.tensor.device import Device
from repro.tensor.tensor import Tensor


def generate(
    model: Transformer,
    tokenizer: WordTokenizer,
    prompt: str,
    max_new_tokens: int = 8,
    temperature: float = 0.0,
    device: Device | None = None,
    rng: np.random.Generator | None = None,
) -> str:
    """Continue ``prompt``; returns only the newly generated text.

    ``temperature == 0`` is greedy decoding; generation stops early at EOS.
    """
    device = device or model.embed.weight.device
    rng = rng or np.random.default_rng(0)
    ids = tokenizer.encode(prompt, bos=True)
    generated: list[int] = []
    with no_grad():
        for _ in range(max_new_tokens):
            window = ids[-model.max_seq_len :]
            tokens = Tensor.from_numpy(
                np.asarray([window], dtype=np.int64), device=device
            )
            logits = model(tokens)
            last = logits[0, len(window) - 1]._compute()
            if temperature > 0:
                scaled = last / temperature
                scaled -= scaled.max()
                probs = np.exp(scaled) / np.exp(scaled).sum()
                next_id = int(rng.choice(len(probs), p=probs))
            else:
                next_id = int(np.argmax(last))
            if next_id == tokenizer.eos_id:
                break
            ids.append(next_id)
            generated.append(next_id)
    return tokenizer.decode(generated)
