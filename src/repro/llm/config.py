"""Model scale presets.

``tiny``/``small`` run the end-to-end experiments on a single CPU;
``LLAMA_7B`` records the true LLaMA-7B dimensions and exists purely for the
analytic size/memory arithmetic that reproduces the paper's GB-scale
numbers (12.6 GB fp16, 224 GB attention map, 2.5 GB at 3 bits).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Architecture hyper-parameters of a LLaMA-style decoder."""

    name: str
    vocab_size: int
    dim: int
    n_layers: int
    n_heads: int
    hidden_dim: int
    max_seq_len: int

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    def attention_params_per_layer(self) -> int:
        return 4 * self.dim * self.dim

    def mlp_params_per_layer(self) -> int:
        return 3 * self.dim * self.hidden_dim

    def norm_params(self) -> int:
        return (2 * self.n_layers + 1) * self.dim

    def embedding_params(self) -> int:
        return self.vocab_size * self.dim

    def head_params(self) -> int:
        return self.vocab_size * self.dim

    def body_params(self) -> int:
        """Linear weights clustered/quantized by compression schemes."""
        return self.n_layers * (
            self.attention_params_per_layer() + self.mlp_params_per_layer()
        ) + self.head_params()

    def total_params(self) -> int:
        return self.body_params() + self.embedding_params() + self.norm_params()


MICRO = ModelSpec(
    name="micro",
    vocab_size=256,
    dim=32,
    n_layers=2,
    n_heads=4,
    hidden_dim=64,
    max_seq_len=64,
)

TINY = ModelSpec(
    name="tiny",
    vocab_size=512,
    dim=64,
    n_layers=2,
    n_heads=4,
    hidden_dim=128,
    max_seq_len=64,
)

SMALL = ModelSpec(
    name="small",
    vocab_size=512,
    dim=128,
    n_layers=4,
    n_heads=8,
    hidden_dim=256,
    max_seq_len=128,
)

LLAMA_7B = ModelSpec(
    name="llama-7b",
    vocab_size=32000,
    dim=4096,
    n_layers=32,
    n_heads=32,
    hidden_dim=11008,
    max_seq_len=2048,
)


def build_model(spec: ModelSpec, vocab_size: int | None = None, seed: int = 0):
    """Instantiate a :class:`repro.nn.Transformer` for ``spec``."""
    from repro.nn import Transformer

    return Transformer(
        vocab_size=vocab_size or spec.vocab_size,
        dim=spec.dim,
        n_layers=spec.n_layers,
        n_heads=spec.n_heads,
        hidden_dim=spec.hidden_dim,
        max_seq_len=spec.max_seq_len,
        seed=seed,
    )
