"""Fine-tuning loops.

Mirrors the paper's recipe (Section 3): AdamW with betas (0.9, 0.95) and
zero weight decay, global gradient-norm clipping at 1.0, and -- when a
:class:`~repro.core.offload.SavedTensorPipeline` is supplied -- every
forward/backward runs inside a pipeline step so saved tensors are offloaded,
marshaled and sharded exactly as eDKM prescribes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.offload import SavedTensorPipeline
from repro.nn import Module, cross_entropy
from repro.optim import AdamW, clip_grad_norm_

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.data.loader import Batch


@dataclass
class FinetuneConfig:
    """Optimizer hyper-parameters (paper defaults scaled for small models)."""

    lr: float = 3e-3
    betas: tuple[float, float] = (0.9, 0.95)
    weight_decay: float = 0.0
    grad_clip: float = 1.0

    @classmethod
    def paper(cls) -> "FinetuneConfig":
        """The exact LLaMA-7B recipe from the paper (lr 5e-5)."""
        return cls(lr=5e-5)


@dataclass
class TrainResult:
    losses: list[float] = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_causal_lm(
    model: Module,
    batches: Iterable[Batch],
    config: FinetuneConfig | None = None,
    pipeline: SavedTensorPipeline | None = None,
    max_steps: int | None = None,
) -> TrainResult:
    """Train ``model`` on an iterable of :class:`Batch` objects.

    ``pipeline`` scopes each step in the eDKM saved-tensor hooks; without it
    training runs with default (on-device) saved tensors.
    """
    config = config or FinetuneConfig()
    optimizer = AdamW(
        model.parameters(),
        lr=config.lr,
        betas=config.betas,
        weight_decay=config.weight_decay,
    )
    result = TrainResult()
    model.train()
    for batch in batches:
        if max_steps is not None and result.steps >= max_steps:
            break
        scope = pipeline.step() if pipeline is not None else contextlib.nullcontext()
        with scope:
            logits = model(batch.tokens)
            loss = cross_entropy(logits, batch.targets)
            optimizer.zero_grad()
            loss.backward()
        clip_grad_norm_(model.parameters(), config.grad_clip)
        optimizer.step()
        result.losses.append(loss.item())
        result.steps += 1
    return result
