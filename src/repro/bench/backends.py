"""Compression-backend benchmark: serial vs thread vs process fan-out.

Measures the two quantities the process backend exists to change:

- **sweep wall time** -- a multi-layer ``precluster`` sweep (per-layer
  refine + hard assign) through each ``CompressorConfig.backend``, on
  layers big enough that kernel time dominates.  Thread and process rows
  are asserted *bit-identical* to serial (centroids, assignments,
  temperatures, reconstruction errors, per-layer step-cache counters).
- **dispatch overhead** -- the same sweep on deliberately tiny layers
  (compute is negligible), so the sweep's wall time *is* the backend's
  per-sweep dispatch cost: thread-pool handoff for ``"thread"``, task
  pickling + IPC + shm attach for ``"process"``.  This is the number that
  decides when the process backend's overlap of Python-side op dispatch
  pays for its transport.

After every process-backend run the engine's shared-memory blocks are
closed and each recorded block name is probed: ``shm_cleaned`` is true
iff every probe raises ``FileNotFoundError``.
``benchmarks/bench_backends.py`` wraps :func:`run_backends` into the CLI
that writes ``BENCH_backends.json`` (schema: ``docs/benchmarks.md``).
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import shared_memory

import numpy as np

import repro.nn as nn
from repro.core.compressor import ModelCompressor
from repro.core.config import BACKENDS, CompressorConfig, DKMConfig
from repro.core.fastpath import FastPathStats


class _LinearStack(nn.Module):
    """``n_layers`` independent Linears -- the multi-layer fan-out target."""

    def __init__(self, n_layers: int, in_features: int, out_features: int, seed: int):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(
                    in_features,
                    out_features,
                    bias=False,
                    rng=np.random.default_rng(seed + i),
                ),
            )


@dataclass
class BackendRow:
    """One backend's timing + equivalence result for one sweep shape."""

    backend: str
    n_layers: int
    weights_per_layer: int
    workers: int
    wall_seconds: float
    bit_identical: bool
    stats_identical: bool
    shm_blocks: int = 0

    def speedup_over(self, serial_seconds: float) -> float:
        """Serial wall time over this backend's (higher is better)."""
        return serial_seconds / max(self.wall_seconds, 1e-12)


@dataclass
class BackendBenchResult:
    """Everything :func:`run_backends` measured, JSON-serializable."""

    cpu_count: int = 0
    workers: int = 0
    sweeps: list[BackendRow] = field(default_factory=list)
    dispatch: list[BackendRow] = field(default_factory=list)
    shm_cleaned: bool = True

    def to_json_dict(self) -> dict:
        """The ``BENCH_backends.json`` payload (see ``docs/benchmarks.md``)."""

        def rows(items: list[BackendRow]) -> list[dict]:
            serial = {
                (r.n_layers, r.weights_per_layer): r.wall_seconds
                for r in items
                if r.backend == "serial"
            }
            out = []
            for row in items:
                d = asdict(row)
                base = serial.get((row.n_layers, row.weights_per_layer))
                d["speedup"] = row.speedup_over(base) if base is not None else None
                d["dispatch_per_layer_seconds"] = row.wall_seconds / max(
                    row.n_layers, 1
                )
                out.append(d)
            return out

        return {
            "benchmark": "backends",
            "cpu_count": self.cpu_count,
            "workers": self.workers,
            "sweeps": rows(self.sweeps),
            "dispatch": rows(self.dispatch),
            "shm_cleaned": self.shm_cleaned,
        }


def _build_compressor(
    backend: str,
    n_layers: int,
    in_features: int,
    out_features: int,
    workers: int,
    bits: int,
    iters: int,
    seed: int,
) -> ModelCompressor:
    stack = _LinearStack(n_layers, in_features, out_features, seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=bits, iters=iters),
        config=CompressorConfig(backend=backend, num_workers=workers),
    )
    compressor.compress(stack)
    return compressor


def _reset(compressor: ModelCompressor) -> None:
    """Fresh clustering state + empty step caches for a timed sweep."""
    for wrapper in compressor.wrapped.values():
        wrapper.clusterer.state = None
        wrapper.step_cache.invalidate()
        wrapper.step_cache.stats = FastPathStats()


def _timed_sweeps(
    compressor: ModelCompressor, repeats: int, compute_error: bool
) -> tuple[float, dict]:
    """Min-of-``repeats`` wall time; a warm-up sweep absorbs one-time costs.

    The warm-up (untimed) sweep spins the process backend's pool up and
    populates its shm export cache, so timed rows report the steady-state
    sweep cost rather than worker spawn time.  State is reset before every
    sweep, so each timed run does the full from-scratch clustering.
    """
    _reset(compressor)
    compressor.precluster(compute_error=compute_error)
    best = float("inf")
    results: dict = {}
    for _ in range(repeats):
        _reset(compressor)
        start = time.perf_counter()
        results = compressor.precluster(compute_error=compute_error)
        best = min(best, time.perf_counter() - start)
    return best, results


def _layer_stats(compressor: ModelCompressor) -> dict[str, dict]:
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _results_identical(reference: dict, candidate: dict) -> bool:
    if list(reference) != list(candidate):
        return False
    return all(
        np.array_equal(reference[name].centroids, candidate[name].centroids)
        and np.array_equal(reference[name].assignments, candidate[name].assignments)
        and reference[name].temperature == candidate[name].temperature
        and reference[name].reconstruction_error
        == candidate[name].reconstruction_error
        for name in reference
    )


def _all_unlinked(names: list[str]) -> bool:
    for name in names:
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:
            return False
        finally:
            block.close()
    return True


def _sweep_all_backends(
    result: BackendBenchResult,
    rows: list[BackendRow],
    n_layers: int,
    in_features: int,
    out_features: int,
    workers: int,
    bits: int,
    iters: int,
    repeats: int,
    seed: int,
    compute_error: bool,
) -> None:
    reference_results: dict | None = None
    reference_stats: dict | None = None
    for backend in BACKENDS:
        compressor = _build_compressor(
            backend, n_layers, in_features, out_features, workers, bits, iters, seed
        )
        wall, results = _timed_sweeps(compressor, repeats, compute_error)
        stats = _layer_stats(compressor)
        shm_names: list[str] = []
        if compressor._engine is not None:
            shm_names = compressor._engine.active_shm_names()
        compressor.close()
        if shm_names and not _all_unlinked(shm_names):
            result.shm_cleaned = False
        if backend == "serial":
            reference_results, reference_stats = results, stats
            bit_identical = stats_identical = True
        else:
            assert reference_results is not None
            bit_identical = _results_identical(reference_results, results)
            stats_identical = reference_stats == stats
        rows.append(
            BackendRow(
                backend=backend,
                n_layers=n_layers,
                weights_per_layer=in_features * out_features,
                workers=workers,
                wall_seconds=wall,
                bit_identical=bit_identical,
                stats_identical=stats_identical,
                shm_blocks=len(shm_names),
            )
        )


def run_backends(
    n_layers: int = 8,
    in_features: int = 512,
    out_features: int = 512,
    workers: int = 4,
    bits: int = 3,
    iters: int = 3,
    repeats: int = 3,
    dispatch_features: int = 16,
    seed: int = 0,
) -> BackendBenchResult:
    """Run the backend sweep + dispatch-overhead benchmarks, fixed seed.

    The main sweep uses ``n_layers`` layers of ``in_features x
    out_features`` weights (compute-dominated); the dispatch sweep reuses
    ``n_layers`` but shrinks every layer to ``dispatch_features^2``
    weights, making the measured wall time almost pure backend dispatch.
    """
    result = BackendBenchResult(cpu_count=os.cpu_count() or 1, workers=workers)
    _sweep_all_backends(
        result,
        result.sweeps,
        n_layers,
        in_features,
        out_features,
        workers,
        bits,
        iters,
        repeats,
        seed,
        compute_error=True,
    )
    _sweep_all_backends(
        result,
        result.dispatch,
        n_layers,
        dispatch_features,
        dispatch_features,
        workers,
        bits,
        iters,
        repeats,
        seed,
        compute_error=False,
    )
    return result
