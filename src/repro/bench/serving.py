"""Serving benchmark: palette execution vs dense under concurrent traffic.

Trains one small model, compresses it, and serves the same request load
through three scenarios:

- ``uncompressed`` -- the plain 16-bit model behind the same queue and
  batcher (the baseline the paper's deployment story competes with);
- ``compressed-dense`` -- clustered layers reconstructing the full hard
  weight per layer (``eval_path="dense"``);
- ``compressed-palette`` -- clustered layers on the palette kernels with
  the hot-tile LRU (``eval_path="palette"``).

Each scenario reports requests/sec, p50/p99 latency, batch occupancy,
and weight bytes (resident artifact + per-step read traffic from the
ledger).  Two gates make the numbers trustworthy rather than merely
fast:

- **token identity** -- the palette scenario's completions, produced
  under concurrent multi-client load, must be *identical* to the dense
  scenario's and to offline single-prompt :func:`repro.llm.generate.
  generate` on the same compressed model;
- **admission control** -- a submit burst beyond the queue bound must
  shed load with :class:`~repro.serving.queue.AdmissionError`, and a
  microscopic deadline must reject with
  :class:`~repro.serving.queue.DeadlineExceeded`; everything submitted
  must be accounted for (completed + rejected == submitted).

``benchmarks/bench_serving.py`` wraps :func:`run_serving` into the CLI
that writes ``BENCH_serving.json`` (schema: ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass, field

from repro.core import ClusteredLinear
from repro.core.compressor import ModelCompressor
from repro.core.config import DKMConfig
from repro.data import (
    FactWorld,
    corpus_batches,
    corpus_vocabulary,
    generate_corpus,
)
from repro.llm import (
    MICRO,
    FinetuneConfig,
    WordTokenizer,
    build_model,
    generate,
    train_causal_lm,
)
from repro.memory.traffic import TrafficLedger
from repro.serving import (
    AdmissionError,
    PaletteServer,
    ServingConfig,
    request_tag,
)

import repro.tensor as rt


@dataclass
class ServingScenarioRow:
    """One scenario's throughput/latency/byte measurements."""

    scenario: str
    eval_path: str
    wall_s: float
    submitted: int
    completed: int
    requests_per_s: float
    tokens_per_s: float
    latency_p50_s: float | None
    latency_p99_s: float | None
    decode_steps: int
    mean_batch_occupancy: float
    weight_bytes_resident: int
    palette_exec_bytes: int
    weight_bytes_read: int
    tile_cache: dict = field(default_factory=dict)
    completions: list[str] = field(default_factory=list)


@dataclass
class ServingBenchResult:
    """Everything :func:`run_serving` measured, JSON-serializable."""

    cpu_count: int = 0
    n_requests: int = 0
    max_new_tokens: int = 0
    max_batch_size: int = 0
    bits: int = 0
    rows: list[ServingScenarioRow] = field(default_factory=list)
    offline_reference: list[str] = field(default_factory=list)
    tokens_identical: bool = False
    admission_rejected: int = 0
    admission_completed: int = 0
    admission_submit_attempts: int = 0
    admission_accounted: bool = False
    deadline_rejected: int = 0
    request_bytes_tagged: int = 0

    def row(self, scenario: str) -> ServingScenarioRow | None:
        """The named scenario's row, if recorded."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        return None

    def to_json_dict(self) -> dict:
        """The ``BENCH_serving.json`` payload (see ``docs/benchmarks.md``)."""
        palette = self.row("compressed-palette")
        uncompressed = self.row("uncompressed")
        return {
            "benchmark": "serving",
            "cpu_count": self.cpu_count,
            "n_requests": self.n_requests,
            "max_new_tokens": self.max_new_tokens,
            "max_batch_size": self.max_batch_size,
            "bits": self.bits,
            "rows": [asdict(row) for row in self.rows],
            "tokens_identical": self.tokens_identical,
            "palette_vs_uncompressed_weight_bytes": (
                None
                if palette is None or uncompressed is None
                or not uncompressed.weight_bytes_resident
                else palette.weight_bytes_resident
                / uncompressed.weight_bytes_resident
            ),
            "admission": {
                "submit_attempts": self.admission_submit_attempts,
                "rejected": self.admission_rejected,
                "completed": self.admission_completed,
                "accounted": self.admission_accounted,
            },
            "deadline_rejected": self.deadline_rejected,
            "request_bytes_tagged": self.request_bytes_tagged,
        }


def _train_small_model(sentences: int, epochs: int, seed: int):
    """One briefly fine-tuned MICRO model plus its tokenizer and prompts."""
    world = FactWorld(seed=seed)
    tokenizer = WordTokenizer(corpus_vocabulary(world))
    corpus = generate_corpus(world, sentences, seed=seed + 1)
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=seed)
    model.to(rt.GPU)
    train_causal_lm(
        model,
        corpus_batches(corpus, tokenizer, 16, rt.GPU, epochs=epochs, seed=seed + 2),
        FinetuneConfig(lr=3e-3),
    )
    model.eval()
    return model, tokenizer, corpus


def _state_dict(model) -> dict:
    return {k: v.numpy().copy() for k, v in model.state_dict().items()}


def _load_state(model, state: dict) -> None:
    for name, param in model.state_dict().items():
        param.copy_(state[name])
    model.eval()


def _weight_bytes_resident(model, eval_path: str) -> tuple[int, int]:
    """Deployable weight bytes plus palette execution-layout bytes.

    Dense scenarios hold the full weight tensor; the palette scenario
    ships the packed artifact (16-bit lut + bit-packed indices) and
    additionally keeps the unpacked execution layout resident, which the
    second return value reports separately.
    """
    modules = list(model.named_modules())
    inner_ids = {
        id(m.inner) for _, m in modules if isinstance(m, ClusteredLinear)
    }
    total = 0
    exec_bytes = 0
    for _, module in modules:
        if isinstance(module, ClusteredLinear):
            if eval_path == "palette" and module.palette_exec is not None:
                total += module.palette_exec.packed_nbytes
                exec_bytes += module.palette_exec.nbytes
            else:
                total += module.inner.weight.nbytes
            continue
        if id(module) in inner_ids:
            continue
        weight = getattr(module, "weight", None)
        if weight is not None and hasattr(weight, "nbytes"):
            total += weight.nbytes
    return total, exec_bytes


def _drive_concurrent(
    server: PaletteServer,
    prompts: list[str],
    max_new_tokens: int,
    clients: int = 4,
    timeout: float = 300.0,
) -> list[str]:
    """Submit every prompt from ``clients`` threads; return texts in order."""
    results: list[str | None] = [None] * len(prompts)
    errors: list[BaseException] = []

    def client(indices: list[int]) -> None:
        for i in indices:
            try:
                results[i] = server.generate(
                    prompts[i], max_new_tokens=max_new_tokens, timeout=timeout
                )
            except BaseException as exc:  # surfaced to the caller below
                errors.append(exc)
                return

    threads = [
        threading.Thread(target=client, args=(list(range(c, len(prompts), clients)),))
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [r for r in results if r is not None]


def _run_scenario(
    name: str,
    model,
    tokenizer,
    prompts: list[str],
    config: ServingConfig,
    max_new_tokens: int,
) -> ServingScenarioRow:
    ledger = TrafficLedger()
    server = PaletteServer(model, tokenizer, config=config, ledger=ledger)
    with server:
        completions = _drive_concurrent(server, prompts, max_new_tokens)
        report = server.stats()
        resident, exec_bytes = _weight_bytes_resident(model, config.eval_path)
        tile_stats = server.tile_cache.stats.to_dict()
    return ServingScenarioRow(
        scenario=name,
        eval_path=config.eval_path,
        wall_s=report.wall_s,
        submitted=report.submitted,
        completed=report.completed,
        requests_per_s=report.requests_per_s,
        tokens_per_s=report.tokens_per_s,
        latency_p50_s=report.latency_p50_s,
        latency_p99_s=report.latency_p99_s,
        decode_steps=report.decode_steps,
        mean_batch_occupancy=report.mean_batch_occupancy,
        weight_bytes_resident=resident,
        palette_exec_bytes=exec_bytes,
        weight_bytes_read=report.weight_bytes_read,
        tile_cache=tile_stats,
        completions=completions,
    )


def _probe_admission(
    model, tokenizer, result: ServingBenchResult, prompt: str
) -> None:
    """Flood a tiny queue; count sheds and prove request accounting."""
    config = ServingConfig(
        max_batch_size=1,
        max_queue_depth=2,
        max_new_tokens=4,
        poll_interval_s=0.001,
    )
    server = PaletteServer(model, tokenizer, config=config, ledger=TrafficLedger())
    burst = 24
    accepted = []
    with server:
        for _ in range(burst):
            try:
                accepted.append(server.submit(prompt, max_new_tokens=4))
            except AdmissionError:
                result.admission_rejected += 1
        for request in accepted:
            request.result(timeout=300.0)
        result.admission_completed = sum(1 for r in accepted if r.ok)
        # A microscopic deadline expires before the scheduler's next take.
        try:
            late = server.submit(prompt, max_new_tokens=4, deadline_s=1e-6)
        except AdmissionError:  # pragma: no cover - queue is drained here
            late = None
        if late is not None:
            try:
                late.result(timeout=300.0)
            except Exception as exc:
                if type(exc).__name__ == "DeadlineExceeded":
                    result.deadline_rejected += 1
    result.admission_submit_attempts = burst
    result.admission_accounted = (
        result.admission_rejected + len(accepted) == burst
        and result.admission_completed == len(accepted)
    )


def run_serving(
    n_requests: int = 16,
    max_new_tokens: int = 8,
    max_batch_size: int = 4,
    bits: int = 4,
    sentences: int = 400,
    epochs: int = 2,
    tile_cache_bytes_limit: int = 0,
    seed: int = 0,
) -> ServingBenchResult:
    """Run the serving benchmark end to end, fixed seed.

    Trains one model, snapshots its weights, and replays the identical
    request load through the three scenarios (fresh model + snapshot per
    scenario, so clustering state never leaks between them); then probes
    admission control on the compressed model.
    """
    result = ServingBenchResult(
        cpu_count=os.cpu_count() or 1,
        n_requests=n_requests,
        max_new_tokens=max_new_tokens,
        max_batch_size=max_batch_size,
        bits=bits,
    )
    base_model, tokenizer, corpus = _train_small_model(sentences, epochs, seed)
    state = _state_dict(base_model)
    prompts = [
        " ".join(corpus[i % len(corpus)].split()[:3]) for i in range(n_requests)
    ]

    def fresh_model(compressed: bool):
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=seed)
        model.to(rt.GPU)
        _load_state(model, state)
        if compressed:
            ModelCompressor(DKMConfig(bits=bits)).compress(model)
            model.eval()
        return model

    scenarios = [
        ("uncompressed", False, "dense"),
        ("compressed-dense", True, "dense"),
        ("compressed-palette", True, "palette"),
    ]
    offline_model = fresh_model(compressed=True)
    result.offline_reference = [
        generate(offline_model, tokenizer, p, max_new_tokens=max_new_tokens)
        for p in prompts
    ]
    for name, compressed, eval_path in scenarios:
        model = fresh_model(compressed)
        config = ServingConfig(
            max_batch_size=max_batch_size,
            max_queue_depth=max(64, 2 * n_requests),
            max_new_tokens=max_new_tokens,
            eval_path=eval_path,
            tile_cache_bytes_limit=tile_cache_bytes_limit,
        )
        result.rows.append(
            _run_scenario(name, model, tokenizer, prompts, config, max_new_tokens)
        )

    dense_row = result.row("compressed-dense")
    palette_row = result.row("compressed-palette")
    result.tokens_identical = (
        dense_row is not None
        and palette_row is not None
        and palette_row.completions == dense_row.completions
        and palette_row.completions == result.offline_reference
    )

    probe_model = fresh_model(compressed=True)
    _probe_admission(probe_model, tokenizer, result, prompts[0])

    # Per-request ledger accounting: one more tiny server run, counting
    # tagged bytes for each request it completed.
    ledger = TrafficLedger()
    config = ServingConfig(max_batch_size=2, max_new_tokens=4)
    with PaletteServer(probe_model, tokenizer, config=config, ledger=ledger) as srv:
        reqs = [srv.submit(p, max_new_tokens=4) for p in prompts[:4]]
        for r in reqs:
            r.result(timeout=300.0)
    result.request_bytes_tagged = sum(
        1
        for r in reqs
        if ledger.total_bytes(tag=request_tag(r.id)) > 0
    )
    return result
