"""Chaos benchmark: fault injection, recovery, and crash-safe resume.

Runs one multi-sweep ``precluster`` workload through the process backend
under every fault class the injector knows (worker kill, hang, delay,
transient op failure, corrupted delta payload, reaped shm block) plus two
policy scenarios (retry exhaustion -> quarantine, respawn exhaustion ->
backend degradation), and asserts the robustness contract end to end:

- **bit identity** -- every chaotic run's centroids, assignments,
  temperatures, and per-layer step-cache counters equal an undisturbed
  *serial* run's.  Recovery may re-ship, retry, fall back in-parent, or
  demote the backend, but it may never change the math.
- **log reconciliation** -- every planned fault kind appears in the
  engine's :class:`~repro.core.faults.FaultLog`; a scenario whose fault
  never fired tested nothing.
- **shm hygiene** -- after ``close()`` every shared-memory block the
  chaotic run ever exported is unlinked, including blocks dropped
  mid-run by the ``drop_shm`` fault.
- **crash-safe resume** -- a run checkpointed after sweep 1 and resumed
  into a fresh compressor finishes bit-identical (outputs *and*
  counters) to a run that was never interrupted.

Recovery wall-time overhead is reported per scenario (chaotic wall minus
an undisturbed process baseline with the same sweep count) but not
gated: the cost of a respawn is host-dependent and CI runners are noisy.
``benchmarks/bench_faults.py`` wraps :func:`run_faults` into the CLI that
writes ``BENCH_faults.json`` (schema: ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings
from dataclasses import asdict, dataclass, field

from repro.bench.backends import (
    _LinearStack,
    _all_unlinked,
    _layer_stats,
    _results_identical,
)
from repro.core.compressor import ModelCompressor
from repro.core.config import CompressorConfig, DKMConfig
from repro.core.faults import FaultPlan, RobustnessWarning


@dataclass
class FaultScenario:
    """One chaos configuration: a fault plan plus engine policy knobs."""

    name: str
    plan: FaultPlan
    sweeps: int = 2
    config_kwargs: dict = field(default_factory=dict)
    expect_respawn: bool = False
    expect_quarantine: bool = False
    expect_degrade: bool = False

    @property
    def kinds(self) -> list[str]:
        """The distinct fault kinds this scenario plans to inject."""
        return sorted({spec.kind for spec in self.plan.specs})


@dataclass
class FaultRow:
    """One scenario's recovery outcome versus the serial reference."""

    scenario: str
    kinds: list[str]
    sweeps: int
    wall_seconds: float
    baseline_seconds: float
    bit_identical: bool
    stats_identical: bool
    faults_logged: int
    log_reconciled: bool
    respawns: int
    quarantined: int
    degraded_to: str | None
    shm_cleaned: bool
    expectation_met: bool

    def to_json_dict(self) -> dict:
        """The row as a ``BENCH_faults.json`` entry."""
        d = asdict(self)
        d["recovery_overhead_seconds"] = self.wall_seconds - self.baseline_seconds
        return d


@dataclass
class FaultBenchResult:
    """Everything :func:`run_faults` measured, JSON-serializable."""

    cpu_count: int = 0
    workers: int = 0
    n_layers: int = 0
    weights_per_layer: int = 0
    rows: list[FaultRow] = field(default_factory=list)
    resume_bit_identical: bool = False
    resume_stats_identical: bool = False
    resume_sweeps_completed: int = 0
    checkpoint_digest: str = ""
    fault_events: list[dict] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        """The ``BENCH_faults.json`` payload (see ``docs/benchmarks.md``)."""
        return {
            "benchmark": "faults",
            "cpu_count": self.cpu_count,
            "workers": self.workers,
            "n_layers": self.n_layers,
            "weights_per_layer": self.weights_per_layer,
            "rows": [row.to_json_dict() for row in self.rows],
            "resume": {
                "bit_identical": self.resume_bit_identical,
                "stats_identical": self.resume_stats_identical,
                "sweeps_completed_at_checkpoint": self.resume_sweeps_completed,
                "checkpoint_digest": self.checkpoint_digest,
            },
            "fault_events": self.fault_events,
        }


def default_scenarios(
    hang_seconds: float = 600.0, watchdog_s: float = 2.0
) -> list[FaultScenario]:
    """The standard chaos matrix: one scenario per fault class + policies.

    ``hang_seconds`` is deliberately far beyond ``watchdog_s``: a hang
    scenario that finishes at all proves the watchdog fired (the sleep
    alone would exceed any sane suite budget).
    """
    backoff = {"retry_backoff_s": 0.001}
    return [
        FaultScenario(
            name="kill_cold",
            plan=FaultPlan.single("kill", sweep=1),
            expect_respawn=True,
        ),
        FaultScenario(
            name="kill_warm",
            plan=FaultPlan.single("kill", sweep=2),
            sweeps=3,
            expect_respawn=True,
        ),
        FaultScenario(
            name="transient",
            plan=FaultPlan.single("transient", sweep=2),
            config_kwargs=dict(backoff),
        ),
        FaultScenario(
            name="delay",
            plan=FaultPlan.single("delay", sweep=1, seconds=0.05),
            config_kwargs={"task_timeout_s": 60.0},
        ),
        FaultScenario(
            name="corrupt_delta",
            plan=FaultPlan.single("corrupt_delta", sweep=2),
        ),
        FaultScenario(
            name="drop_shm",
            plan=FaultPlan.single("drop_shm", sweep=2),
            sweeps=3,
        ),
        FaultScenario(
            name="hang",
            plan=FaultPlan.single("hang", sweep=1, seconds=hang_seconds),
            config_kwargs={"task_timeout_s": watchdog_s},
            expect_respawn=True,
        ),
        FaultScenario(
            name="quarantine",
            plan=FaultPlan.single(
                "transient", sweep=1, layer="layer0", times=50
            ),
            config_kwargs={
                "max_task_retries": 1,
                "max_layer_retries": 1,
                **backoff,
            },
            expect_quarantine=True,
        ),
        FaultScenario(
            name="degrade",
            plan=FaultPlan.single("kill", sweep=1),
            config_kwargs={"max_pool_respawns": 0},
            expect_degrade=True,
        ),
    ]


def _build(
    backend: str,
    n_layers: int,
    in_features: int,
    out_features: int,
    workers: int,
    seed: int,
    **config_kwargs,
) -> ModelCompressor:
    stack = _LinearStack(n_layers, in_features, out_features, seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=3, iters=3),
        config=CompressorConfig(
            backend=backend, num_workers=workers, **config_kwargs
        ),
    )
    compressor.compress(stack)
    return compressor


def _run_sweeps(compressor: ModelCompressor, n_sweeps: int) -> dict:
    results: dict = {}
    for _ in range(n_sweeps):
        results = compressor.precluster()
    return results


def run_faults(
    n_layers: int = 4,
    in_features: int = 64,
    out_features: int = 48,
    workers: int = 2,
    seed: int = 0,
    scenarios: list[FaultScenario] | None = None,
    hang_seconds: float = 600.0,
    watchdog_s: float = 2.0,
) -> FaultBenchResult:
    """Run the chaos matrix and the kill-then-resume scenario.

    Every scenario's outputs are compared bit-for-bit against a serial
    run of the same sweep count over identically seeded weights; its
    fault log is reconciled against the plan; its shm blocks are probed
    after ``close()``.  The result carries per-scenario recovery rows
    plus the checkpoint/resume verdict.
    """
    if scenarios is None:
        scenarios = default_scenarios(
            hang_seconds=hang_seconds, watchdog_s=watchdog_s
        )
    result = FaultBenchResult(
        cpu_count=os.cpu_count() or 1,
        workers=workers,
        n_layers=n_layers,
        weights_per_layer=in_features * out_features,
    )

    references: dict[int, tuple[dict, dict]] = {}
    baselines: dict[int, float] = {}

    def reference(n_sweeps: int) -> tuple[dict, dict]:
        if n_sweeps not in references:
            compressor = _build(
                "serial", n_layers, in_features, out_features, workers, seed
            )
            results = _run_sweeps(compressor, n_sweeps)
            references[n_sweeps] = (results, _layer_stats(compressor))
        return references[n_sweeps]

    def baseline(n_sweeps: int) -> float:
        if n_sweeps not in baselines:
            compressor = _build(
                "process", n_layers, in_features, out_features, workers, seed
            )
            start = time.perf_counter()
            _run_sweeps(compressor, n_sweeps)
            baselines[n_sweeps] = time.perf_counter() - start
            compressor.close()
        return baselines[n_sweeps]

    for scenario in scenarios:
        ref_results, ref_stats = reference(scenario.sweeps)
        base_wall = baseline(scenario.sweeps)
        compressor = _build(
            "process",
            n_layers,
            in_features,
            out_features,
            workers,
            seed,
            fault_plan=scenario.plan,
            **scenario.config_kwargs,
        )
        shm_names: set[str] = set()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            start = time.perf_counter()
            results = {}
            for _ in range(scenario.sweeps):
                results = compressor.precluster()
                if compressor._engine is not None:
                    shm_names.update(compressor._engine.active_shm_names())
            wall = time.perf_counter() - start
        engine = compressor._engine
        respawns = engine.respawns if engine is not None else 0
        quarantined = len(engine.quarantined) if engine is not None else 0
        log = compressor.fault_log()
        faults_logged = log.count() if log is not None else 0
        log_reconciled = log is not None and all(
            log.count(kind) >= 1 for kind in scenario.kinds
        )
        if log is not None:
            result.fault_events.extend(
                dict(event, scenario=scenario.name)
                for event in log.to_json_dicts()
            )
        degraded_to = (
            compressor.active_backend
            if compressor.active_backend != "process"
            else None
        )
        stats = _layer_stats(compressor)
        compressor.close()
        expectation_met = (
            (not scenario.expect_respawn or respawns >= 1)
            and (not scenario.expect_quarantine or quarantined >= 1)
            and (not scenario.expect_degrade or degraded_to is not None)
        )
        result.rows.append(
            FaultRow(
                scenario=scenario.name,
                kinds=scenario.kinds,
                sweeps=scenario.sweeps,
                wall_seconds=wall,
                baseline_seconds=base_wall,
                bit_identical=_results_identical(ref_results, results),
                stats_identical=ref_stats == stats,
                faults_logged=faults_logged,
                log_reconciled=log_reconciled,
                respawns=respawns,
                quarantined=quarantined,
                degraded_to=degraded_to,
                shm_cleaned=_all_unlinked(sorted(shm_names)),
                expectation_met=expectation_met,
            )
        )

    _run_resume_scenario(
        result, n_layers, in_features, out_features, workers, seed
    )
    return result


def _run_resume_scenario(
    result: FaultBenchResult,
    n_layers: int,
    in_features: int,
    out_features: int,
    workers: int,
    seed: int,
    n_sweeps: int = 3,
) -> None:
    """Kill-then-resume: checkpoint after sweep 1, resume, finish, compare.

    The "crash" is a hard process-backend teardown after
    ``save_checkpoint``; the resumed compressor is built fresh over
    identically seeded weights, exactly as a restarted job would be.
    """
    uninterrupted = _build(
        "process", n_layers, in_features, out_features, workers, seed
    )
    try:
        ref_results = _run_sweeps(uninterrupted, n_sweeps)
        ref_stats = _layer_stats(uninterrupted)
    finally:
        uninterrupted.close()

    tmpdir = tempfile.mkdtemp(prefix="bench_faults_")
    path = os.path.join(tmpdir, "ckpt.json")
    try:
        first = _build(
            "process", n_layers, in_features, out_features, workers, seed
        )
        try:
            first.precluster()
            result.checkpoint_digest = first.save_checkpoint(path)
        finally:
            first.close()  # the simulated crash

        resumed = _build(
            "process", n_layers, in_features, out_features, workers, seed
        )
        try:
            payload = resumed.resume(path)
            result.resume_sweeps_completed = payload["sweeps_completed"]
            res_results = _run_sweeps(resumed, n_sweeps - 1)
            result.resume_bit_identical = _results_identical(
                ref_results, res_results
            )
            result.resume_stats_identical = ref_stats == _layer_stats(resumed)
        finally:
            resumed.close()
    finally:
        for name in ("ckpt.json", "ckpt.json.journal"):
            stale = os.path.join(tmpdir, name)
            if os.path.exists(stale):
                os.unlink(stale)
        os.rmdir(tmpdir)


__all__ = [
    "FaultBenchResult",
    "FaultRow",
    "FaultScenario",
    "default_scenarios",
    "run_faults",
]
