"""Sharded cluster-scheduler benchmark: node scaling + identity gates.

Measures the cluster scheduler's node-count scaling curve and proves the
equivalences sharding must not change:

- **Scaling curve** -- the same heterogeneous model (one embedding-sized
  layer dominating several small projections) is compressed on 1, 2, and
  4 nodes; per-sweep wall time, shipped bytes, full/delta task counts,
  and per-node byte loads are recorded for each point.  Wall times are
  recorded but not gated (CI runners are core-starved and noisy); the
  placement-balance, transport, and identity assertions always gate.
- **Bit-identity** -- every node count must reproduce the serial
  reference exactly (centroids, assignments, temperatures,
  reconstruction errors, and per-layer ``FastPathStats`` counters)
  across a cold sweep, a warm delta-shipped sweep, and a sweep after a
  node worker is hard-killed (crash-recovery re-ships full state).
- **Over-budget headline** -- the model's total weight bytes exceed a
  single node's ``node_memory_budget`` (placing it on one node raises
  :class:`~repro.distributed.scheduler.PlacementError`), yet the same
  budget compresses fine across two nodes, bit-identical to serial, with
  no node's pinned bytes above the budget.

``benchmarks/bench_sharded.py`` wraps :func:`run_sharded` into the CLI
that writes ``BENCH_sharded.json`` (schema: ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

import repro.nn as nn
from repro.bench.affinity import _kill_one_slot_worker
from repro.bench.backends import _all_unlinked, _layer_stats, _results_identical
from repro.core.compressor import ModelCompressor
from repro.core.config import CompressorConfig, DKMConfig
from repro.distributed.scheduler import NodePlacement, PlacementError

N_SWEEPS = 3
"""Per-node-count sweep schedule: cold, warm, crash-recovery."""

NODE_COUNTS = (1, 2, 4)
"""The scaling-curve points."""


@dataclass
class ShardedSweepRow:
    """One sweep's transport + equivalence measurements at one node count."""

    nodes: int
    sweep: int
    scenario: str
    wall_seconds: float
    bytes_shipped: int
    full_tasks: int
    delta_tasks: int
    bit_identical: bool
    stats_identical: bool


@dataclass
class ShardedBenchResult:
    """Everything :func:`run_sharded` measured, JSON-serializable."""

    cpu_count: int = 0
    n_layers: int = 0
    layer_bytes: dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    node_budget: int = 0
    serial_wall_seconds: list[float] = field(default_factory=list)
    rows: list[ShardedSweepRow] = field(default_factory=list)
    loads: dict[int, list[int]] = field(default_factory=dict)
    balanced: dict[int, bool] = field(default_factory=dict)
    single_node_infeasible: bool = False
    over_budget_identical: bool = False
    over_budget_stats_identical: bool = False
    over_budget_max_load: int = 0
    shm_cleaned: bool = True

    def to_json_dict(self) -> dict:
        """The ``BENCH_sharded.json`` payload (see ``docs/benchmarks.md``)."""
        warm = {
            nodes: next(
                (r for r in self.rows if r.nodes == nodes and r.sweep == 2),
                None,
            )
            for nodes in sorted({r.nodes for r in self.rows})
        }
        return {
            "benchmark": "sharded",
            "cpu_count": self.cpu_count,
            "n_layers": self.n_layers,
            "layer_bytes": self.layer_bytes,
            "total_bytes": self.total_bytes,
            "node_budget": self.node_budget,
            "serial_wall_seconds": self.serial_wall_seconds,
            "rows": [asdict(row) for row in self.rows],
            "scaling": {
                str(nodes): {
                    "warm_wall_seconds": row.wall_seconds if row else None,
                    "warm_bytes_shipped": row.bytes_shipped if row else None,
                    "loads": self.loads.get(nodes),
                    "balanced": self.balanced.get(nodes),
                }
                for nodes, row in warm.items()
            },
            "single_node_infeasible": self.single_node_infeasible,
            "over_budget_identical": self.over_budget_identical,
            "over_budget_stats_identical": self.over_budget_stats_identical,
            "over_budget_max_load": self.over_budget_max_load,
            "shm_cleaned": self.shm_cleaned,
        }


class _SkewedStack(nn.Module):
    """One embedding-sized layer plus ``n_small`` small projections."""

    def __init__(self, features: int, n_small: int, seed: int) -> None:
        super().__init__()
        self.embed = nn.Linear(
            features, 8 * features, bias=False, rng=np.random.default_rng(seed)
        )
        for i in range(n_small):
            setattr(
                self,
                f"proj{i}",
                nn.Linear(
                    features,
                    features,
                    bias=False,
                    rng=np.random.default_rng(seed + 1 + i),
                ),
            )


def _build(
    backend: str,
    features: int,
    n_small: int,
    seed: int,
    bits: int,
    iters: int,
    **config_kwargs,
) -> ModelCompressor:
    stack = _SkewedStack(features, n_small, seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=bits, iters=iters),
        config=CompressorConfig(backend=backend, **config_kwargs),
    )
    compressor.compress(stack)
    return compressor


def _weight_bytes(compressor: ModelCompressor) -> dict[str, int]:
    return {
        name: wrapper.inner.weight.numel * wrapper.inner.weight.dtype.itemsize
        for name, wrapper in compressor.wrapped.items()
    }


def run_sharded(
    features: int = 96,
    n_small: int = 5,
    bits: int = 3,
    iters: int = 3,
    seed: int = 0,
) -> ShardedBenchResult:
    """Run the node-scaling + over-budget benchmark, fixed seed."""
    result = ShardedBenchResult(cpu_count=os.cpu_count() or 1)

    serial = _build("serial", features, n_small, seed, bits, iters)
    result.layer_bytes = _weight_bytes(serial)
    result.total_bytes = sum(result.layer_bytes.values())
    result.n_layers = len(result.layer_bytes)
    serial_results, serial_stats = [], []
    for _ in range(N_SWEEPS):
        start = time.perf_counter()
        serial_results.append(serial.precluster(compute_error=True))
        result.serial_wall_seconds.append(time.perf_counter() - start)
        serial_stats.append(_layer_stats(serial))
    serial.close()

    for nodes in NODE_COUNTS:
        compressor = _build(
            "sharded", features, n_small, seed, bits, iters, num_nodes=nodes
        )
        try:
            for sweep in range(N_SWEEPS):
                scenario = "cold" if sweep == 0 else "warm"
                if sweep == 2:
                    _kill_one_slot_worker(compressor)
                    scenario = "crash-recovery"
                start = time.perf_counter()
                res = compressor.precluster(compute_error=True)
                wall = time.perf_counter() - start
                transport = compressor.transport_stats()
                result.rows.append(
                    ShardedSweepRow(
                        nodes=nodes,
                        sweep=sweep + 1,
                        scenario=scenario,
                        wall_seconds=wall,
                        bytes_shipped=transport.last_sweep_bytes,
                        full_tasks=transport.last_sweep_full_tasks,
                        delta_tasks=transport.last_sweep_delta_tasks,
                        bit_identical=_results_identical(
                            serial_results[sweep], res
                        ),
                        stats_identical=serial_stats[sweep]
                        == _layer_stats(compressor),
                    )
                )
            placement = compressor._engine.placement()
            result.loads[nodes] = placement.loads()
            result.balanced[nodes] = placement.is_balanced()
        finally:
            engine = compressor._engine
            shm_names = engine.active_shm_names() if engine is not None else []
            compressor.close()
            if shm_names and not _all_unlinked(shm_names):
                result.shm_cleaned = False

    # Over-budget headline: the model does not fit one node's budget.
    sized = sorted(result.layer_bytes.items())
    budget = max(result.layer_bytes.values()) + min(result.layer_bytes.values())
    result.node_budget = budget
    try:
        NodePlacement.build(sized, 1, budget=budget)
    except PlacementError:
        result.single_node_infeasible = True
    compressor = _build(
        "sharded",
        features,
        n_small,
        seed,
        bits,
        iters,
        num_nodes=2,
        node_memory_budget=budget,
    )
    try:
        for sweep in range(2):
            res = compressor.precluster(compute_error=True)
        result.over_budget_identical = _results_identical(serial_results[1], res)
        result.over_budget_stats_identical = serial_stats[1] == _layer_stats(
            compressor
        )
        result.over_budget_max_load = max(compressor._engine.placement().loads())
    finally:
        engine = compressor._engine
        shm_names = engine.active_shm_names() if engine is not None else []
        compressor.close()
        if shm_names and not _all_unlinked(shm_names):
            result.shm_cleaned = False
    return result
