"""Fixed-width table rendering in the paper's row/column layout."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """A readable monospace table; floats formatted, None shown as '--'."""
    def fmt(cell: Any) -> str:
        if cell is None:
            return "--"
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    label: str, paper_value: float | str, measured_value: float | str
) -> str:
    return f"{label:<40} paper={paper_value!s:>10}  measured={measured_value!s:>10}"
