"""Experiment runners regenerating every table and figure of the paper.

Each module is one experiment; ``benchmarks/`` wraps them in
pytest-benchmark entry points and prints paper-style tables.

- :mod:`repro.bench.table1` -- Table 1 (cross-device copy duplication)
- :mod:`repro.bench.fig2`   -- Fig. 2  (marshaling removes the duplicate)
- :mod:`repro.bench.fig3`   -- Fig. 3  (uniquification + sharding)
- :mod:`repro.bench.table2` -- Table 2 (M/U/S ablation, memory + runtime)
- :mod:`repro.bench.table3` -- Table 3 (accuracy of compressed models)
- :mod:`repro.bench.claims` -- Section 1/2 analytic size claims
- :mod:`repro.bench.fastpath` -- fast-path engine micro-benchmark
  (histogram uniquify, bincount scatter, per-layer step cache)
- :mod:`repro.bench.marshal_strategies` -- marshal search-strategy
  ablation (graph walk vs storage-id oracle vs sampled-stride fingerprint)
- :mod:`repro.bench.faults` -- chaos suite (fault injection, watchdog,
  quarantine, degradation, crash-safe checkpoint/resume)
- :mod:`repro.bench.affinity` -- sticky worker-affinity delta shipping
- :mod:`repro.bench.serving` -- palette serving under concurrent traffic
  (requests/sec, p50/p99 latency, token-identity + admission gates)
"""

from repro.bench.affinity import (
    AffinityBenchResult,
    AffinitySweepRow,
    run_affinity,
)

from repro.bench.claims import Claim, run_claims
from repro.bench.fastpath import (
    FastPathBenchResult,
    REFERENCE_SHAPES,
    ScatterBenchRow,
    StepBenchRow,
    UniquifyBenchRow,
    run_fastpath,
)
from repro.bench.faults import (
    FaultBenchResult,
    FaultRow,
    FaultScenario,
    default_scenarios,
    run_faults,
)
from repro.bench.fig2 import Fig2Result, run_fig2, run_hop_budget_sweep
from repro.bench.marshal_strategies import (
    MarshalBenchResult,
    StrategyRow,
    run_marshal_strategies,
)
from repro.bench.fig3 import Fig3Result, run_dtype_sweep, run_fig3
from repro.bench.table1 import PAPER_TABLE1, Table1Row, run_table1
from repro.bench.table2 import (
    PAPER_TABLE2,
    Table2Result,
    Table2Row,
    run_bits_sweep,
    run_learner_sweep,
    run_table2,
)
from repro.bench.table3 import (
    PAPER_TABLE3,
    SUITE_ORDER,
    Table3Harness,
    Table3Row,
    run_table3,
)
from repro.bench.serving import (
    ServingBenchResult,
    ServingScenarioRow,
    run_serving,
)
from repro.bench.tables import paper_vs_measured, render_table

__all__ = [
    "AffinityBenchResult",
    "AffinitySweepRow",
    "run_affinity",
    "ServingBenchResult",
    "ServingScenarioRow",
    "run_serving",
    "Claim",
    "run_claims",
    "FastPathBenchResult",
    "REFERENCE_SHAPES",
    "ScatterBenchRow",
    "StepBenchRow",
    "UniquifyBenchRow",
    "run_fastpath",
    "FaultBenchResult",
    "FaultRow",
    "FaultScenario",
    "default_scenarios",
    "run_faults",
    "Fig2Result",
    "run_fig2",
    "run_hop_budget_sweep",
    "MarshalBenchResult",
    "StrategyRow",
    "run_marshal_strategies",
    "Fig3Result",
    "run_dtype_sweep",
    "run_fig3",
    "PAPER_TABLE1",
    "Table1Row",
    "run_table1",
    "PAPER_TABLE2",
    "Table2Result",
    "Table2Row",
    "run_bits_sweep",
    "run_learner_sweep",
    "run_table2",
    "PAPER_TABLE3",
    "SUITE_ORDER",
    "Table3Harness",
    "Table3Row",
    "run_table3",
    "paper_vs_measured",
    "render_table",
]
