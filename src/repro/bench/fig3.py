"""Experiment: paper Fig. 3 -- uniquification and sharding of the map.

Quantifies the decomposition on a realistic weight tensor: dense attention
map bytes vs attention table + index list bytes, the lossless
reconstruction, and the per-learner index-list bytes after sharding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.uniquify import (
    attention_table,
    dense_attention_map,
    index_dtype_for,
    reconstruct_attention_map,
    uniquify,
)
from repro.tensor.dtype import DType, bfloat16


@dataclass
class Fig3Result:
    n_weights: int
    n_unique: int
    n_clusters: int
    dense_map_bytes: int
    table_bytes: int
    index_bytes: int
    index_bytes_per_learner: int
    n_learners: int
    reconstruction_exact: bool

    @property
    def uniquify_reduction(self) -> float:
        return self.dense_map_bytes / max(self.table_bytes + self.index_bytes, 1)

    @property
    def total_reduction_per_learner(self) -> float:
        per_learner = self.table_bytes + self.index_bytes_per_learner
        return self.dense_map_bytes / max(per_learner, 1)


def run_fig3(
    n_weights: int = 1 << 16,
    bits: int = 3,
    n_learners: int = 8,
    weight_dtype: DType = bfloat16,
    seed: int = 0,
) -> Fig3Result:
    rng = np.random.default_rng(seed)
    weights = (rng.standard_normal(n_weights) * 0.05).astype(np.float32)
    weights = weight_dtype.project(weights)
    k = 2**bits
    centroids = np.quantile(weights, (np.arange(k) + 0.5) / k).astype(np.float32)
    temperature = float(np.var(weights) / 4 + 1e-8)

    unique = uniquify(weights, weight_dtype)
    table = attention_table(unique.values, centroids, temperature)
    dense = dense_attention_map(weights, centroids, temperature)
    rebuilt = reconstruct_attention_map(table, unique.index_list)

    map_dtype_bytes = 4  # float32 in this engine
    idx_itemsize = index_dtype_for(unique.n_unique).itemsize
    index_bytes = unique.n_weights * idx_itemsize
    return Fig3Result(
        n_weights=unique.n_weights,
        n_unique=unique.n_unique,
        n_clusters=k,
        dense_map_bytes=unique.n_weights * k * map_dtype_bytes,
        table_bytes=unique.n_unique * k * map_dtype_bytes,
        index_bytes=index_bytes,
        index_bytes_per_learner=-(-index_bytes // n_learners),
        n_learners=n_learners,
        reconstruction_exact=bool(np.array_equal(rebuilt, dense)),
    )


def run_dtype_sweep(
    n_weights: int = 1 << 16, seed: int = 0
) -> dict[str, Fig3Result]:
    """Ablation: uniquification keyed on bf16 vs fp16 bit patterns."""
    from repro.tensor.dtype import float16

    return {
        "bfloat16": run_fig3(n_weights, weight_dtype=bfloat16, seed=seed),
        "float16": run_fig3(n_weights, weight_dtype=float16, seed=seed),
    }
