"""Experiment: paper Table 2 -- the M/U/S ablation.

Workload: one multi-head attention layer (the paper uses one from the
LLaMA-7B decoder stack; ours is dimension-scaled) whose four projection
weights are re-clustered by DKM at 3 bits on every forward.  Saved tensors
overflow from "gpu" to "cpu" through the eDKM pipeline; we measure the CPU
peak of learner 0 across forward+backward, wall-clock time, and offload
traffic, under the five paper configurations:

    baseline offload / M / M+U / M+S / M+U+S  (|L| = 8 learners)

Paper reference numbers (memory MB, reduction, runtime s):
    1600, 1.0x, 8.67 | 544, 2.9x, 8.97 | 68, 23.5x, 9.5 |
    97, 16.4x, 15.9  | 12, 129.9x, 14.9
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.compressor import ClusteredLinear
from repro.core.config import DKMConfig, EDKMConfig
from repro.core.offload import SavedTensorPipeline
from repro.distributed import LearnerGroup
from repro.memory import global_ledger, profile_memory
from repro.nn import MultiHeadAttention
from repro.tensor import manual_seed
from repro.tensor.device import CPU, GPU
from repro.tensor.tensor import Tensor

MB = 1024 * 1024


@dataclass
class Table2Row:
    name: str
    marshal: bool
    uniquify: bool
    shard: bool
    cpu_peak_bytes: int
    runtime_s: float
    offload_traffic_bytes: int
    copies_made: int
    copies_avoided: int
    tensors_sharded: int

    @property
    def cpu_peak_mb(self) -> float:
        return self.cpu_peak_bytes / MB


@dataclass
class Table2Result:
    rows: list[Table2Row]

    def reduction(self, row: Table2Row) -> float:
        base = self.rows[0].cpu_peak_bytes
        return base / max(row.cpu_peak_bytes, 1)

    def slowdown(self, row: Table2Row) -> float:
        base = self.rows[0].runtime_s
        return row.runtime_s / max(base, 1e-9)


PAPER_TABLE2 = {
    "baseline": (1600.0, 1.0, 8.67),
    "M": (544.0, 2.9, 8.97),
    "M+U": (68.0, 23.5, 9.5),
    "M+S": (97.0, 16.4, 15.9),
    "M+U+S": (12.0, 129.9, 14.9),
}


def _build_workload(
    dim: int, n_heads: int, seq_len: int, bits: int, iters: int, uniquify: bool
):
    manual_seed(0)
    rng = np.random.default_rng(0)
    attention = MultiHeadAttention(dim=dim, n_heads=n_heads, max_seq_len=seq_len, rng=rng)
    attention.to(GPU)
    dkm = DKMConfig(bits=bits, iters=iters)
    for name in ("q_proj", "k_proj", "v_proj", "o_proj"):
        setattr(
            attention,
            name,
            ClusteredLinear(getattr(attention, name), dkm, uniquify_enabled=uniquify),
        )
    x = Tensor.from_numpy(
        rng.standard_normal((1, seq_len, dim)).astype(np.float32), device=GPU
    )
    return attention, x


def _run_config(
    name: str,
    config: EDKMConfig,
    uniquify: bool,
    dim: int,
    n_heads: int,
    seq_len: int,
    bits: int,
    iters: int,
) -> Table2Row:
    attention, x = _build_workload(dim, n_heads, seq_len, bits, iters, uniquify)
    pipeline = SavedTensorPipeline(config)
    start = time.perf_counter()
    with profile_memory([CPU.tracker], global_ledger()) as prof:
        with pipeline.step():
            out = attention(x)
            (out * out).sum().backward()
    runtime = time.perf_counter() - start
    return Table2Row(
        name=name,
        marshal=config.marshal,
        uniquify=uniquify,
        shard=config.shard,
        cpu_peak_bytes=prof.peak_delta("cpu"),
        runtime_s=runtime,
        offload_traffic_bytes=prof.traffic("gpu", "cpu"),
        copies_made=pipeline.stats.copies_made,
        copies_avoided=pipeline.stats.copies_avoided,
        tensors_sharded=pipeline.stats.tensors_sharded,
    )


def run_table2(
    dim: int = 256,
    n_heads: int = 8,
    seq_len: int = 16,
    bits: int = 3,
    iters: int = 3,
    n_learners: int = 8,
) -> Table2Result:
    """The five-row ablation at a CPU-friendly scale."""
    group = LearnerGroup(n_learners)
    configs = [
        ("baseline", EDKMConfig.baseline_offload(), False),
        ("M", EDKMConfig(marshal=True, uniquify=False, shard=False, group=None), False),
        ("M+U", EDKMConfig(marshal=True, uniquify=True, shard=False, group=None), True),
        ("M+S", EDKMConfig(marshal=True, uniquify=False, shard=True, group=group), False),
        ("M+U+S", EDKMConfig(marshal=True, uniquify=True, shard=True, group=group), True),
    ]
    rows = [
        _run_config(name, config, uniq, dim, n_heads, seq_len, bits, iters)
        for name, config, uniq in configs
    ]
    return Table2Result(rows=rows)


def run_learner_sweep(
    n_learners_options: tuple[int, ...] = (1, 2, 4, 8),
    dim: int = 256,
    seq_len: int = 16,
) -> dict[int, Table2Result]:
    """Ablation: sharding benefit vs learner count (design choice sweep)."""
    results = {}
    for n in n_learners_options:
        group = LearnerGroup(n)
        rows = [
            _run_config(
                "baseline", EDKMConfig.baseline_offload(), False, dim, 8, seq_len, 3, 3
            ),
            _run_config(
                f"M+U+S|L={n}",
                EDKMConfig(marshal=True, uniquify=True, shard=True, group=group),
                True,
                dim,
                8,
                seq_len,
                3,
                3,
            ),
        ]
        results[n] = Table2Result(rows=rows)
    return results


def run_bits_sweep(
    bits_options: tuple[int, ...] = (2, 3, 4), dim: int = 256, seq_len: int = 16
) -> dict[int, Table2Result]:
    """Ablation: map size scales with 2**bits; U's win is bits-independent."""
    return {
        b: run_table2(dim=dim, seq_len=seq_len, bits=b) for b in bits_options
    }
