"""Chaos-serving benchmark: the fault matrix under concurrent load.

Trains one small model, compresses it, and replays the same request
load through a matrix of injected serving faults (one scenario per
fault kind x client count), with clients that retry on the typed
:class:`~repro.serving.queue.StepFailed` crash boundary.  Four gates
make "survived" a checkable claim rather than a vibe:

- **token identity** -- every scenario's completions, including the
  runs where the watchdog revoked a hung loop or the circuit breaker
  tripped a layer onto the dense path, must be *identical* to offline
  single-prompt :func:`repro.llm.generate.generate` on the same
  compressed weights;
- **fault reconciliation** -- every armed fault spec must have fired
  (its :class:`~repro.core.faults.FaultEvent` appears in the
  injector's log), so a green run cannot mean "the chaos never
  happened";
- **no stranded futures** -- every client thread joins; a submitted
  request always resolves (text, or a typed error the client retried);
- **bounded shutdown** -- ``stop()`` returns within a fixed deadline
  in every scenario, including the hung-step one.

Two extra scenarios exercise the breaker round-trip (trip on a kernel
fault, re-promote after probation, end with every breaker closed) and
draining shutdown (``stop(drain=True)`` finishes all in-flight
requests bit-identically).

``benchmarks/bench_serving_faults.py`` wraps :func:`run_serving_faults`
into the CLI that writes ``BENCH_serving_faults.json`` (schema:
``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.bench.serving import _load_state, _state_dict, _train_small_model
from repro.core.compressor import ModelCompressor
from repro.core.config import DKMConfig
from repro.llm import MICRO, build_model, generate
from repro.memory.traffic import TrafficLedger
from repro.serving import (
    PaletteServer,
    ServingConfig,
    ServingFaultPlan,
    ServingFaultSpec,
    StepFailed,
)
from repro.serving.breaker import CLOSED

import repro.tensor as rt

#: Every serving fault kind the matrix exercises, in display order.
CHAOS_KINDS = (
    "transient_step",
    "delay_step",
    "kernel_error",
    "corrupt_tile",
    "hang_step",
)

#: ``stop()`` must return within this many seconds in every scenario.
STOP_DEADLINE_S = 20.0

#: Ceiling on client-side retries per request (hit only on repeated
#: :class:`StepFailed`; anything past this strands the gate on purpose).
CLIENT_RETRIES = 8


@dataclass
class ChaosScenarioRow:
    """One fault scenario's survival evidence."""

    scenario: str
    kind: str | None
    clients: int
    submitted: int
    completed: int
    client_retries: int
    tokens_identical: bool
    stranded: bool
    stop_s: float
    wall_s: float
    fault_events: dict = field(default_factory=dict)
    unfired_specs: int = 0
    step_failures: int = 0
    step_retries: int = 0
    watchdog_kills: int = 0
    loop_respawns: int = 0
    breaker_trips: int = 0
    breaker_repromotions: int = 0
    degrade_bytes: int = 0
    completions: list[str] = field(default_factory=list)


@dataclass
class ChaosBenchResult:
    """Everything :func:`run_serving_faults` measured, JSON-serializable."""

    cpu_count: int = 0
    n_prompts: int = 0
    max_new_tokens: int = 0
    bits: int = 0
    client_matrix: list[int] = field(default_factory=list)
    rows: list[ChaosScenarioRow] = field(default_factory=list)
    offline_reference: list[str] = field(default_factory=list)
    breaker_final_states_closed: bool = False
    drain_completed: int = 0
    drain_ok: bool = False

    def to_json_dict(self) -> dict:
        """The ``BENCH_serving_faults.json`` payload (``docs/benchmarks.md``)."""
        breaker_rows = [r for r in self.rows if r.scenario.startswith("breaker")]
        return {
            "benchmark": "serving_faults",
            "cpu_count": self.cpu_count,
            "n_prompts": self.n_prompts,
            "max_new_tokens": self.max_new_tokens,
            "bits": self.bits,
            "client_matrix": list(self.client_matrix),
            "rows": [asdict(row) for row in self.rows],
            "tokens_identical": all(r.tokens_identical for r in self.rows),
            "faults_reconciled": all(r.unfired_specs == 0 for r in self.rows),
            "no_stranded_futures": not any(r.stranded for r in self.rows),
            "shutdown_bounded": all(
                r.stop_s <= STOP_DEADLINE_S for r in self.rows
            ),
            "breaker": {
                "trips": sum(r.breaker_trips for r in self.rows),
                "repromotions": sum(r.breaker_repromotions for r in breaker_rows),
                "final_states_closed": self.breaker_final_states_closed,
            },
            "drain": {
                "completed": self.drain_completed,
                "ok": self.drain_ok,
            },
        }


def _plan_for(kind: str, seed: int) -> ServingFaultPlan:
    """A deterministic single-kind plan tuned so the run survives it.

    ``corrupt_tile`` waits for step 2 so the palette tiles it poisons
    are resident; ``hang_step`` sleeps far past the watchdog so only
    the revocation path can unwedge it.
    """
    if kind == "transient_step":
        spec = ServingFaultSpec(kind=kind, sweep=1, times=2)
    elif kind == "delay_step":
        spec = ServingFaultSpec(kind=kind, sweep=1, times=2, seconds=0.05)
    elif kind == "kernel_error":
        spec = ServingFaultSpec(kind=kind, sweep=1, times=2)
    elif kind == "corrupt_tile":
        spec = ServingFaultSpec(kind=kind, sweep=2, times=1)
    elif kind == "hang_step":
        spec = ServingFaultSpec(kind=kind, sweep=1, times=1, seconds=30.0)
    else:  # pragma: no cover - matrix is fixed above
        raise ValueError(f"unknown chaos kind {kind!r}")
    return ServingFaultPlan(specs=(spec,), seed=seed)


def _config_for(
    kind: str, plan: ServingFaultPlan, max_new_tokens: int
) -> ServingConfig:
    """Serving knobs for one matrix cell.

    ``kernel_error`` runs with ``breaker_threshold=1`` so each fired
    fault deterministically trips its layer onto the dense path (the
    injector's layer pick rotates, so a threshold of 2 could spread
    two fires across two layers and trip neither); ``hang_step`` arms
    the watchdog.
    """
    kwargs: dict = dict(
        max_batch_size=4,
        max_queue_depth=64,
        max_new_tokens=max_new_tokens,
        eval_path="palette",
        poll_interval_s=0.002,
        fault_plan=plan,
        max_step_retries=2,
        step_retry_backoff_s=0.005,
    )
    if kind == "kernel_error":
        kwargs["breaker_threshold"] = 1
    if kind == "hang_step":
        kwargs["step_timeout_s"] = 0.25
        kwargs["max_loop_respawns"] = 4
    return ServingConfig(**kwargs)


def _drive_chaos(
    server: PaletteServer,
    prompts: list[str],
    max_new_tokens: int,
    clients: int,
    timeout: float = 120.0,
) -> tuple[list[str | None], int, bool]:
    """Drive the load with clients that retry on :class:`StepFailed`.

    Returns ``(texts_in_prompt_order, total_client_retries, stranded)``
    where ``stranded`` is True if any client thread failed to join --
    the exact symptom of a future that never resolved.
    """
    results: list[str | None] = [None] * len(prompts)
    retries = [0] * len(prompts)
    errors: list[BaseException] = []

    def client(indices: list[int]) -> None:
        for i in indices:
            for _attempt in range(CLIENT_RETRIES + 1):
                try:
                    results[i] = server.generate(
                        prompts[i], max_new_tokens=max_new_tokens, timeout=timeout
                    )
                    break
                except StepFailed:
                    retries[i] += 1
                except BaseException as exc:  # surfaced to the caller below
                    errors.append(exc)
                    return

    threads = [
        threading.Thread(
            target=client,
            args=(list(range(c, len(prompts), clients)),),
            name=f"chaos-client-{c}",
        )
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout + 30.0
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    stranded = any(t.is_alive() for t in threads)
    if errors and not stranded:
        raise errors[0]
    return results, sum(retries), stranded


def _reconcile_faults(
    server: PaletteServer, plan: ServingFaultPlan | None
) -> tuple[dict, int]:
    """Count logged fault events per kind; report specs that never fired."""
    events: dict[str, int] = {}
    if server.fault_injector is not None:
        for event in server.fault_injector.log.events:
            events[event.kind] = events.get(event.kind, 0) + 1
    unfired = 0
    if plan is not None:
        for spec in plan.specs:
            if events.get(spec.kind, 0) < 1:
                unfired += 1
    return events, unfired


def _run_chaos_scenario(
    name: str,
    kind: str | None,
    clients: int,
    model,
    tokenizer,
    prompts: list[str],
    reference: list[str],
    config: ServingConfig,
    max_new_tokens: int,
) -> ChaosScenarioRow:
    """One matrix cell: serve the load under the plan, then reconcile."""
    server = PaletteServer(
        model, tokenizer, config=config, ledger=TrafficLedger()
    )
    server.start()
    started = time.monotonic()
    try:
        texts, client_retries, stranded = _drive_chaos(
            server, prompts, max_new_tokens, clients
        )
    finally:
        stop_started = time.monotonic()
        server.stop()
        stop_s = time.monotonic() - stop_started
    wall_s = time.monotonic() - started
    report = server.stats()
    events, unfired = _reconcile_faults(server, config.fault_plan)
    completions = [t for t in texts if t is not None]
    return ChaosScenarioRow(
        scenario=name,
        kind=kind,
        clients=clients,
        submitted=len(prompts),
        completed=len(completions),
        client_retries=client_retries,
        tokens_identical=(texts == reference),
        stranded=stranded,
        stop_s=stop_s,
        wall_s=wall_s,
        fault_events=events,
        unfired_specs=unfired,
        step_failures=report.step_failures,
        step_retries=report.step_retries,
        watchdog_kills=report.watchdog_kills,
        loop_respawns=report.loop_respawns,
        breaker_trips=report.breaker_trips,
        breaker_repromotions=report.breaker_repromotions,
        degrade_bytes=report.degrade_bytes,
        completions=completions,
    )


def run_serving_faults(
    n_prompts: int = 4,
    max_new_tokens: int = 6,
    bits: int = 4,
    sentences: int = 400,
    epochs: int = 2,
    client_matrix: tuple[int, ...] = (1, 4),
    seed: int = 0,
) -> ChaosBenchResult:
    """Run the chaos-serving matrix end to end, fixed seed.

    Trains one model, snapshots its weights, computes the offline
    reference on a fresh compressed copy, then replays the identical
    prompt set through every (fault kind x client count) cell plus the
    breaker-repromotion and draining-shutdown scenarios.  Every
    scenario gets a fresh model + snapshot, so breaker state and
    corrupted tiles never leak between cells.
    """
    result = ChaosBenchResult(
        cpu_count=os.cpu_count() or 1,
        n_prompts=n_prompts,
        max_new_tokens=max_new_tokens,
        bits=bits,
        client_matrix=list(client_matrix),
    )
    base_model, tokenizer, corpus = _train_small_model(sentences, epochs, seed)
    state = _state_dict(base_model)
    prompts = [
        " ".join(corpus[i % len(corpus)].split()[:3]) for i in range(n_prompts)
    ]

    def fresh_model():
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=seed)
        model.to(rt.GPU)
        _load_state(model, state)
        ModelCompressor(DKMConfig(bits=bits)).compress(model)
        model.eval()
        return model

    result.offline_reference = [
        generate(fresh_model(), tokenizer, p, max_new_tokens=max_new_tokens)
        for p in prompts
    ]
    reference = result.offline_reference

    # --- the fault matrix -------------------------------------------------
    for kind in CHAOS_KINDS:
        for clients in client_matrix:
            plan = _plan_for(kind, seed)
            config = _config_for(kind, plan, max_new_tokens)
            result.rows.append(
                _run_chaos_scenario(
                    f"{kind}-c{clients}",
                    kind,
                    clients,
                    fresh_model(),
                    tokenizer,
                    prompts,
                    reference,
                    config,
                    max_new_tokens,
                )
            )

    # --- breaker round-trip: trip, probation, re-promotion ---------------
    plan = ServingFaultPlan(
        specs=(ServingFaultSpec(kind="kernel_error", sweep=1, times=1),),
        seed=seed,
    )
    config = ServingConfig(
        max_batch_size=4,
        max_new_tokens=max_new_tokens,
        eval_path="palette",
        poll_interval_s=0.002,
        fault_plan=plan,
        breaker_threshold=1,
        breaker_probation_steps=2,
    )
    model = fresh_model()
    server = PaletteServer(model, tokenizer, config=config, ledger=TrafficLedger())
    server.start()
    try:
        texts, client_retries, stranded = _drive_chaos(
            server, prompts, max_new_tokens, clients=1
        )
        health = server.health()
    finally:
        stop_started = time.monotonic()
        server.stop()
        stop_s = time.monotonic() - stop_started
    report = server.stats()
    events, unfired = _reconcile_faults(server, plan)
    result.breaker_final_states_closed = bool(health.breakers) and all(
        snap.state == CLOSED for snap in health.breakers.values()
    )
    result.rows.append(
        ChaosScenarioRow(
            scenario="breaker-repromotion",
            kind="kernel_error",
            clients=1,
            submitted=len(prompts),
            completed=sum(1 for t in texts if t is not None),
            client_retries=client_retries,
            tokens_identical=(texts == reference),
            stranded=stranded,
            stop_s=stop_s,
            wall_s=report.wall_s,
            fault_events=events,
            unfired_specs=unfired,
            step_failures=report.step_failures,
            step_retries=report.step_retries,
            watchdog_kills=report.watchdog_kills,
            loop_respawns=report.loop_respawns,
            breaker_trips=report.breaker_trips,
            breaker_repromotions=report.breaker_repromotions,
            degrade_bytes=report.degrade_bytes,
            completions=[t for t in texts if t is not None],
        )
    )

    # --- draining shutdown: stop(drain=True) finishes in-flight ----------
    config = ServingConfig(
        max_batch_size=2,
        max_new_tokens=max_new_tokens,
        eval_path="palette",
        poll_interval_s=0.002,
        drain_timeout_s=STOP_DEADLINE_S,
    )
    server = PaletteServer(
        fresh_model(), tokenizer, config=config, ledger=TrafficLedger()
    )
    server.start()
    requests = [
        server.submit(p, max_new_tokens=max_new_tokens) for p in prompts
    ]
    stop_started = time.monotonic()
    server.stop(drain=True)
    stop_s = time.monotonic() - stop_started
    drained: list[str | None] = []
    for request in requests:
        try:
            drained.append(request.result(timeout=1.0))
        except Exception:
            drained.append(None)
    report = server.stats()
    result.drain_completed = sum(1 for t in drained if t is not None)
    result.drain_ok = drained == reference and stop_s <= STOP_DEADLINE_S
    result.rows.append(
        ChaosScenarioRow(
            scenario="drain-shutdown",
            kind=None,
            clients=1,
            submitted=len(prompts),
            completed=result.drain_completed,
            client_retries=0,
            tokens_identical=(drained == reference),
            stranded=False,
            stop_s=stop_s,
            wall_s=report.wall_s,
            completions=[t for t in drained if t is not None],
        )
    )
    return result
