"""Sticky-affinity benchmark: delta shipping vs the chunked task pool.

Measures the two quantities sticky worker affinity exists to change, and
proves the equivalences it must not change:

- **bytes pickled per sweep** -- the parent-side task payload recorded by
  the engine's :class:`~repro.core.procpool.TransportStats`.  A warm
  sticky sweep ships one ``O(k)`` :class:`~repro.core.procpool.
  LayerDelta` per layer (no shm handle, no config); the chunked mode
  re-ships full :class:`~repro.core.procpool.LayerTask` objects every
  sweep.  The headline gate: sticky's warm bytes per layer must be
  *strictly lower* than chunked's.
- **warm-sweep wall time** -- the same ``precluster`` sweep once every
  layer is resident: sticky workers reuse their resident uniquify
  products (a real cache hit), chunked workers recompute behind a
  phantom hit.
- **cache-hit reconciliation** -- after every sweep, every mode's
  per-layer :class:`~repro.core.fastpath.FastPathStats` counters and
  results (centroids, assignments, temperatures, reconstruction errors)
  must equal the serial reference, including across the two sticky-only
  scenarios: a worker hard-killed between sweeps (``crash-recovery``)
  and a pool resize (``rebalance``, the one event that re-pins layers).

After every process-backend run the engine's shared-memory blocks are
closed and probed; ``shm_cleaned`` is true iff every probe raises
``FileNotFoundError``.  ``benchmarks/bench_affinity.py`` wraps
:func:`run_affinity` into the CLI that writes ``BENCH_affinity.json``
(schema: ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

from repro.bench.backends import (
    _all_unlinked,
    _build_compressor,
    _layer_stats,
    _results_identical,
)
from repro.core.compressor import ModelCompressor

N_SWEEPS = 4
"""Per-mode sweep count: cold, warm, crash-recovery, rebalance."""


@dataclass
class AffinitySweepRow:
    """One sweep's transport + equivalence measurements for one mode."""

    affinity: str
    sweep: int
    scenario: str
    wall_seconds: float
    bytes_shipped: int
    bytes_per_layer: float
    full_tasks: int
    delta_tasks: int
    bit_identical: bool
    stats_identical: bool


@dataclass
class AffinityBenchResult:
    """Everything :func:`run_affinity` measured, JSON-serializable."""

    cpu_count: int = 0
    workers: int = 0
    n_layers: int = 0
    weights_per_layer: int = 0
    serial_wall_seconds: list[float] = field(default_factory=list)
    rows: list[AffinitySweepRow] = field(default_factory=list)
    shm_cleaned: bool = True

    def warm_row(self, affinity: str) -> AffinitySweepRow | None:
        """The plain warm sweep (sweep 2) of ``affinity``, if recorded."""
        for row in self.rows:
            if row.affinity == affinity and row.sweep == 2:
                return row
        return None

    def to_json_dict(self) -> dict:
        """The ``BENCH_affinity.json`` payload (see ``docs/benchmarks.md``)."""
        warm = {
            mode: self.warm_row(mode) for mode in ("sticky", "chunked")
        }
        sticky, chunked = warm["sticky"], warm["chunked"]
        return {
            "benchmark": "affinity",
            "cpu_count": self.cpu_count,
            "workers": self.workers,
            "n_layers": self.n_layers,
            "weights_per_layer": self.weights_per_layer,
            "serial_wall_seconds": self.serial_wall_seconds,
            "rows": [asdict(row) for row in self.rows],
            "warm_bytes_per_layer": {
                mode: (row.bytes_per_layer if row else None)
                for mode, row in warm.items()
            },
            "warm_wall_seconds": {
                mode: (row.wall_seconds if row else None)
                for mode, row in warm.items()
            },
            "sticky_ships_fewer_warm_bytes": (
                sticky is not None
                and chunked is not None
                and sticky.bytes_per_layer < chunked.bytes_per_layer
            ),
            "shm_cleaned": self.shm_cleaned,
        }


def _kill_one_slot_worker(compressor: ModelCompressor) -> None:
    """Simulate a worker crash: hard-kill the first live slot process."""
    engine = compressor._engine
    assert engine is not None
    for pool in engine._state["slots"]:
        processes = list((pool._processes or {}).values())
        if processes:
            processes[0].kill()
            processes[0].join()
            return
    raise AssertionError("no live sticky slot worker to kill")


def run_affinity(
    n_layers: int = 8,
    in_features: int = 256,
    out_features: int = 256,
    workers: int = 2,
    bits: int = 3,
    iters: int = 3,
    seed: int = 0,
) -> AffinityBenchResult:
    """Run the sticky-vs-chunked transport benchmark, fixed seed.

    Serial runs :data:`N_SWEEPS` reference sweeps first; each process
    mode then replays them -- sweep 1 cold, sweep 2 warm, and (sticky
    only) sweep 3 after a simulated worker crash, sweep 4 after a pool
    resize to ``workers + 1`` -- comparing results and step-cache
    counters against the matching serial sweep.
    """
    result = AffinityBenchResult(
        cpu_count=os.cpu_count() or 1,
        workers=workers,
        n_layers=n_layers,
        weights_per_layer=in_features * out_features,
    )

    serial = _build_compressor(
        "serial", n_layers, in_features, out_features, workers, bits, iters, seed
    )
    serial_results, serial_stats = [], []
    for _ in range(N_SWEEPS):
        start = time.perf_counter()
        serial_results.append(serial.precluster(compute_error=True))
        result.serial_wall_seconds.append(time.perf_counter() - start)
        serial_stats.append(_layer_stats(serial))

    for affinity in ("chunked", "sticky"):
        compressor = _build_compressor(
            "process", n_layers, in_features, out_features, workers, bits, iters, seed
        )
        compressor.config.affinity = affinity
        try:
            for sweep in range(N_SWEEPS):
                scenario = "cold" if sweep == 0 else "warm"
                if affinity == "sticky" and sweep == 2:
                    _kill_one_slot_worker(compressor)
                    scenario = "crash-recovery"
                if affinity == "sticky" and sweep == 3:
                    compressor.config.num_workers = workers + 1
                    scenario = "rebalance"
                start = time.perf_counter()
                res = compressor.precluster(compute_error=True)
                wall = time.perf_counter() - start
                transport = compressor.transport_stats()
                result.rows.append(
                    AffinitySweepRow(
                        affinity=affinity,
                        sweep=sweep + 1,
                        scenario=scenario,
                        wall_seconds=wall,
                        bytes_shipped=transport.last_sweep_bytes,
                        bytes_per_layer=transport.last_sweep_bytes / n_layers,
                        full_tasks=transport.last_sweep_full_tasks,
                        delta_tasks=transport.last_sweep_delta_tasks,
                        bit_identical=_results_identical(
                            serial_results[sweep], res
                        ),
                        stats_identical=serial_stats[sweep]
                        == _layer_stats(compressor),
                    )
                )
        finally:
            engine = compressor._engine
            shm_names = engine.active_shm_names() if engine is not None else []
            compressor.close()
            if shm_names and not _all_unlinked(shm_names):
                result.shm_cleaned = False
    return result
