"""Experiment: paper Table 3 -- accuracy of compressed models.

End-to-end pipeline at substrate scale:

1. pre-train the MICRO LLaMA-architecture model on the synthetic fact corpus
   and instruction split (the "pretrained LLaMA 7B" stand-in);
2. apply each compression scheme -- RTN / GPTQ / AWQ / SmoothQuant post-
   training, LLM-QAT and eDKM as fine-tunes;
3. score the seven synthetic suites with lm-eval-style rules;
4. report accuracy alongside the analytic model size at true LLaMA-7B
   dimensions (the paper's "Model Size (GB)" column is spec arithmetic).

Scale calibration (documented in DESIGN.md): at dim=32, per-channel grids
are disproportionately fine, so uniform baselines use per-tensor grids
(RTN, LLM-QAT) and per-row grids (GPTQ, AWQ) to match the relative
harshness of 3/4-bit quantization at 7B scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    apply_qat,
    freeze_qat,
    quantize_model_awq,
    quantize_model_gptq,
    quantize_model_rtn,
    quantize_model_smoothquant,
)
from repro.core import DKMConfig, ModelCompressor
from repro.data import (
    FactWorld,
    alpaca_batches,
    corpus_batches,
    generate_alpaca,
    generate_corpus,
    standard_suites,
)
from repro.data.corpus import corpus_vocabulary
from repro.evalsuite import (
    EvalReport,
    evaluate_suites,
    model_size_gb,
    paper_schemes,
)
from repro.llm import (
    LLAMA_7B,
    MICRO,
    FinetuneConfig,
    WordTokenizer,
    build_model,
    train_causal_lm,
)
from repro.tensor.device import GPU

SUITE_ORDER = [
    "piqa_syn",
    "hellaswag_syn",
    "winogrande_syn",
    "arc_easy_syn",
    "arc_challenge_syn",
    "triviaqa_syn",
    "mmlu_syn",
]

# Paper Table 3 (percent), for paper-vs-measured reporting.
PAPER_TABLE3 = {
    "fp16": dict(bits=16, size_gb=12.6, piqa=79.3, hellaswag=76.1, winogrande=70.0,
                 arc_e=73.0, arc_c=48.0, triviaqa=57.0, mmlu=35.2),
    "rtn4": dict(bits=4, size_gb=3.5, piqa=77.3, hellaswag=72.7, winogrande=66.9,
                 arc_e=68.8, arc_c=46.4, triviaqa=44.9, mmlu=28.9),
    "gptq4": dict(bits=4, size_gb=3.7, piqa=77.2, hellaswag=54.0, winogrande=65.7,
                  arc_e=61.6, arc_c=None, triviaqa=None, mmlu=None),
    "awq4": dict(bits=4, size_gb=3.7, piqa=78.1, hellaswag=55.8, winogrande=65.8,
                 arc_e=66.8, arc_c=None, triviaqa=None, mmlu=None),
    "llmqat4": dict(bits=4, size_gb=3.5, piqa=78.3, hellaswag=74.0, winogrande=69.0,
                    arc_e=70.0, arc_c=45.0, triviaqa=50.8, mmlu=30.8),
    "gptq3": dict(bits=3, size_gb=3.0, piqa=70.9, hellaswag=46.8, winogrande=60.9,
                  arc_e=66.1, arc_c=None, triviaqa=None, mmlu=None),
    "awq3": dict(bits=3, size_gb=3.0, piqa=76.7, hellaswag=53.6, winogrande=66.1,
                 arc_e=65.7, arc_c=None, triviaqa=None, mmlu=None),
    "edkm3": dict(bits=3, size_gb=2.5, piqa=77.7, hellaswag=54.6, winogrande=66.1,
                  arc_e=72.3, arc_c=40.3, triviaqa=35.2, mmlu=30.3),
}


@dataclass
class Table3Row:
    method: str
    bits: int
    size_gb: float  # analytic, at LLaMA-7B dimensions
    report: EvalReport

    def accuracies(self) -> list[float]:
        return self.report.as_row(SUITE_ORDER)

    @property
    def mean_accuracy(self) -> float:
        return self.report.mean_accuracy


@dataclass
class Table3Harness:
    """Shared world/model state so methods start from the same checkpoint."""

    seed: int = 0
    n_corpus: int = 2400
    n_alpaca: int = 800
    n_items: int = 30
    corpus_epochs: int = 2
    alpaca_epochs: int = 1
    pretrain_lr: float = 3e-3
    compress_lr: float = 1e-3
    world: FactWorld = field(init=False)
    tokenizer: WordTokenizer = field(init=False)

    def __post_init__(self) -> None:
        self.world = FactWorld(seed=self.seed)
        self.tokenizer = WordTokenizer(corpus_vocabulary(self.world))
        self.corpus = generate_corpus(self.world, self.n_corpus, seed=self.seed + 1)
        self.alpaca = generate_alpaca(self.world, self.n_alpaca, seed=self.seed + 2)
        self.suites = standard_suites(self.world, n_items=self.n_items)
        self._snapshot: dict | None = None
        self._model = None

    # -- shared checkpoint ------------------------------------------------

    def pretrained(self):
        """The fine-tuned fp16 stand-in model (built once, then snapshotted)."""
        if self._model is None:
            model = build_model(MICRO, vocab_size=self.tokenizer.vocab_size, seed=self.seed)
            model.to(GPU)
            cfg = FinetuneConfig(lr=self.pretrain_lr)
            train_causal_lm(
                model,
                corpus_batches(
                    self.corpus, self.tokenizer, 16, GPU,
                    epochs=self.corpus_epochs, seed=self.seed + 3,
                ),
                cfg,
            )
            train_causal_lm(
                model,
                alpaca_batches(
                    self.alpaca, self.tokenizer, 16, GPU,
                    epochs=self.alpaca_epochs, seed=self.seed + 4,
                ),
                cfg,
            )
            self._model = model
            self._snapshot = {
                k: v.numpy().copy() for k, v in model.state_dict().items()
            }
        return self._model

    def restore(self):
        """A fresh model loaded from the pre-trained snapshot.

        Rebuilds the module tree every time (rather than copying values in
        place) because several methods -- LLM-QAT, eDKM -- structurally wrap
        the model's Linears and would otherwise leak into later rows.
        """
        self.pretrained()  # ensure the snapshot exists
        model = build_model(MICRO, vocab_size=self.tokenizer.vocab_size, seed=self.seed)
        model.to(GPU)
        for name, param in model.state_dict().items():
            param.copy_(self._snapshot[name])
        self._model = model
        return model

    def _evaluate(self) -> EvalReport:
        return evaluate_suites(self._model, self.tokenizer, self.suites, GPU)

    def calibration_batches(self, n: int = 16):
        return list(
            corpus_batches(
                self.corpus[: 16 * n], self.tokenizer, 16, GPU, seed=self.seed + 9
            )
        )

    # -- methods (Table 3 rows) --------------------------------------------

    def run_fp16(self) -> Table3Row:
        self.restore()
        return self._row("LLaMA (fp16)", "fp16", 16, self._evaluate())

    def run_rtn(self, bits: int) -> Table3Row:
        self.restore()
        quantize_model_rtn(self._model, bits=bits, per_channel=False)
        return self._row("RTN", f"rtn{bits}", bits, self._evaluate())

    def run_gptq(self, bits: int, group_size: int | None = None) -> Table3Row:
        self.restore()
        calib = self.calibration_batches()
        quantize_model_gptq(self._model, calib, bits=bits, group_size=group_size)
        return self._row("GPTQ", f"gptq{bits}_g128", bits, self._evaluate())

    def run_awq(self, bits: int, group_size: int | None = None) -> Table3Row:
        self.restore()
        calib = self.calibration_batches()
        quantize_model_awq(self._model, calib, bits=bits, group_size=group_size)
        return self._row("AWQ", f"awq{bits}_g128", bits, self._evaluate())

    def run_smoothquant(self, bits: int = 8) -> Table3Row:
        self.restore()
        calib = self.calibration_batches()
        quantize_model_smoothquant(self._model, calib, bits=bits)
        return self._row("SmoothQuant", "rtn4", bits, self._evaluate())

    def run_llm_qat(self, bits: int) -> Table3Row:
        self.restore()
        wrapped = apply_qat(self._model, bits=bits)
        train_causal_lm(
            self._model,
            alpaca_batches(
                self.alpaca, self.tokenizer, 16, GPU,
                epochs=self.alpaca_epochs, seed=self.seed + 5,
            ),
            FinetuneConfig(lr=self.compress_lr),
        )
        freeze_qat(wrapped)
        # Unwrap for evaluation: QATLinear.forward quantizes already-frozen
        # weights, which is idempotent, so evaluating through it is fine.
        return self._row("LLM-QAT", f"llmqat{bits}", bits, self._evaluate())

    def run_edkm(self, bits: int, epochs: int | None = None) -> Table3Row:
        self.restore()
        compressor = ModelCompressor(DKMConfig(bits=bits, iters=4))
        compressor.compress(self._model)
        train_causal_lm(
            self._model,
            alpaca_batches(
                self.alpaca, self.tokenizer, 16, GPU,
                epochs=epochs or 2 * self.alpaca_epochs, seed=self.seed + 6,
            ),
            FinetuneConfig(lr=self.compress_lr),
        )
        return self._row("eDKM", f"edkm{bits}", bits, self._evaluate())

    def _row(self, method: str, scheme_key: str, bits: int, report: EvalReport) -> Table3Row:
        scheme = paper_schemes().get(scheme_key)
        size = model_size_gb(LLAMA_7B, scheme) if scheme else float("nan")
        return Table3Row(method=method, bits=bits, size_gb=size, report=report)


def run_table3(harness: Table3Harness | None = None, quick: bool = False) -> list[Table3Row]:
    """All Table 3 rows.  ``quick`` runs the fp16/RTN/eDKM subset."""
    harness = harness or Table3Harness()
    rows = [harness.run_fp16()]
    if quick:
        rows.append(harness.run_rtn(3))
        rows.append(harness.run_edkm(3))
        return rows
    rows.append(harness.run_rtn(4))
    rows.append(harness.run_gptq(4))
    rows.append(harness.run_awq(4))
    rows.append(harness.run_llm_qat(4))
    rows.append(harness.run_gptq(3))
    rows.append(harness.run_awq(3))
    rows.append(harness.run_edkm(3))
    return rows
