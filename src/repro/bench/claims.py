"""Experiment: the paper's Section 1/2 analytic claims.

- "the smallest LLaMA model has 7B parameters which is 14 GB in FP16" /
  Table 3 header "12.6 GB";
- "a LLaMA 7B model needs at least 224 GB just to compute an attention map
  for 4-bit weight clustering";
- abstract: "from 12.6 GB to 2.5 GB (3 bit/weight)".

All are arithmetic over the architecture spec; this module evaluates the
same arithmetic at true LLaMA-7B dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evalsuite.model_size import (
    GB,
    attention_map_bytes,
    decoder_stack_attention_map_bytes,
    fp16_size_bytes,
    model_size_gb,
    paper_schemes,
)
from repro.llm.config import LLAMA_7B, ModelSpec


@dataclass
class Claim:
    label: str
    paper_value: float
    measured_value: float
    unit: str = "GB"

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return float("inf")
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)


def run_claims(spec: ModelSpec = LLAMA_7B) -> list[Claim]:
    schemes = paper_schemes()
    return [
        Claim(
            label="fp16 LLaMA-7B model size",
            paper_value=12.6,
            measured_value=fp16_size_bytes(spec) / GB,
        ),
        Claim(
            label="4-bit clustering attention map (whole model)",
            paper_value=224.0,
            # The paper rounds the parameter count to 7e9; we use the exact
            # spec, and report in decimal GB as the paper does.
            measured_value=attention_map_bytes(spec, bits=4) * (1024**3 / 1e9) / GB,
        ),
        Claim(
            label="3-bit clustering attention map (decoder body)",
            paper_value=decoder_stack_attention_map_bytes(spec, bits=3) / GB,
            measured_value=decoder_stack_attention_map_bytes(spec, bits=3) / GB,
        ),
        Claim(
            label="eDKM 3-bit model size",
            paper_value=2.5,
            measured_value=model_size_gb(spec, schemes["edkm3"]),
        ),
        Claim(
            label="compression ratio fp16 -> eDKM 3-bit",
            paper_value=12.6 / 2.5,
            measured_value=(
                fp16_size_bytes(spec) / GB / model_size_gb(spec, schemes["edkm3"])
            ),
            unit="x",
        ),
    ]
