"""Experiment: paper Table 1 -- cross-device copies duplicate storage.

Replays the paper's four-line program with byte-exact accounting:

    line 0   x0 = torch.rand([1024, 1024])    GPU 4 MB   CPU 0
    line 1   x1 = x0.view(-1, 1)              GPU 4 MB   CPU 0
    line 2   y0 = x0.to('cpu')                GPU 4 MB   CPU 4 MB
    line 3   y1 = x1.to('cpu')                GPU 4 MB   CPU 8 MB

The view is free on GPU (shared storage); each ``.to`` allocates a fresh
CPU storage even though y0/y1 could share one -- the redundancy marshaling
removes (Fig. 2 / :mod:`repro.bench.fig2`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.device import CPU, GPU
from repro.tensor.tensor import Tensor

MB = 1024 * 1024


@dataclass
class Table1Row:
    line: int
    code: str
    gpu_mb: float
    cpu_mb: float


def run_table1() -> list[Table1Row]:
    gpu_start = GPU.tracker.current_bytes
    cpu_start = CPU.tracker.current_bytes

    def snapshot(line: int, code: str) -> Table1Row:
        return Table1Row(
            line=line,
            code=code,
            gpu_mb=(GPU.tracker.current_bytes - gpu_start) / MB,
            cpu_mb=(CPU.tracker.current_bytes - cpu_start) / MB,
        )

    rows = []
    rng = np.random.default_rng(0)
    x0 = Tensor.from_numpy(
        rng.random((1024, 1024), dtype=np.float32), device=GPU
    )
    rows.append(snapshot(0, "x0 = rand([1024, 1024])"))
    x1 = x0.view(-1, 1)
    rows.append(snapshot(1, "x1 = x0.view(-1, 1)"))
    y0 = x0.to(CPU)
    rows.append(snapshot(2, "y0 = x0.to('cpu')"))
    y1 = x1.to(CPU)
    rows.append(snapshot(3, "y1 = x1.to('cpu')"))
    # Keep references alive through the last snapshot.
    del x1, y0, y1
    return rows


PAPER_TABLE1 = [
    (0, 4.0, 0.0),
    (1, 4.0, 0.0),
    (2, 4.0, 4.0),
    (3, 4.0, 8.0),
]
