"""Marshal search-strategy ablation: graph walk vs storage-id vs fingerprint.

The paper's Section 2.1 dismisses content hashing as prohibitively
expensive and walks the forward graph instead.  This benchmark tests that
assumption: a transformer forward+backward runs under the saved-tensor
pipeline once per ``search_strategy`` (``graph``, ``storage-id``,
``fingerprint``), on identical weights and inputs, and we record per
strategy:

- **hit rate** -- ``copies_avoided / tensors_packed``;
- **probe cost** -- the strategy's own currency: frontier nodes dequeued
  per graph walk, bytes hashed (+ collision-compare bytes) per fingerprint
  probe, zero for the identity oracle;
- **wall time** -- min-of-``repeats`` seconds for the full step.

A fourth row, ``fingerprint+content``, runs the fingerprint strategy with
``fingerprint_dedup_content=True``: verified byte-identical storages (e.g.
the ones-initialized norm scales every layer shares) may then share one
host copy, so its hit rate is the content-hashing *headroom* over the
storage-identity oracle.

Correctness cross-check: the pipeline's pack-order event stream
(``record_events=True``) must be identical between ``fingerprint`` and
``storage-id`` -- same workload, same pack order, so equal event streams
mean the two strategies deduped the identical set of storages.  The
per-strategy counters must also reconcile:
``copies_made + copies_avoided == tensors_packed == hits + misses``.

``benchmarks/bench_marshal_strategies.py`` wraps :func:`run_marshal_strategies`
into a command-line entry point that writes ``BENCH_marshal.json``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

import repro.nn as nn
from repro.core.config import SEARCH_STRATEGIES, EDKMConfig
from repro.core.offload import SavedTensorPipeline
from repro.tensor.device import GPU
from repro.tensor.tensor import Tensor


@dataclass
class StrategyRow:
    """One strategy's stats over the common transformer workload."""

    strategy: str
    wall_seconds: float
    tensors_packed: int
    copies_made: int
    copies_avoided: int
    bytes_copied: int
    bytes_avoided: int
    graph_nodes_visited: int
    fingerprint_bytes_hashed: int
    fingerprint_bytes_compared: int
    fingerprint_collisions: int
    counters_reconcile: bool

    @property
    def hit_rate(self) -> float:
        return self.copies_avoided / max(self.tensors_packed, 1)

    @property
    def probe_cost(self) -> float:
        """Strategy-native work per probe (nodes walked or bytes hashed)."""
        probes = max(self.tensors_packed, 1)
        if self.strategy == "graph":
            return self.graph_nodes_visited / probes
        if self.strategy.startswith("fingerprint"):
            return (
                self.fingerprint_bytes_hashed + self.fingerprint_bytes_compared
            ) / probes
        return 0.0


@dataclass
class MarshalBenchResult:
    rows: list[StrategyRow] = field(default_factory=list)
    fingerprint_matches_oracle: bool = False
    all_reconcile: bool = False

    def to_json_dict(self) -> dict:
        rows = []
        for row in self.rows:
            d = asdict(row)
            d["hit_rate"] = row.hit_rate
            d["probe_cost"] = row.probe_cost
            rows.append(d)
        return {
            "benchmark": "marshal_strategies",
            "strategies": rows,
            "fingerprint_matches_oracle": self.fingerprint_matches_oracle,
            "all_reconcile": self.all_reconcile,
        }


def _build_workload(
    vocab_size: int,
    dim: int,
    n_layers: int,
    n_heads: int,
    hidden_dim: int,
    seq_len: int,
    batch: int,
    seed: int,
) -> tuple[nn.Transformer, Tensor]:
    model = nn.Transformer(
        vocab_size=vocab_size,
        dim=dim,
        n_layers=n_layers,
        n_heads=n_heads,
        hidden_dim=hidden_dim,
        max_seq_len=seq_len,
        seed=seed,
    )
    model.to(GPU)
    rng = np.random.default_rng(seed)
    tokens = Tensor.from_numpy(
        rng.integers(0, vocab_size, size=(batch, seq_len)).astype(np.int64),
        device=GPU,
    )
    return model, tokens


def _run_strategy(
    label: str,
    strategy: str,
    dedup_content: bool,
    model: nn.Transformer,
    tokens: Tensor,
    hop_budget: int,
    fingerprint_max_samples: int,
    repeats: int,
) -> tuple[StrategyRow, list[tuple[int, bool]]]:
    """Time ``repeats`` steps; stats and events come from the last one."""
    best = float("inf")
    pipeline = None
    for _ in range(max(1, repeats)):
        pipeline = SavedTensorPipeline(
            EDKMConfig(
                marshal=True,
                uniquify=False,
                shard=False,
                group=None,
                hop_budget=hop_budget,
                search_strategy=strategy,
                fingerprint_max_samples=fingerprint_max_samples,
                fingerprint_dedup_content=dedup_content,
            ),
            record_events=True,
        )
        t0 = time.perf_counter()
        with pipeline.step():
            logits = model(tokens)
            (logits * logits).sum().backward()
        best = min(best, time.perf_counter() - t0)
    stats = pipeline.stats
    reconcile = (
        stats.copies_made + stats.copies_avoided == stats.tensors_packed
        and stats.probes(strategy) == stats.tensors_packed
        and stats.strategy_hits.get(strategy, 0) == stats.copies_avoided
    )
    row = StrategyRow(
        strategy=label,
        wall_seconds=best,
        tensors_packed=stats.tensors_packed,
        copies_made=stats.copies_made,
        copies_avoided=stats.copies_avoided,
        bytes_copied=stats.bytes_copied,
        bytes_avoided=stats.bytes_avoided,
        graph_nodes_visited=stats.graph_nodes_visited,
        fingerprint_bytes_hashed=stats.fingerprint_bytes_hashed,
        fingerprint_bytes_compared=stats.fingerprint_bytes_compared,
        fingerprint_collisions=stats.fingerprint_collisions,
        counters_reconcile=reconcile,
    )
    return row, list(pipeline.events)


def run_marshal_strategies(
    vocab_size: int = 128,
    dim: int = 64,
    n_layers: int = 2,
    n_heads: int = 4,
    hidden_dim: int = 128,
    seq_len: int = 16,
    batch: int = 2,
    hop_budget: int = 4,
    fingerprint_max_samples: int = 64,
    repeats: int = 3,
    seed: int = 0,
) -> MarshalBenchResult:
    """All three strategies (plus the content-dedup variant) on one step."""
    result = MarshalBenchResult()
    events: dict[str, list[tuple[int, bool]]] = {}
    configurations = [(s, s, False) for s in SEARCH_STRATEGIES]
    configurations.append(("fingerprint+content", "fingerprint", True))
    for label, strategy, dedup_content in configurations:
        model, tokens = _build_workload(
            vocab_size, dim, n_layers, n_heads, hidden_dim, seq_len, batch, seed
        )
        row, evts = _run_strategy(
            label,
            strategy,
            dedup_content,
            model,
            tokens,
            hop_budget,
            fingerprint_max_samples,
            repeats,
        )
        result.rows.append(row)
        events[label] = evts
    result.fingerprint_matches_oracle = events["fingerprint"] == events["storage-id"]
    result.all_reconcile = all(row.counters_reconcile for row in result.rows)
    return result
