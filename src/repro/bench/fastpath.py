"""Fast-path engine micro-benchmark: old vs new hot-loop kernels.

Three components of the per-step eDKM pipeline are measured against their
legacy implementations:

- **uniquify**: O(N) fixed-domain histogram vs sort-based ``np.unique``
  (bit-identical outputs are asserted on every shape);
- **segment reduction**: ``np.bincount``-based :func:`segment_sum` /
  :func:`scatter_add_rows` vs element-wise ``np.add.at``;
- **step cache**: uniquify calls and wall time per training step with the
  per-layer :class:`~repro.core.fastpath.StepCache` (one uniquify per layer
  per step) vs the legacy two-uniquify step.

``benchmarks/run_fastpath.py`` wraps :func:`run_fastpath` into a
deterministic command-line entry point that writes the
``BENCH_fastpath.json`` artifact.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.config import DKMConfig
from repro.core.dkm import DKMClusterer
from repro.core.edkm import EDKMClusterAssign, edkm_cluster
from repro.core.uniquify import (
    reset_uniquify_call_count,
    uniquify,
    uniquify_call_count,
)
from repro.tensor.autograd import no_grad
from repro.tensor.dtype import bfloat16, float32
from repro.tensor.ops.segment import scatter_add_rows, segment_sum
from repro.tensor.tensor import Tensor

# Shapes the not-slower assertion runs on (element counts of bf16 tensors).
REFERENCE_SHAPES = (1 << 16, 1 << 20, 1 << 22)


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (the least-noise estimator)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class UniquifyBenchRow:
    n_weights: int
    sort_seconds: float
    histogram_seconds: float
    bit_identical: bool

    @property
    def speedup(self) -> float:
        return self.sort_seconds / max(self.histogram_seconds, 1e-12)


@dataclass
class ScatterBenchRow:
    """One scatter comparison against two legacy formulations.

    ``add_at_mixed_seconds`` is the accuracy-equivalent baseline (float64
    accumulator, element-wise ufunc path -- what ``kmeans_palettize``'s
    count accumulation shipped); ``add_at_matched_seconds`` is the
    dtype-matched float32 ``np.add.at`` that modern numpy vectorizes (what
    the eDKM backward shipped, at float32 accumulation accuracy).  The
    headline ``speedup`` is against the accuracy-equivalent baseline; the
    matched ratio is reported and bounded so the bincount path can never
    silently regress far below the fastest legacy formulation.
    """

    kind: str  # "segment_sum" or "scatter_add_rows"
    n_elements: int
    add_at_mixed_seconds: float
    add_at_matched_seconds: float
    bincount_seconds: float
    max_abs_error: float

    @property
    def speedup(self) -> float:
        return self.add_at_mixed_seconds / max(self.bincount_seconds, 1e-12)

    @property
    def matched_ratio(self) -> float:
        """bincount time over dtype-matched add.at time (lower is better)."""
        return self.bincount_seconds / max(self.add_at_matched_seconds, 1e-12)


@dataclass
class StepBenchRow:
    n_weights: int
    steps: int
    legacy_seconds_per_step: float
    fastpath_seconds_per_step: float
    legacy_uniquify_per_step: float
    fastpath_uniquify_per_step: float

    @property
    def speedup(self) -> float:
        return self.legacy_seconds_per_step / max(
            self.fastpath_seconds_per_step, 1e-12
        )


@dataclass
class FastPathBenchResult:
    uniquify: list[UniquifyBenchRow] = field(default_factory=list)
    scatter: list[ScatterBenchRow] = field(default_factory=list)
    step: list[StepBenchRow] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        def rows(items):
            out = []
            for item in items:
                d = asdict(item)
                d["speedup"] = item.speedup
                if isinstance(item, ScatterBenchRow):
                    d["matched_ratio"] = item.matched_ratio
                out.append(d)
            return out

        return {
            "benchmark": "fastpath",
            "uniquify": rows(self.uniquify),
            "scatter": rows(self.scatter),
            "step": rows(self.step),
        }


def _bench_uniquify(
    n_weights: int, repeats: int, rng: np.random.Generator
) -> UniquifyBenchRow:
    w = bfloat16.project(rng.standard_normal(n_weights).astype(np.float32))
    sort_s = _best_of(lambda: uniquify(w, bfloat16, method="sort"), repeats)
    hist_s = _best_of(lambda: uniquify(w, bfloat16, method="histogram"), repeats)
    a = uniquify(w, bfloat16, method="sort")
    b = uniquify(w, bfloat16, method="histogram")
    identical = (
        np.array_equal(a.patterns, b.patterns)
        and np.array_equal(a.index_list, b.index_list)
        and a.index_list.dtype == b.index_list.dtype
        and np.array_equal(a.counts, b.counts)
    )
    return UniquifyBenchRow(
        n_weights=n_weights,
        sort_seconds=sort_s,
        histogram_seconds=hist_s,
        bit_identical=identical,
    )


def _bench_segment_sum(
    n_elements: int, n_segments: int, repeats: int, rng: np.random.Generator
) -> ScatterBenchRow:
    ids = rng.integers(0, n_segments, size=n_elements, dtype=np.int64)
    vals = rng.standard_normal(n_elements).astype(np.float32)

    def legacy_mixed() -> np.ndarray:
        # The float64-accurate formulation.  Mixed accumulator/payload
        # dtypes force numpy's element-wise ufunc.at path (the vectorized
        # inner loop needs matching dtypes).
        out = np.zeros(n_segments, dtype=np.float64)
        np.add.at(out, ids, vals)
        return out

    def legacy_matched() -> np.ndarray:
        # The dtype-matched formulation the eDKM backward actually used
        # (float32 accumulation; vectorized on numpy >= 1.24).
        out = np.zeros(n_segments, dtype=np.float32)
        np.add.at(out, ids, vals)
        return out

    mixed_s = _best_of(legacy_mixed, repeats)
    matched_s = _best_of(legacy_matched, repeats)
    bincount_s = _best_of(lambda: segment_sum(vals, ids, n_segments), repeats)
    err = float(np.abs(legacy_mixed() - segment_sum(vals, ids, n_segments)).max())
    return ScatterBenchRow(
        kind="segment_sum",
        n_elements=n_elements,
        add_at_mixed_seconds=mixed_s,
        add_at_matched_seconds=matched_s,
        bincount_seconds=bincount_s,
        max_abs_error=err,
    )


def _bench_scatter_rows(
    n_rows_out: int,
    n_gather: int,
    width: int,
    repeats: int,
    rng: np.random.Generator,
) -> ScatterBenchRow:
    idx = rng.integers(0, n_rows_out, size=n_gather, dtype=np.int64)
    grad = rng.standard_normal((n_gather, width)).astype(np.float32)

    def legacy_mixed() -> np.ndarray:
        # Same float64-accurate element-wise baseline as _bench_segment_sum.
        out = np.zeros((n_rows_out, width), dtype=np.float64)
        np.add.at(out, idx, grad)
        return out

    def legacy_matched() -> np.ndarray:
        # What IndexSelect.backward shipped: float32-matched np.add.at.
        out = np.zeros((n_rows_out, width), dtype=np.float32)
        np.add.at(out, idx, grad)
        return out

    mixed_s = _best_of(legacy_mixed, repeats)
    matched_s = _best_of(legacy_matched, repeats)
    bincount_s = _best_of(lambda: scatter_add_rows(idx, grad, n_rows_out), repeats)
    err = float(np.abs(legacy_mixed() - scatter_add_rows(idx, grad, n_rows_out)).max())
    return ScatterBenchRow(
        kind="scatter_add_rows",
        n_elements=n_gather * width,
        add_at_mixed_seconds=mixed_s,
        add_at_matched_seconds=matched_s,
        bincount_seconds=bincount_s,
        max_abs_error=err,
    )


def _perturb(weights: Tensor, rng: np.random.Generator) -> None:
    """Simulate an optimizer write (bumps the storage version counter)."""
    noise = rng.standard_normal(weights.shape).astype(np.float32) * 1e-3
    weights.copy_(weights._compute() + noise)


def _bench_step(
    n_weights: int, steps: int, bits: int, rng: np.random.Generator
) -> StepBenchRow:
    values = rng.standard_normal(n_weights).astype(np.float32) * 0.05
    config = DKMConfig(bits=bits, iters=3)

    # Legacy: refine and the forward assignment each uniquify, no carry-over.
    weights = Tensor.from_numpy(values, dtype=bfloat16, requires_grad=True)
    clusterer = DKMClusterer(config)
    reset_uniquify_call_count()
    t0 = time.perf_counter()
    for _ in range(steps):
        clusterer.fastpath.invalidate()
        with no_grad():
            state = clusterer.refine(weights)
        clusterer.fastpath.invalidate()
        centroids = Tensor.from_numpy(state.centroids, dtype=float32)
        EDKMClusterAssign.apply(weights, centroids, state.temperature)
        _perturb(weights, rng)
    legacy_s = (time.perf_counter() - t0) / steps
    legacy_calls = uniquify_call_count() / steps

    # Fast path: shared StepCache, one uniquify per step, table carried over.
    weights = Tensor.from_numpy(values, dtype=bfloat16, requires_grad=True)
    clusterer = DKMClusterer(config)
    reset_uniquify_call_count()
    t0 = time.perf_counter()
    for _ in range(steps):
        edkm_cluster(weights, clusterer)
        _perturb(weights, rng)
    fastpath_s = (time.perf_counter() - t0) / steps
    fastpath_calls = uniquify_call_count() / steps

    return StepBenchRow(
        n_weights=n_weights,
        steps=steps,
        legacy_seconds_per_step=legacy_s,
        fastpath_seconds_per_step=fastpath_s,
        legacy_uniquify_per_step=legacy_calls,
        fastpath_uniquify_per_step=fastpath_calls,
    )


def run_fastpath(
    uniquify_sizes: tuple[int, ...] = REFERENCE_SHAPES,
    repeats: int = 3,
    step_weights: int = 1 << 18,
    steps: int = 4,
    bits: int = 3,
    seed: int = 0,
) -> FastPathBenchResult:
    """Run all three micro-benchmarks with a fixed seed."""
    rng = np.random.default_rng(seed)
    result = FastPathBenchResult()
    for n in uniquify_sizes:
        result.uniquify.append(_bench_uniquify(n, repeats, rng))
    result.scatter.append(_bench_segment_sum(1 << 20, 1 << 14, repeats, rng))
    result.scatter.append(_bench_scatter_rows(4096, 1 << 15, 64, repeats, rng))
    result.step.append(_bench_step(step_weights, steps, bits, rng))
    return result
