"""Parallel compression-engine benchmark: serial vs threaded layer fan-out.

Two claims of the parallel engine (ISSUE 2) are measured:

- **layer fan-out**: a multi-layer ``precluster`` sweep (per-layer refine +
  hard assign) through ``ModelCompressor`` with ``num_workers=1`` vs a
  thread pool, asserting the parallel results -- centroids, assignments,
  and per-layer step-cache hit/miss counters -- are bit-identical to the
  serial sweep;
- **chunked dense fallback**: ``DKMClusterer.cluster_dense`` on a layer
  whose monolithic ``O(|W|·|C|)`` composition is refused up front
  (:class:`MemoryError` via ``dense_saved_bytes_limit``), shown to run
  under ``row_chunk`` and to agree with the eDKM unique-space forward.

``benchmarks/bench_parallel_layers.py`` wraps :func:`run_parallel_layers`
into a deterministic command-line entry point that writes the
``BENCH_parallel.json`` artifact.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

import repro.nn as nn
from repro.core.compressor import ModelCompressor
from repro.core.config import CompressorConfig, DKMConfig
from repro.core.dkm import DKMClusterer
from repro.core.edkm import edkm_cluster
from repro.core.fastpath import FastPathStats
from repro.tensor.dtype import bfloat16
from repro.tensor.tensor import Tensor


class _LinearStack(nn.Module):
    """``n_layers`` independent Linears -- the multi-layer fan-out target."""

    def __init__(self, n_layers: int, in_features: int, out_features: int, seed: int):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(
                    in_features,
                    out_features,
                    bias=False,
                    rng=np.random.default_rng(seed + i),
                ),
            )


@dataclass
class ParallelSweepRow:
    """One serial-vs-parallel comparison of a full precluster sweep."""

    n_layers: int
    weights_per_layer: int
    workers: int
    serial_seconds: float
    parallel_seconds: float
    bit_identical: bool
    stats_identical: bool

    @property
    def speedup(self) -> float:
        return self.serial_seconds / max(self.parallel_seconds, 1e-12)


@dataclass
class ChunkedDenseRow:
    """The dense-ablation scaling demonstration."""

    n_weights: int
    n_clusters: int
    row_chunk: int
    monolithic_raises: bool
    monolithic_error: str
    chunked_seconds: float
    matches_edkm_forward: bool


@dataclass
class ParallelBenchResult:
    cpu_count: int = 0
    sweeps: list[ParallelSweepRow] = field(default_factory=list)
    chunked: list[ChunkedDenseRow] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        sweeps = []
        for row in self.sweeps:
            d = asdict(row)
            d["speedup"] = row.speedup
            sweeps.append(d)
        return {
            "benchmark": "parallel_layers",
            "cpu_count": self.cpu_count,
            "sweeps": sweeps,
            "chunked_dense": [asdict(row) for row in self.chunked],
        }


def _build_compressor(
    n_layers: int,
    in_features: int,
    out_features: int,
    bits: int,
    iters: int,
    workers: int,
    seed: int,
) -> ModelCompressor:
    stack = _LinearStack(n_layers, in_features, out_features, seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=bits, iters=iters),
        config=CompressorConfig(num_workers=workers),
    )
    compressor.compress(stack)
    return compressor


def _reset(compressor: ModelCompressor) -> None:
    """Fresh clustering state + empty step caches for a timed sweep."""
    for wrapper in compressor.wrapped.values():
        wrapper.clusterer.state = None
        wrapper.step_cache.invalidate()
        wrapper.step_cache.stats = FastPathStats()


def _timed_sweep(compressor: ModelCompressor, repeats: int) -> tuple[float, dict]:
    best = float("inf")
    results: dict = {}
    for _ in range(repeats):
        _reset(compressor)
        t0 = time.perf_counter()
        results = compressor.precluster()
        best = min(best, time.perf_counter() - t0)
    return best, results


def _sweep_row(
    n_layers: int,
    in_features: int,
    out_features: int,
    workers: int,
    bits: int,
    iters: int,
    repeats: int,
    seed: int,
) -> ParallelSweepRow:
    serial = _build_compressor(
        n_layers, in_features, out_features, bits, iters, workers=1, seed=seed
    )
    parallel = _build_compressor(
        n_layers, in_features, out_features, bits, iters, workers=workers, seed=seed
    )

    serial_s, serial_res = _timed_sweep(serial, repeats)
    parallel_s, parallel_res = _timed_sweep(parallel, repeats)

    bit_identical = list(serial_res) == list(parallel_res) and all(
        np.array_equal(serial_res[name].centroids, parallel_res[name].centroids)
        and np.array_equal(serial_res[name].assignments, parallel_res[name].assignments)
        and serial_res[name].temperature == parallel_res[name].temperature
        for name in serial_res
    )
    serial_stats = {
        name: repr(wrapper.step_cache.stats)
        for name, wrapper in serial.wrapped.items()
    }
    parallel_stats = {
        name: repr(wrapper.step_cache.stats)
        for name, wrapper in parallel.wrapped.items()
    }
    return ParallelSweepRow(
        n_layers=n_layers,
        weights_per_layer=in_features * out_features,
        workers=workers,
        serial_seconds=serial_s,
        parallel_seconds=parallel_s,
        bit_identical=bit_identical,
        stats_identical=serial_stats == parallel_stats,
    )


def _chunked_dense_row(
    n_weights: int, bits: int, row_chunk: int, seed: int
) -> ChunkedDenseRow:
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n_weights).astype(np.float32) * 0.05
    config = DKMConfig(bits=bits, iters=2)

    # No grad consumer here: the timed run measures the deployment-style
    # clustering sweep, so leave autograd recording off (gradient exactness
    # of the chunked path is covered by tests/test_parallel_compress.py).
    weights = Tensor.from_numpy(values, dtype=bfloat16)
    clusterer = DKMClusterer(config)
    monolithic_raises, monolithic_error = False, ""
    try:
        clusterer.cluster_dense(weights)
    except MemoryError as exc:
        monolithic_raises, monolithic_error = True, str(exc)

    t0 = time.perf_counter()
    chunked_out = clusterer.cluster_dense(weights, row_chunk=row_chunk)
    chunked_s = time.perf_counter() - t0

    # Same converged state through the eDKM unique-space forward: the dense
    # soft reconstruction must agree (both project back to the bf16 grid).
    edkm_weights = Tensor.from_numpy(values, dtype=bfloat16)
    edkm_clusterer = DKMClusterer(config)
    edkm_out = edkm_cluster(edkm_weights, edkm_clusterer)
    matches = bool(
        np.allclose(
            chunked_out.numpy().astype(np.float32),
            edkm_out.numpy().astype(np.float32),
            atol=1e-2,
            rtol=1e-2,
        )
    )
    return ChunkedDenseRow(
        n_weights=n_weights,
        n_clusters=config.n_clusters,
        row_chunk=row_chunk,
        monolithic_raises=monolithic_raises,
        monolithic_error=monolithic_error,
        chunked_seconds=chunked_s,
        matches_edkm_forward=matches,
    )


def run_parallel_layers(
    n_layers: int = 8,
    in_features: int = 512,
    out_features: int = 512,
    workers: int = 4,
    bits: int = 3,
    iters: int = 3,
    repeats: int = 3,
    dense_weights: int = 6 << 20,
    dense_bits: int = 4,
    dense_row_chunk: int = 1 << 16,
    seed: int = 0,
) -> ParallelBenchResult:
    """Run the fan-out and chunked-dense benchmarks with a fixed seed.

    ``dense_weights`` defaults to 6M elements so the monolithic dense
    composition (``|W| x 16`` float32 buffers, ~400 MB each) trips the
    default ``dense_saved_bytes_limit`` -- the layer size that previously
    could only run through the eDKM path.
    """
    result = ParallelBenchResult(cpu_count=os.cpu_count() or 1)
    result.sweeps.append(
        _sweep_row(
            n_layers, in_features, out_features, workers, bits, iters, repeats, seed
        )
    )
    result.chunked.append(
        _chunked_dense_row(dense_weights, dense_bits, dense_row_chunk, seed)
    )
    return result
