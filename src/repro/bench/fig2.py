"""Experiment: paper Fig. 2 -- marshaling removes the CPU-side duplicate.

The Table 1 scenario expressed as saved tensors of an autograd step: a
forward pass saves both ``x0`` and its view ``x1`` for backward; the offload
pipeline copies them to CPU.  Without marshaling the CPU holds two 4 MB
storages; with marshaling the second save resolves -- via the forward-graph
walk -- to a reference plus the view-op metadata ("the required ops for
future retrieval").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EDKMConfig
from repro.core.offload import SavedTensorPipeline
from repro.memory import global_ledger, profile_memory
from repro.tensor.device import CPU, GPU
from repro.tensor.tensor import Tensor

MB = 1024 * 1024


@dataclass
class Fig2Result:
    marshal: bool
    cpu_peak_mb: float
    offload_traffic_mb: float
    offload_transactions: int
    copies_made: int
    copies_avoided: int
    hops_histogram: dict[int, int]


def _saved_tensor_scenario(pipeline: SavedTensorPipeline) -> None:
    """Forward graph where x0 and a view of it are both saved for backward.

    ``x0 * x0`` saves x0 twice (same tensor object: a 0-hop marshaling hit);
    ``x1 ** 3`` saves the view x1, whose storage is reachable from the
    already-offloaded x0 through one View edge (a 1-hop hit).
    """
    rng = np.random.default_rng(0)
    x0 = Tensor.from_numpy(
        rng.random((1024, 1024), dtype=np.float32), device=GPU, requires_grad=True
    )
    with pipeline.step():
        x1 = x0.view(-1, 1)
        loss = (x0 * x0).sum() + (x1**3.0).sum()
        loss.backward()


def run_fig2(marshal: bool, hop_budget: int = 4, strategy: str = "graph") -> Fig2Result:
    config = EDKMConfig(
        marshal=marshal,
        uniquify=False,
        shard=False,
        group=None,
        hop_budget=hop_budget,
        search_strategy=strategy,
    )
    pipeline = SavedTensorPipeline(config)
    with profile_memory([CPU.tracker], global_ledger()) as prof:
        _saved_tensor_scenario(pipeline)
    return Fig2Result(
        marshal=marshal,
        cpu_peak_mb=prof.peak_delta("cpu") / MB,
        offload_traffic_mb=prof.traffic("gpu", "cpu") / MB,
        offload_transactions=prof.transactions("gpu", "cpu"),
        copies_made=pipeline.stats.copies_made,
        copies_avoided=pipeline.stats.copies_avoided,
        hops_histogram=dict(pipeline.stats.hops_histogram),
    )


def run_hop_budget_sweep(budgets: tuple[int, ...] = (0, 1, 2, 4, 6)) -> list[Fig2Result]:
    """Ablation: how many hops the graph walk needs (paper: 4 suffices)."""
    return [run_fig2(marshal=True, hop_budget=b) for b in budgets]
