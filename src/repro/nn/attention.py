"""Multi-head causal self-attention (the Table 2 workload).

The paper's ablation (Table 2) measures "one attention layer from the LLaMA
7B decoder stack" under 3-bit DKM compression.  This module is that layer:
four Linear projections -- whose weights the DKM layer re-clusters on every
forward -- plus RoPE, causal masking and softmax attention.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from repro.tensor import ops
from repro.tensor.dtype import DType, float32
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


class MultiHeadAttention(Module):
    def __init__(
        self,
        dim: int,
        n_heads: int,
        max_seq_len: int = 512,
        dtype: DType | str = float32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        rng = rng or default_rng(0)
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.q_proj = Linear(dim, dim, bias=False, dtype=dtype, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, dtype=dtype, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, dtype=dtype, rng=rng)
        self.o_proj = Linear(dim, dim, bias=False, dtype=dtype, rng=rng)
        self.rope = RotaryEmbedding(self.head_dim, max_seq_len)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.n_heads, self.head_dim).permute(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, head_dim = x.shape
        return x.permute(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def forward(self, x: Tensor) -> Tensor:
        """Causal self-attention over ``x`` of shape (batch, seq, dim)."""
        seq_len = x.shape[1]
        q = self.rope.apply(self._split_heads(self.q_proj(x)))
        k = self.rope.apply(self._split_heads(self.k_proj(x)))
        v = self._split_heads(self.v_proj(x))

        scores = (q @ k.transpose(2, 3)) * (1.0 / math.sqrt(self.head_dim))
        mask = ops.causal_mask(seq_len)
        scores = ops.masked_fill(scores, mask, -1e9)
        weights = ops.softmax(scores, dim=-1)
        context = self._merge_heads(weights @ v)
        return self.o_proj(context)
