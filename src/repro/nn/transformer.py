"""Decoder-only transformer in the LLaMA architecture."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.linear import Embedding, Linear
from repro.nn.mlp import SwiGLUMLP
from repro.nn.module import Module, ModuleList
from repro.nn.norm import RMSNorm
from repro.tensor.dtype import DType, float32
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


class DecoderLayer(Module):
    """Pre-norm residual block: attention then SwiGLU MLP."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        hidden_dim: int,
        max_seq_len: int = 512,
        dtype: DType | str = float32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or default_rng(0)
        self.attn_norm = RMSNorm(dim, dtype=dtype)
        self.attn = MultiHeadAttention(
            dim, n_heads, max_seq_len=max_seq_len, dtype=dtype, rng=rng
        )
        self.mlp_norm = RMSNorm(dim, dtype=dtype)
        self.mlp = SwiGLUMLP(dim, hidden_dim, dtype=dtype, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.attn_norm(x))
        x = x + self.mlp(self.mlp_norm(x))
        return x


class Transformer(Module):
    """Embedding, N decoder layers, final norm, untied LM head."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        n_layers: int,
        n_heads: int,
        hidden_dim: int,
        max_seq_len: int = 512,
        dtype: DType | str = float32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = default_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.max_seq_len = max_seq_len
        self.embed = Embedding(vocab_size, dim, dtype=dtype, rng=rng)
        self.layers = ModuleList(
            [
                DecoderLayer(
                    dim,
                    n_heads,
                    hidden_dim,
                    max_seq_len=max_seq_len,
                    dtype=dtype,
                    rng=rng,
                )
                for _ in range(n_layers)
            ]
        )
        self.final_norm = RMSNorm(dim, dtype=dtype)
        self.lm_head = Linear(dim, vocab_size, bias=False, dtype=dtype, rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        """Logits of shape (batch, seq, vocab) for integer ``tokens``."""
        x = self.embed(tokens)
        for layer in self.layers:
            x = layer(x)
        return self.lm_head(self.final_norm(x))
