"""Rotary position embeddings (half-split / GPT-NeoX layout)."""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.device import Device
from repro.tensor.tensor import Tensor


class RotaryEmbedding:
    """Precomputed cos/sin tables applied to query and key heads.

    Tables are plain (non-trainable) tensors created per device on demand;
    they participate in the forward graph only as constants.
    """

    def __init__(self, head_dim: int, max_seq_len: int, base: float = 10000.0) -> None:
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        half = head_dim // 2
        inv_freq = 1.0 / (base ** (np.arange(half, dtype=np.float64) / half))
        positions = np.arange(max_seq_len, dtype=np.float64)
        angles = np.outer(positions, inv_freq)  # (T, half)
        self._cos = np.cos(angles).astype(np.float32)
        self._sin = np.sin(angles).astype(np.float32)
        self._cache: dict[str, tuple[Tensor, Tensor]] = {}

    def tables(self, seq_len: int, device: Device) -> tuple[Tensor, Tensor]:
        if seq_len > self.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds RoPE table ({self.max_seq_len})"
            )
        key = f"{device.name}:{seq_len}"
        if key not in self._cache:
            cos = Tensor.from_numpy(self._cos[:seq_len], device=device)
            sin = Tensor.from_numpy(self._sin[:seq_len], device=device)
            self._cache[key] = (cos, sin)
        return self._cache[key]

    def apply(self, x: Tensor) -> Tensor:
        """Rotate ``x`` of shape (batch, heads, seq, head_dim)."""
        if x.ndim != 4 or x.shape[-1] != self.head_dim:
            raise ValueError(f"expected (B, H, T, {self.head_dim}), got {x.shape}")
        seq_len = x.shape[2]
        cos, sin = self.tables(seq_len, x.device)
        half = self.head_dim // 2
        x1 = x[:, :, :, :half]
        x2 = x[:, :, :, half:]
        # cos/sin broadcast over batch and heads: (T, half) -> (1, 1, T, half)
        cos_b = cos.unsqueeze(0).unsqueeze(0)
        sin_b = sin.unsqueeze(0).unsqueeze(0)
        rotated_first = x1 * cos_b - x2 * sin_b
        rotated_second = x1 * sin_b + x2 * cos_b
        return ops.cat([rotated_first, rotated_second], dim=3)
