"""Normalization layers (RMSNorm is the LLaMA choice)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.dtype import DType, float32, get_dtype
from repro.tensor.tensor import Tensor


class RMSNorm(Module):
    """Root-mean-square normalization: ``x / rms(x) * g``."""

    def __init__(
        self, dim: int, eps: float = 1e-5, dtype: DType | str = float32
    ) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        dt = get_dtype(dtype)
        self.weight = Parameter.wrap(
            Tensor.from_numpy(np.ones(dim, dtype=np.float32), dtype=dt)
        )

    def forward(self, x: Tensor) -> Tensor:
        mean_square = (x * x).mean(dim=-1, keepdim=True)
        normed = x / (mean_square + self.eps).sqrt()
        return normed * self.weight


class LayerNorm(Module):
    """Standard layer normalization with learned scale and shift."""

    def __init__(
        self, dim: int, eps: float = 1e-5, dtype: DType | str = float32
    ) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        dt = get_dtype(dtype)
        self.weight = Parameter.wrap(
            Tensor.from_numpy(np.ones(dim, dtype=np.float32), dtype=dt)
        )
        self.bias = Parameter.wrap(
            Tensor.from_numpy(np.zeros(dim, dtype=np.float32), dtype=dt)
        )

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(dim=-1, keepdim=True)
        centered = x - mean
        variance = (centered * centered).mean(dim=-1, keepdim=True)
        normed = centered / (variance + self.eps).sqrt()
        return normed * self.weight + self.bias
