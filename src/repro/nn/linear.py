"""Dense projection layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.dtype import DType, float32, get_dtype
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


class Linear(Module):
    """``y = x @ W.T + b`` with weight of shape ``(out_features, in_features)``.

    The weight layout matches PyTorch so compression code (DKM, GPTQ, AWQ)
    can treat rows as output channels.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        dtype: DType | str = float32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or default_rng(0)
        dt = get_dtype(dtype)
        self.in_features = in_features
        self.out_features = out_features
        weight_values = init.kaiming_uniform(
            (out_features, in_features), fan_in=in_features, rng=rng
        )
        self.weight = Parameter.wrap(Tensor.from_numpy(weight_values, dtype=dt))
        if bias:
            self.bias: Parameter | None = Parameter.wrap(
                Tensor.from_numpy(np.zeros(out_features, dtype=np.float32), dtype=dt)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Embedding(Module):
    """Token embedding table of shape ``(num_embeddings, dim)``."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        dtype: DType | str = float32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or default_rng(0)
        dt = get_dtype(dtype)
        self.num_embeddings = num_embeddings
        self.dim = dim
        values = init.normal((num_embeddings, dim), std=0.02, rng=rng)
        self.weight = Parameter.wrap(Tensor.from_numpy(values, dtype=dt))

    def forward(self, indices: Tensor) -> Tensor:
        from repro.tensor import ops

        return ops.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.dim})"
