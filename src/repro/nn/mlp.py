"""SwiGLU feed-forward block (the LLaMA MLP)."""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import ops
from repro.tensor.dtype import DType, float32
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


class SwiGLUMLP(Module):
    """``down( silu(gate(x)) * up(x) )`` with three weight matrices."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        dtype: DType | str = float32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or default_rng(0)
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.gate_proj = Linear(dim, hidden_dim, bias=False, dtype=dtype, rng=rng)
        self.up_proj = Linear(dim, hidden_dim, bias=False, dtype=dtype, rng=rng)
        self.down_proj = Linear(hidden_dim, dim, bias=False, dtype=dtype, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.down_proj(ops.silu(self.gate_proj(x)) * self.up_proj(x))
