"""Losses for language-model training."""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor

IGNORE_INDEX = -100


def cross_entropy(logits: Tensor, targets: Tensor, ignore_index: int = IGNORE_INDEX) -> Tensor:
    """Mean token-level cross entropy.

    ``logits``: (..., vocab); ``targets``: integer tensor of the leading
    shape.  Positions equal to ``ignore_index`` (the Alpaca instruction mask)
    contribute nothing to the loss.
    """
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    targets_np = targets._np().reshape(-1)
    keep = targets_np != ignore_index
    if not keep.any():
        raise ValueError("all target positions are masked out")
    safe_targets = np.where(keep, targets_np, 0).astype(np.int64)

    log_probs = ops.log_softmax(flat_logits, dim=-1)
    idx = Tensor.from_numpy(safe_targets.reshape(-1, 1), device=logits.device)
    picked = ops.take_along_dim(log_probs, idx, dim=1).reshape(-1)

    weights = Tensor.from_numpy(
        (keep.astype(np.float32) / float(keep.sum())), device=logits.device
    )
    return (picked * weights).sum() * -1.0


def token_log_likelihoods(logits: Tensor, targets: Tensor) -> np.ndarray:
    """Per-position log p(target) -- used by the evaluation harness."""
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    log_probs = ops.log_softmax(flat_logits, dim=-1)
    targets_np = targets._np().reshape(-1, 1).astype(np.int64)
    idx = Tensor.from_numpy(targets_np, device=logits.device)
    picked = ops.take_along_dim(log_probs, idx, dim=1)
    return picked._np().reshape(targets.shape).copy()
