"""Module base class: parameter registration, state dicts, device moves."""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.tensor.device import Device, device as as_device
from repro.tensor.storage import Storage
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A leaf tensor registered as a trainable module attribute."""

    __slots__ = ()

    @classmethod
    def wrap(cls, tensor: Tensor, requires_grad: bool = True) -> "Parameter":
        param = cls(
            tensor.storage,
            tensor.shape,
            tensor.strides,
            tensor.offset,
            requires_grad=requires_grad,
        )
        return param

    def move_to(self, device: Device) -> None:
        """Relocate storage to ``device`` in place (preserves identity)."""
        if device == self.device:
            return
        self.storage = Storage.from_values(
            np.asarray(self._np()), self.dtype, device
        )
        # A moved parameter is contiguous over its fresh storage.
        from repro.tensor.tensor import contiguous_strides

        self.strides = contiguous_strides(self.shape)
        self.offset = 0


class Module:
    """Composable unit with registered parameters and submodules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> list["Module"]:
        return list(self._modules.values())

    def num_parameters(self) -> int:
        return sum(p.numel for p in self.parameters())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, Tensor]:
        return {name: param for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, Tensor]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            incoming = state[name]
            if tuple(incoming.shape) != tuple(param.shape):
                raise ValueError(
                    f"shape mismatch for {name}: {incoming.shape} vs {param.shape}"
                )
            param.copy_(incoming)

    # ------------------------------------------------------------------
    # Modes and movement
    # ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def to(self, device: Device | str) -> "Module":
        dev = as_device(device)
        for param in self.parameters():
            param.move_to(dev)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self._modules.values():
            module.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module.__class__.__name__}"
            for name, module in self._modules.items()
        ]
        body = "\n".join(child_lines)
        return f"{self.__class__.__name__}(\n{body}\n)" if body else (
            f"{self.__class__.__name__}()"
        )


class ModuleList(Module):
    """An indexable sequence of submodules."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._items))
        self._items.append(module)
        self._modules[name] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
