"""Weight initializers (seeded, numpy-level)."""

from __future__ import annotations

import numpy as np


def normal(
    shape: tuple[int, ...], std: float, rng: np.random.Generator
) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He-uniform used for Linear weights (matches torch's default gain)."""
    bound = float(np.sqrt(1.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    bound = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
