"""Neural-network layer library (LLaMA-architecture building blocks)."""

from repro.nn.attention import MultiHeadAttention
from repro.nn.linear import Embedding, Linear
from repro.nn.loss import IGNORE_INDEX, cross_entropy, token_log_likelihoods
from repro.nn.mlp import SwiGLUMLP
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.norm import LayerNorm, RMSNorm
from repro.nn.rope import RotaryEmbedding
from repro.nn.transformer import DecoderLayer, Transformer

__all__ = [
    "MultiHeadAttention",
    "Embedding",
    "Linear",
    "IGNORE_INDEX",
    "cross_entropy",
    "token_log_likelihoods",
    "SwiGLUMLP",
    "Module",
    "ModuleList",
    "Parameter",
    "LayerNorm",
    "RMSNorm",
    "RotaryEmbedding",
    "DecoderLayer",
    "Transformer",
]
