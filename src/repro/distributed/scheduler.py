"""Sharded multi-node compression: the cluster scheduler.

Promotes the sticky-affinity process engine to a *cluster* scheduler:
layers are sharded across ``num_nodes`` spawned process groups standing
in for hosts ("nodes"), each owning one learner memory domain of a
:class:`~repro.distributed.learner.LearnerGroup`.  Three things change
relative to :class:`~repro.core.procpool.ProcessLayerEngine`, and
nothing else does:

**Placement** -- :class:`NodePlacement` generalizes
:class:`~repro.core.procpool.AffinityMap` from count-balanced hashing to
byte-balanced greedy packing: layers are placed largest-first onto the
least-loaded node, which guarantees ``max node load <= mean load +
largest layer`` (one huge embedding no longer shares a node with half
the model).  ``node_memory_budget`` turns the balance into a hard
per-node capacity; an unsatisfiable budget raises
:class:`PlacementError` instead of overcommitting.  Placement is pinning:
it only changes when the layer set or node count changes, and a
rebalance moves the minimum set of layers (orphans on remove, a settle
pass onto fresh nodes on add).

**Wire format** -- the PR-5 delta protocol *is* the node wire format:
full :class:`~repro.core.procpool.LayerTask` shipments install a layer
on its node, warm sweeps ship O(k) :class:`~repro.core.procpool.
LayerDelta` payloads, and every cross-node transfer (ship, gather,
gossip, steal) is recorded in the global
:class:`~repro.memory.traffic.TrafficLedger` under ``shard:*`` tags
against the node's learner-group device.  Each batch carries the
coordinator's gossiped ``(storage version, epoch)`` sync view; the node
reconciles its resident caches against it before running (see
:meth:`~repro.core.procpool.WorkerCacheRegistry.reconcile`).

**Work stealing** -- with ``steal_max_layers > 0`` each node's trailing
pinned layers are held back; whichever node drains its queue first takes
them, its own as the built delta/full shipment, another node's as a
*transient* full task with no cache residency.  Pins never move, so
placement stability -- and therefore delta shipping -- is unaffected,
and the transient path reproduces in-parent semantics exactly, so
results and counters stay bit-identical to serial.

Crash, hang, stale-cache, corrupt-payload, lost-shm and transient
failures reuse the PR-6 recovery taxonomy unchanged (node kill -> slot
respawn -> full re-ship), driven by the same deterministic
:class:`~repro.core.faults.FaultPlan` injection hooks.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.procpool import (
    LayerOutcome,
    LayerTask,
    ProcessLayerEngine,
    StaleWorkerCache,
    _run_layer_batch,
    _worker_cache_registry,
)
from repro.distributed.collective import logical_nbytes
from repro.distributed.learner import LearnerGroup
from repro.memory.traffic import global_ledger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from concurrent.futures import Future

    from repro.core.config import CompressorConfig
    from repro.core.procpool import LayerDelta


class PlacementError(ValueError):
    """A layer set cannot be placed within the configured node budget."""


@dataclass(frozen=True)
class NodePlacement:
    """Byte-balanced, stable layer-to-node pinning.

    The cluster-level analogue of :class:`~repro.core.procpool.
    AffinityMap`: where the affinity map balances layer *counts* via a
    stable hash, this balances layer *bytes* via greedy largest-first
    packing -- the right invariant when one embedding outweighs dozens
    of small projections.

    Invariants (property-tested in ``tests/test_sharded.py``):

    - **Balance bound**: ``max(loads) <= mean(loads) + max(sizes)``
      after :meth:`build`, and after :meth:`rebalance` across any node
      add/remove.  (Greedy onto the least-loaded node: when the last
      layer lands on the eventual-max node, that node held at most the
      mean.)
    - **Determinism**: placement is a pure function of the
      ``(sizes, n_nodes, budget)`` input -- ties break on the lexically
      smaller name, never on dict iteration or hashing order.
    - **Minimal movement**: :meth:`rebalance` keeps every surviving pin;
      on node removal only orphaned layers move, on node addition a
      settle pass moves just enough large layers onto the fresh nodes to
      restore the balance bound.
    - **Budget**: with ``budget > 0`` no node's load exceeds it;
      infeasible inputs raise :class:`PlacementError`.
    """

    names: tuple[str, ...]
    sizes: dict[str, int]
    n_nodes: int
    pins: dict[str, int]
    budget: int = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        sized: Sequence[tuple[str, int]],
        n_nodes: int,
        budget: int = 0,
    ) -> "NodePlacement":
        """Place ``(name, nbytes)`` layers greedily, largest first."""
        if n_nodes < 1:
            raise PlacementError(f"need at least one node, got {n_nodes}")
        names = tuple(name for name, _ in sized)
        if len(set(names)) != len(names):
            raise PlacementError("duplicate layer names in placement input")
        sizes = {name: int(nbytes) for name, nbytes in sized}
        pins: dict[str, int] = {}
        loads = [0] * n_nodes
        for name in cls._descending(sizes):
            cls._place(name, sizes[name], pins, loads, budget)
        return cls(
            names=names, sizes=sizes, n_nodes=n_nodes, pins=pins, budget=budget
        )

    @staticmethod
    def _descending(sizes: dict[str, int]) -> list[str]:
        """Names largest-first; ties break on the lexically smaller name."""
        return sorted(sizes, key=lambda n: (-sizes[n], n))

    @staticmethod
    def _place(
        name: str,
        nbytes: int,
        pins: dict[str, int],
        loads: list[int],
        budget: int,
    ) -> None:
        """Pin one layer to the least-loaded node that can take it."""
        candidates = range(len(loads))
        if budget > 0:
            if nbytes > budget:
                raise PlacementError(
                    f"layer {name!r} ({nbytes} bytes) exceeds the per-node "
                    f"budget of {budget} bytes on its own"
                )
            candidates = [i for i in candidates if loads[i] + nbytes <= budget]
            if not candidates:
                raise PlacementError(
                    f"no node can take layer {name!r} ({nbytes} bytes) within "
                    f"the {budget}-byte budget; add nodes or raise the budget"
                )
        node = min(candidates, key=lambda i: (loads[i], i))
        pins[name] = node
        loads[node] += nbytes

    def rebalance(
        self,
        sized: Sequence[tuple[str, int]],
        n_nodes: int,
        budget: int = 0,
    ) -> "NodePlacement":
        """Re-place for a new layer set / node count, moving the minimum.

        Surviving layers keep their pins; orphans (new layers, layers
        pinned to removed nodes) place greedily largest-first; growing
        the cluster additionally runs a settle pass that moves the
        largest qualifying layers from overloaded onto underloaded
        (fresh) nodes until the balance bound holds again.  If a
        positive ``budget`` cannot be honored while keeping surviving
        pins, stability yields to capacity: the placement is rebuilt
        from scratch (which may raise :class:`PlacementError`).
        """
        names = tuple(name for name, _ in sized)
        sizes = {name: int(nbytes) for name, nbytes in sized}
        pins = {
            name: node
            for name, node in self.pins.items()
            if name in sizes and node < n_nodes
        }
        loads = [0] * n_nodes
        for name, node in pins.items():
            loads[node] += sizes[name]
        try:
            for name in self._descending(sizes):
                if name not in pins:
                    self._place(name, sizes[name], pins, loads, budget)
        except PlacementError:
            # Budget pressure beats stability: survivors already fill
            # nodes past what greedy-from-scratch would, so retry cold.
            return self.build(sized, n_nodes, budget)
        if n_nodes > self.n_nodes:
            self._settle(sizes, pins, loads)
        placement = NodePlacement(
            names=names, sizes=sizes, n_nodes=n_nodes, pins=pins, budget=budget
        )
        if budget > 0 and max(loads) > budget:
            return self.build(sized, n_nodes, budget)
        return placement

    @classmethod
    def _settle(
        cls,
        sizes: dict[str, int],
        pins: dict[str, int],
        loads: list[int],
    ) -> None:
        """Move layers from the most- to the least-loaded node while it helps.

        Each move requires ``load(src) - load(dst) > size(layer)``, which
        strictly decreases the sum of squared loads, so the pass
        terminates; at the fixpoint the balance bound provably holds
        (``load(src) <= load(dst) + smallest layer on src``).  The
        iteration cap is a defensive backstop, not a correctness need.
        """
        for _ in range(len(sizes) * max(1, len(loads))):
            src = max(range(len(loads)), key=lambda i: (loads[i], -i))
            dst = min(range(len(loads)), key=lambda i: (loads[i], i))
            gap = loads[src] - loads[dst]
            movable = [
                name
                for name, node in pins.items()
                if node == src and sizes[name] < gap
            ]
            if not movable:
                return
            name = max(movable, key=lambda n: (sizes[n], n))
            pins[name] = dst
            loads[src] -= sizes[name]
            loads[dst] += sizes[name]

    # -- queries --------------------------------------------------------

    def layers_for(self, node: int) -> list[str]:
        """The layers pinned to ``node``, in layer insertion order."""
        return [name for name in self.names if self.pins.get(name) == node]

    def loads(self) -> list[int]:
        """Per-node pinned byte loads."""
        loads = [0] * self.n_nodes
        for name, node in self.pins.items():
            loads[node] += self.sizes[name]
        return loads

    def balance_bound(self) -> float:
        """The guaranteed ceiling: mean load + largest single layer."""
        if not self.sizes:
            return 0.0
        total = sum(self.sizes.values())
        return total / self.n_nodes + max(self.sizes.values())

    def is_balanced(self) -> bool:
        """Whether the balance bound actually holds (audit hook).

        Exposed so tests and the benchmark gate can *detect* an
        imbalanced placement (e.g. an injected everything-on-node-zero
        mutation) rather than trusting the constructor.
        """
        if not self.sizes:
            return True
        return max(self.loads()) <= self.balance_bound() + 1e-9


# ----------------------------------------------------------------------
# Node executor entry point (runs in the node's worker process)
# ----------------------------------------------------------------------


def _run_node_batch(
    op: str,
    kwargs: dict,
    tasks: "list[LayerTask | LayerDelta]",
    bytes_limit: int,
    gossip: "dict[str, tuple[str, int, int]] | None",
) -> list[LayerOutcome]:
    """One node's per-sweep batch: reconcile gossip, then run the tasks.

    Identical to :func:`~repro.core.procpool._run_sticky_batch` except
    that residency converges on the coordinator's gossiped ``(shm name,
    storage version, epoch)`` view instead of a bare retain list: stale
    residents are dropped *before* any task runs, so a delta addressed
    to a dropped entry raises ``StaleWorkerCache`` and triggers the
    full-re-ship recovery path.  Top-level so the spawn context pickles
    it by reference.
    """
    from repro.core.compressor import SWEEP_OPS

    fn = SWEEP_OPS[op]
    registry = _worker_cache_registry()
    if gossip is not None:
        registry.reconcile(gossip)
    return [registry.run(fn, task, kwargs, bytes_limit) for task in tasks]


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardedClusterEngine(ProcessLayerEngine):
    """Multi-node coordinator for ``backend="sharded"``.

    Inherits the whole worker-lifecycle, shm-export, fault-injection,
    and failure-recovery machinery of :class:`~repro.core.procpool.
    ProcessLayerEngine`; each "slot" is one node executor (a spawned
    single-worker process group).  Overrides exactly three seams: sweep
    dispatch (:meth:`_dispatch` -> byte-balanced placement + optional
    work stealing), batch submission (:meth:`_submit_slot` -> gossip +
    ledger accounting), and the placement structure itself
    (:class:`NodePlacement` instead of an
    :class:`~repro.core.procpool.AffinityMap`).
    """

    def __init__(self, config: "CompressorConfig") -> None:
        super().__init__(config)
        # Coordinator = group.primary; node i = group.devices[i + 1]
        # ("<host>:peer{i+1}"), each node owning one learner memory
        # domain.  Built lazily at first sweep when the width is known.
        self._group: LearnerGroup | None = None
        self._steals = 0
        self._last_sweep_steals = 0

    # -- observability --------------------------------------------------

    @property
    def steals(self) -> int:
        """Stolen-layer executions performed over the engine's lifetime."""
        return self._steals

    @property
    def last_sweep_steals(self) -> int:
        """Stolen-layer executions during the most recent sweep."""
        return self._last_sweep_steals

    def placement(self) -> "NodePlacement | None":
        """The current pinning (``None`` before the first sharded sweep)."""
        return self._affinity  # type: ignore[return-value]

    def node_device(self, node: int) -> str:
        """The learner-domain device name node ``node`` owns."""
        assert self._group is not None, "no sweep has run yet"
        return self._group.devices[node + 1].name

    def _coordinator_device(self) -> str:
        assert self._group is not None
        return self._group.primary.name

    def _ensure_group(self, n_nodes: int) -> None:
        if self._group is None or self._group.n_learners != n_nodes + 1:
            self._group = LearnerGroup(n_nodes + 1)

    def _ensure_slots(self, n_nodes: int) -> None:
        """Grow or shrink the node set *incrementally*.

        Overrides the base engine's resize (which tears every slot down
        and forgets all sync state): a cluster adding a node must not
        restart the surviving nodes.  Removed nodes shut down and their
        sync records drop (their layers re-ship full to new owners after
        the rebalance); surviving nodes keep their executors, resident
        caches, and sync records, so their unmoved layers keep shipping
        deltas across the resize.
        """
        slots = self._state["slots"]
        if len(slots) == n_nodes:
            return
        for pool in slots[n_nodes:]:
            pool.shutdown(wait=False, cancel_futures=True)
        del slots[n_nodes:]
        for name in [n for n, rec in self._sync.items() if rec.slot >= n_nodes]:
            del self._sync[name]
        while len(slots) < n_nodes:
            slots.append(
                ProcessPoolExecutor(max_workers=1, mp_context=self._mp_context())
            )

    # -- wire accounting ------------------------------------------------

    def _gossip_for(self, node: int) -> dict[str, tuple[str, int, int]]:
        """The coordinator's sync view of ``node`` (shipped per batch)."""
        return {
            name: (rec.shm_name, rec.version, rec.epoch)
            for name, rec in self._sync.items()
            if rec.slot == node
        }

    def _ledger_ship(self, node: int, payload, tag: str) -> None:
        """Record one coordinator -> node transfer in the traffic ledger."""
        nbytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        if nbytes:
            global_ledger().record(
                self._coordinator_device(),
                self.node_device(node),
                nbytes,
                tag=f"{tag}:node{node}",
            )

    def _ledger_gather(self, node: int, outcomes: list[LayerOutcome]) -> None:
        """Record one node -> coordinator outcome transfer."""
        if not outcomes:
            return
        nbytes = len(pickle.dumps(outcomes, protocol=pickle.HIGHEST_PROTOCOL))
        global_ledger().record(
            self.node_device(node),
            self._coordinator_device(),
            nbytes,
            tag=f"shard:gather:node{node}",
        )

    # -- submission (gossip rides along) --------------------------------

    def _submit_slot(
        self,
        slot: int,
        op: str,
        kwargs: dict,
        batch: list,
        retain: "tuple[str, ...] | None" = None,
    ) -> "Future | None":
        """Submit one node batch with the coordinator's gossiped view.

        Same signature as the base engine's so the inherited
        ``_collect_slot`` retry taxonomy re-submits through this override
        (re-ships keep gossiping).  ``retain`` is subsumed by the gossip:
        reconciliation prunes to the gossip's key set.
        """
        gossip = self._gossip_for(slot)
        try:
            future = self._state["slots"][slot].submit(
                _run_node_batch,
                op,
                kwargs,
                batch,
                self.config.worker_cache_bytes_limit,
                gossip,
            )
        except BrokenExecutor:
            return None
        if batch:
            self._ledger_ship(slot, batch, "shard:ship")
        if gossip:
            self._ledger_ship(slot, gossip, "shard:gossip")
        self._state["inflight"].append(future)
        return future

    # -- sweep dispatch -------------------------------------------------

    def _dispatch(self, op, layers, kwargs) -> list[LayerOutcome]:
        return self._map_nodes(op, layers, kwargs)

    def _sized(self, layers) -> list[tuple[str, int]]:
        """``(name, logical weight bytes)`` for placement input."""
        return [
            (name, logical_nbytes(weights)) for name, _, weights in layers
        ]

    def _ensure_placement(self, layers, n_nodes: int) -> tuple["NodePlacement", set[int]]:
        """Build or minimally rebalance the placement; drop broken pins.

        Returns the placement plus the set of nodes that must receive a
        flush (empty gossip-bearing batch) even with no pinned work this
        sweep, because the pin map changed under live workers.
        """
        sized = self._sized(layers)
        budget = self.config.node_memory_budget
        placement: "NodePlacement | None" = self._affinity  # type: ignore[assignment]
        names = tuple(name for name, _ in sized)
        flush_nodes: set[int] = set()
        if (
            placement is None
            or placement.names != names
            or placement.n_nodes != n_nodes
            or placement.budget != budget
            or any(placement.sizes[n] != s for n, s in sized)
        ):
            if placement is not None:
                # Surviving nodes may hold residents for re-pinned or
                # removed layers; each must see a gossip flush even if
                # it has no pinned work this sweep.
                flush_nodes = set(range(min(placement.n_nodes, n_nodes)))
            if placement is None:
                placement = NodePlacement.build(sized, n_nodes, budget)
            else:
                placement = placement.rebalance(sized, n_nodes, budget)
            self._affinity = placement  # duck-typed: .layers_for/.pins
            # A sync record for a re-pinned layer points at a node that
            # no longer owns it; drop it so the new owner ships full.
            for name in [
                n
                for n, rec in self._sync.items()
                if placement.pins.get(n) != rec.slot
            ]:
                del self._sync[name]
        return placement, flush_nodes

    def _map_nodes(self, op, layers, kwargs) -> list[LayerOutcome]:
        n_nodes = self.config.resolve_nodes(len(layers))
        self._ensure_slots(n_nodes)
        self._ensure_group(n_nodes)
        placement, flush_nodes = self._ensure_placement(layers, n_nodes)
        self.transport.begin_sweep()
        self._last_sweep_steals = 0
        spec: dict[str, tuple] = {}
        batches: list[list] = [[] for _ in range(n_nodes)]
        by_name: dict[str, LayerOutcome] = {}
        for name, clusterer, weights in layers:
            if name in self._quarantined:
                by_name[name] = self._run_in_parent(
                    op, name, clusterer, weights, kwargs
                )
                continue
            handle = self._export_weight(name, weights)
            node = placement.pins[name]
            spec[name] = (clusterer, weights, handle)
            batches[node].append(
                self._inject_faults(
                    self._build_task(name, clusterer, weights, handle, node), name
                )
            )
        # Hold back each node's trailing layers as stealable work; a node
        # always keeps at least one primary task so its caches stay warm.
        held: list[list] = [[] for _ in range(n_nodes)]
        if self.config.steal_max_layers > 0:
            for node in range(n_nodes):
                keep = max(1, len(batches[node]) - self.config.steal_max_layers)
                held[node] = batches[node][keep:]
                batches[node] = batches[node][:keep]
        watch: dict["Future", tuple[int, list]] = {}
        flushes: list[tuple[int, "Future"]] = []
        for node in range(n_nodes):
            if not batches[node]:
                if node in flush_nodes:
                    future = self._submit_slot(node, op, kwargs, [])
                    if future is not None:
                        flushes.append((node, future))
                continue
            self.transport.record_batch(batches[node])
            future = self._submit_slot(node, op, kwargs, batches[node])
            if future is None:
                # Node already dead at submit time: the inherited
                # taxonomy treats a None future as a crash and respawns.
                for outcome in self._collect_slot(
                    node, op, kwargs, batches[node], spec, None
                ):
                    by_name[outcome.name] = outcome
                continue
            watch[future] = (node, batches[node])
        self._service_nodes(op, kwargs, spec, watch, held, by_name)
        self._drain_flushes(flushes)
        self._drain_held(op, kwargs, spec, held, by_name)
        return [by_name[name] for name in placement.names]

    def _service_nodes(
        self,
        op: str,
        kwargs: dict,
        spec: dict,
        watch: dict,
        held: list[list],
        by_name: dict[str, LayerOutcome],
    ) -> None:
        """Collect node batches in completion order, feeding idle nodes.

        When a node's batch lands, it first takes its *own* held-back
        tail (the already-built delta/full shipment), then steals the
        byte-heaviest other tail as transient full tasks.  If a wait
        window passes with nothing finishing, the loop falls back to
        sequential collection, where the inherited watchdog/retry
        taxonomy (hang -> kill + respawn, etc.) takes over.
        """
        while watch:
            deadline = self._deadline(max(len(b) for _, b in watch.values()))
            done, _ = futures_wait(
                set(watch), timeout=deadline, return_when=FIRST_COMPLETED
            )
            if not done:
                # Global stall: let _collect_slot apply the taxonomy.
                for future, (node, batch) in list(watch.items()):
                    for outcome in self._collect_slot(
                        node, op, kwargs, batch, spec, future
                    ):
                        by_name[outcome.name] = outcome
                watch.clear()
                return
            for future in done:
                node, batch = watch.pop(future)
                for outcome in self._collect_slot(
                    node, op, kwargs, batch, spec, future
                ):
                    by_name[outcome.name] = outcome
                self._ledger_gather(node, [by_name[t.name] for t in batch])
                next_work = self._next_work(node, held, op, kwargs)
                if next_work is None:
                    continue
                next_batch, next_future = next_work
                if next_future is None:
                    # The node died between batches: crash taxonomy.
                    for outcome in self._collect_slot(
                        node, op, kwargs, next_batch, spec, None
                    ):
                        by_name[outcome.name] = outcome
                else:
                    watch[next_future] = (node, next_batch)

    def _next_work(
        self, node: int, held: list[list], op: str, kwargs: dict
    ) -> "tuple[list, Future] | None":
        """Hand an idle node its own tail, else the heaviest stealable one."""
        if held[node]:
            batch, held[node] = held[node], []
            self.transport.record_batch(batch)
            future = self._submit_slot(node, op, kwargs, batch)
            if future is None:
                return (batch, None)  # collected via crash taxonomy
            return (batch, future)
        victims = [v for v in range(len(held)) if held[v]]
        if not victims:
            return None
        placement: NodePlacement = self._affinity  # type: ignore[assignment]
        victim = max(
            victims,
            key=lambda v: (sum(placement.sizes[t.name] for t in held[v]), -v),
        )
        stolen, held[victim] = held[victim], []
        batch = [self._steal_task(task, victim) for task in stolen]
        self.transport.record_batch(batch)
        self._steals += len(batch)
        self._last_sweep_steals += len(batch)
        try:
            future = self._state["slots"][node].submit(
                _run_layer_batch, op, kwargs, batch
            )
        except BrokenExecutor:
            return (batch, None)
        self._ledger_ship(node, batch, "shard:steal")
        self._state["inflight"].append(future)
        return (batch, future)

    def _steal_task(self, task, victim: int) -> LayerTask:
        """Rebuild a held-back task as a transient full task for a thief.

        A stolen delta leaves the victim's sync record in place -- the
        delta protocol ships authoritative state every sweep, so the
        victim resumes bit-identically next sweep.  A stolen *full* task
        carried a fresh epoch the victim never saw; its optimistic sync
        record is dropped so the next sweep re-ships full cleanly.
        """
        if isinstance(task, LayerTask):
            rec = self._sync.get(task.name)
            if rec is not None and rec.epoch == task.epoch:
                del self._sync[task.name]
            return task
        # LayerDelta -> transient LayerTask with identical semantics.
        handle = self._state["exports"][task.name].handle
        rec = self._sync[task.name]
        return LayerTask(
            name=task.name,
            handle=handle,
            dkm_config=rec.config,
            state=task.state,
            warm=task.warm,
            epoch=task.epoch,
            fault=task.fault,
        )

    def _drain_flushes(self, flushes: list) -> None:
        """Wait out the empty prune/gossip batches sent to idle nodes."""
        for node, future in flushes:
            try:
                future.result(timeout=self._deadline(1))
            except FutureTimeout:
                self._respawn_slot(node, kill=True)
            except (BrokenExecutor, StaleWorkerCache):
                pass  # a dead node has nothing resident to flush

    def _drain_held(
        self,
        op: str,
        kwargs: dict,
        spec: dict,
        held: list[list],
        by_name: dict[str, LayerOutcome],
    ) -> None:
        """Run any still-held tails on their own nodes (stall fallback)."""
        for node, batch in enumerate(held):
            if not batch:
                continue
            held[node] = []
            self.transport.record_batch(batch)
            future = self._submit_slot(node, op, kwargs, batch)
            outcomes = self._collect_slot(node, op, kwargs, batch, spec, future)
            for outcome in outcomes:
                by_name[outcome.name] = outcome
            self._ledger_gather(node, outcomes)
