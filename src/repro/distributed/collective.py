"""Collectives over a :class:`~repro.distributed.learner.LearnerGroup`.

Data movement is real (buffers are copied between device-tagged storages)
and every transfer is logged in the global traffic ledger, so experiments
can report the communication cost the paper acknowledges for uniquification
and sharding ("the sharded weights need to be all-gathered").
"""

from __future__ import annotations

import numpy as np

from repro.distributed.learner import LearnerGroup
from repro.memory.traffic import global_ledger
from repro.tensor.device import Device
from repro.tensor.dtype import DType
from repro.tensor.tensor import Tensor


def logical_nbytes(tensor: Tensor) -> int:
    """Bytes of ``tensor``'s own elements, independent of its storage.

    ``Tensor.nbytes`` reports the *storage* footprint, which a view (a
    row slice, a transpose) shares with every sibling view -- correct for
    memory accounting, wrong for traffic accounting: a collective moves
    only the view's elements, not its whole backing storage.  Every
    ledger record in this module and in the sharded scheduler's
    byte-balanced placement uses this logical size instead.
    """
    return tensor.numel * tensor.dtype.itemsize


class ShardedTensor:
    """A tensor row-partitioned across the learners of a group.

    Shard ``i`` physically resides on ``group.devices[i]``; the logical
    tensor is the concatenation of shards along dim 0.
    """

    def __init__(
        self, shards: list[Tensor], group: LearnerGroup, full_shape: tuple[int, ...]
    ) -> None:
        if len(shards) != group.n_learners:
            raise ValueError(
                f"{len(shards)} shards for {group.n_learners} learners"
            )
        self.shards = shards
        self.group = group
        self.full_shape = tuple(full_shape)

    @property
    def dtype(self) -> DType:
        return self.shards[0].dtype

    @property
    def local_shard(self) -> Tensor:
        """Learner 0's shard (the one whose footprint experiments report)."""
        return self.shards[0]

    @property
    def nbytes_per_learner(self) -> int:
        return max(shard.nbytes for shard in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedTensor(full_shape={self.full_shape}, "
            f"n_shards={len(self.shards)}, dtype={self.dtype.name})"
        )


def shard_rows(tensor: Tensor, group: LearnerGroup, tag: str = "shard") -> ShardedTensor:
    """Partition ``tensor`` row-wise onto the group's devices.

    The transfer of every non-local shard is logged (learner 0 scatters to
    its peers in the synchronous setup).
    """
    values = np.ascontiguousarray(tensor._np())
    chunks = np.array_split(values, group.n_learners, axis=0)
    shards = []
    for chunk, dev in zip(chunks, group.devices):
        shard = Tensor.from_numpy(chunk.copy(), dtype=tensor.dtype, device=dev)
        if dev != tensor.device:
            global_ledger().record(
                tensor.device.name, dev.name, logical_nbytes(shard), tag=tag
            )
        shards.append(shard)
    return ShardedTensor(shards, group, values.shape)


def all_gather(
    sharded: ShardedTensor, device: Device, tag: str = "all_gather"
) -> Tensor:
    """Reassemble the full tensor on ``device``, logging per-shard traffic."""
    pieces = []
    for shard in sharded.shards:
        pieces.append(shard._np())
        if shard.device != device:
            global_ledger().record(
                shard.device.name, device.name, logical_nbytes(shard), tag=tag
            )
    full = np.concatenate(pieces, axis=0).reshape(sharded.full_shape)
    return Tensor.from_numpy(full, dtype=sharded.dtype, device=device)


def all_reduce_mean(tensors: list[Tensor], tag: str = "all_reduce") -> None:
    """In-place mean across per-learner replicas (gradient synchronization)."""
    if not tensors:
        raise ValueError("all_reduce_mean over zero tensors")
    shapes = {t.shape for t in tensors}
    if len(shapes) != 1:
        raise ValueError(f"mismatched replica shapes: {shapes}")
    mean = np.mean([t._compute() for t in tensors], axis=0)
    for t in tensors:
        for other in tensors:
            if other.device != t.device:
                # Logical bytes, not t.nbytes: a replica that is a view
                # of a larger storage exchanges only its own elements.
                global_ledger().record(
                    other.device.name, t.device.name, logical_nbytes(t), tag=tag
                )
        break  # ring cost approximation: one full exchange
    for t in tensors:
        t.copy_(mean)


def broadcast(
    tensor: Tensor,
    group: LearnerGroup,
    tag: str = "broadcast",
    copy_local: bool = False,
) -> list[Tensor]:
    """Replicate ``tensor`` onto every learner device.

    By default the replica on ``tensor``'s own device *is* ``tensor``
    (zero-copy, matching the data-parallel optimizer's contract).  Pass
    ``copy_local=True`` to get an independent copy there too: aliasing
    learner-local state to the master copy means an in-place update
    through the "replica" silently corrupts the source, which the
    sharded scheduler's rejoin path -- re-shipping pristine master
    weights to a respawned node -- cannot tolerate.  The local copy
    moves no bytes either way, so it is never ledgered.
    """
    replicas = []
    for dev in group.devices:
        if dev == tensor.device and not copy_local:
            replicas.append(tensor)
            continue
        replica = Tensor.from_numpy(
            np.array(tensor._np(), copy=True), dtype=tensor.dtype, device=dev
        )
        if dev != tensor.device:
            global_ledger().record(
                tensor.device.name, dev.name, logical_nbytes(replica), tag=tag
            )
        replicas.append(replica)
    return replicas
