"""Simulated fully-synchronous data-parallel learners.

The paper shards DKM's index list over the learners of an FSDP setup
(8x A100 in their experiments) because fully-synchronous data parallelism
keeps weights -- hence attention maps and index lists -- bit-identical on
every learner at every moment.  This package models that setup: a
:class:`LearnerGroup` is a set of per-learner memory domains, and the
collectives move real bytes between them while logging traffic.
"""

from repro.distributed.learner import LearnerGroup
from repro.distributed.collective import (
    ShardedTensor,
    all_gather,
    all_reduce_mean,
    broadcast,
    shard_rows,
)

__all__ = [
    "LearnerGroup",
    "ShardedTensor",
    "all_gather",
    "all_reduce_mean",
    "broadcast",
    "shard_rows",
]
