"""Simulated fully-synchronous data-parallel learners.

The paper shards DKM's index list over the learners of an FSDP setup
(8x A100 in their experiments) because fully-synchronous data parallelism
keeps weights -- hence attention maps and index lists -- bit-identical on
every learner at every moment.  This package models that setup: a
:class:`LearnerGroup` is a set of per-learner memory domains, the
collectives move real bytes between them while logging traffic, and the
cluster scheduler (:mod:`repro.distributed.scheduler`) shards whole
compression layers across spawned node executors, each owning one
learner domain.
"""

from repro.distributed.learner import LearnerGroup
from repro.distributed.collective import (
    ShardedTensor,
    all_gather,
    all_reduce_mean,
    broadcast,
    logical_nbytes,
    shard_rows,
)

_SCHEDULER_EXPORTS = ("NodePlacement", "PlacementError", "ShardedClusterEngine")


def __getattr__(name: str):
    """Lazily resolve scheduler exports (PEP 562).

    The scheduler imports ``repro.core.procpool``, which imports
    ``repro.core.config``, which imports ``repro.distributed.learner`` --
    importing it eagerly here would close that loop into a cycle the
    moment anything imports ``repro.core.config`` first.
    """
    if name in _SCHEDULER_EXPORTS:
        from repro.distributed import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "LearnerGroup",
    "NodePlacement",
    "PlacementError",
    "ShardedClusterEngine",
    "ShardedTensor",
    "all_gather",
    "all_reduce_mean",
    "broadcast",
    "logical_nbytes",
    "shard_rows",
]
