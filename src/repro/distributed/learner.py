"""Learner-group topology."""

from __future__ import annotations

from repro.tensor.device import CPU, Device, device as as_device


class LearnerGroup:
    """``n`` fully-synchronous learners with one memory domain each.

    Learner 0's host domain is the given ``host`` device (default the plain
    ``"cpu"`` device), so all per-learner-0 measurements -- the numbers the
    paper reports per GPU node -- read from a single tracker.  Peers get
    devices named ``"{host}:peer{i}"``.
    """

    def __init__(self, n_learners: int, host: Device | str = CPU) -> None:
        if n_learners < 1:
            raise ValueError(f"need at least one learner, got {n_learners}")
        host = as_device(host)
        self.n_learners = n_learners
        self.devices: list[Device] = [host] + [
            as_device(f"{host.name}:peer{i}") for i in range(1, n_learners)
        ]

    @property
    def primary(self) -> Device:
        return self.devices[0]

    def __len__(self) -> int:
        return self.n_learners

    def __repr__(self) -> str:
        return f"LearnerGroup(n={self.n_learners}, primary={self.primary.name!r})"
