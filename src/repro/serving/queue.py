"""Admission-controlled request queue for the serving engine.

The queue is the server's pressure-relief valve: depth is bounded
(``ServingConfig.max_queue_depth``), so a traffic burst beyond what the
batcher can drain is *rejected at submit time* with
:class:`AdmissionError` instead of growing an unbounded backlog, and a
request whose deadline has already passed when the scheduler reaches it
is rejected with :class:`DeadlineExceeded` rather than wasting decode
steps on an answer nobody is waiting for.  Both are the "admission
control" half of continuous batching; the batching half lives in
:mod:`repro.serving.batcher`.

Clients talk to the queue through :class:`ServerRequest` -- a
future-like handle whose :meth:`ServerRequest.result` blocks until the
scheduler thread completes or fails the request.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque


class ServingError(RuntimeError):
    """Base class of serving-layer failures."""


class AdmissionError(ServingError):
    """Submit rejected: the bounded request queue is full."""


class DeadlineExceeded(ServingError):
    """Request rejected or aborted: its completion deadline passed."""


class ServerClosed(ServingError):
    """Request failed: the server shut down before completing it."""


class StepFailed(ServingError):
    """Request failed: its decode step could not be completed.

    The typed error the supervised scheduler delivers through every
    future of a batch whose step raised, hung past the step watchdog, or
    exhausted its retries -- the crash boundary that keeps one bad step
    from stranding callers until their own timeouts.  ``cause`` carries
    the underlying failure (an exception instance, never re-raised).
    """

    def __init__(self, detail: str, cause: BaseException | None = None):
        super().__init__(detail)
        self.cause = cause


_REQUEST_IDS = itertools.count()


class ServerRequest:
    """One in-flight generation request (a thread-safe future).

    Timing fields are monotonic-clock stamps filled in by the pipeline:
    ``submitted_at`` at submit, ``scheduled_at`` when the batcher admits
    the request into the running batch, ``finished_at`` on completion or
    failure.  ``deadline`` is absolute (monotonic) or ``None``.

    Resolution is **idempotent**: the first :meth:`complete` or
    :meth:`fail` wins and every later attempt is a no-op returning
    ``False``.  The supervised scheduler relies on this -- a step
    watchdog may fail a batch's requests while a revoked (zombie) loop
    is still mid-step; whichever resolution lands first is the one the
    client sees, and stats are only recorded by the caller whose
    resolution actually took.
    """

    def __init__(
        self,
        prompt: str,
        max_new_tokens: int,
        deadline: float | None = None,
        now: float | None = None,
    ) -> None:
        self.id = next(_REQUEST_IDS)
        self.prompt = prompt
        self.max_new_tokens = max_new_tokens
        self.deadline = deadline
        self.submitted_at = time.monotonic() if now is None else now
        self.scheduled_at: float | None = None
        self.finished_at: float | None = None
        self.tokens_generated = 0
        self._lock = threading.Lock()
        # The completion latch is itself a synchronization primitive;
        # waiting on it under the state lock would deadlock resolution.
        self._event = threading.Event()  # repolint: disable=RL101 Event is thread-safe; waited on outside the lock by design
        self._resolved = False
        self._text: str | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------
    # Completion (scheduler side)
    # ------------------------------------------------------------------

    def complete(self, text: str, now: float | None = None) -> bool:
        """Resolve the request with generated ``text``.

        Returns whether *this* call resolved the request; ``False`` means
        it was already resolved (the caller must not record stats or
        ledger bytes for it again).
        """
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self._text = text
            self.finished_at = time.monotonic() if now is None else now
        self._event.set()
        return True

    def fail(self, error: BaseException, now: float | None = None) -> bool:
        """Resolve the request with ``error`` (raised from :meth:`result`).

        Idempotent like :meth:`complete`; returns whether this call won.
        """
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self._error = error
            self.finished_at = time.monotonic() if now is None else now
        self._event.set()
        return True

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the request has resolved (successfully or not)."""
        return self._event.is_set()

    @property
    def ok(self) -> bool:
        """Whether the request resolved successfully."""
        with self._lock:
            return self._resolved and self._error is None

    @property
    def error(self) -> BaseException | None:
        """The failure, if the request resolved unsuccessfully."""
        with self._lock:
            return self._error

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed as of monotonic time ``now``."""
        return self.deadline is not None and now > self.deadline

    def result(self, timeout: float | None = None) -> str:
        """Block until resolved; return the generated text or raise.

        Raises ``TimeoutError`` if the request is still in flight after
        ``timeout`` seconds, or the failure the scheduler recorded
        (:class:`DeadlineExceeded`, :class:`ServerClosed`,
        :class:`StepFailed`, ...).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.id} still in flight after {timeout}s"
            )
        with self._lock:
            error = self._error
            text = self._text
        if error is not None:
            raise error
        assert text is not None
        return text

    @property
    def latency_s(self) -> float | None:
        """Submit-to-resolve wall time, once resolved."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait_s(self) -> float | None:
        """Submit-to-schedule wall time, once scheduled."""
        if self.scheduled_at is None:
            return None
        return self.scheduled_at - self.submitted_at

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"ServerRequest(id={self.id}, {state}, prompt={self.prompt!r})"


class RequestQueue:
    """Bounded FIFO of pending :class:`ServerRequest` with admission control."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._pending: deque[ServerRequest] = deque()
        self.rejected_full = 0

    def submit(self, request: ServerRequest) -> ServerRequest:
        """Enqueue ``request`` or raise :class:`AdmissionError` when full."""
        with self._lock:
            if len(self._pending) >= self.max_depth:
                self.rejected_full += 1
                raise AdmissionError(
                    f"queue full ({self.max_depth} pending); request rejected"
                )
            self._pending.append(request)
            self._nonempty.notify()
        return request

    def take(self, limit: int, now: float) -> tuple[list[ServerRequest], list[ServerRequest]]:
        """Pop up to ``limit`` schedulable requests.

        Returns ``(admitted, expired)``: requests whose deadline already
        passed are popped, failed with :class:`DeadlineExceeded`, and
        returned separately -- they never consume a batch slot.
        """
        admitted: list[ServerRequest] = []
        expired: list[ServerRequest] = []
        with self._lock:
            while self._pending and len(admitted) < limit:
                request = self._pending.popleft()
                if request.expired(now):
                    expired.append(request)
                    continue
                admitted.append(request)
        for request in expired:
            request.fail(
                DeadlineExceeded(
                    f"request {request.id} missed its deadline while queued"
                ),
                now=now,
            )
        return admitted, expired

    def drain(self, error: BaseException) -> list[ServerRequest]:
        """Fail every pending request with ``error`` (server shutdown)."""
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
        for request in drained:
            request.fail(error)
        return drained

    def wait_nonempty(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for a pending request."""
        with self._nonempty:
            if self._pending:
                return True
            return self._nonempty.wait(timeout)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)
