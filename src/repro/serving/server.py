"""The palette-aware inference server: queue + batcher + palette kernels.

:class:`PaletteServer` is the deployment-shaped front door the north
star names: clients :meth:`PaletteServer.submit` prompts from any
thread, a scheduler thread drains the admission-controlled
:class:`~repro.serving.queue.RequestQueue` into the
:class:`~repro.serving.batcher.ContinuousBatcher`, and eval-mode
:class:`~repro.core.compressor.ClusteredLinear` layers execute through
the palette kernels (:mod:`repro.serving.palette`) with a shared
hot-tile LRU.  Per-request bytes flow into
:mod:`repro.memory.traffic` under ``serve:`` tags, and
:meth:`PaletteServer.stats` renders everything into a
:class:`~repro.serving.stats.StatsReport`.

Byte accounting convention: prompt and completion text bytes are
recorded per request (``serve:req<id>`` tags, endpoints
``client <-> server``); weight bytes *read per decode step* are
recorded under ``serve:weights`` with ``dst="flops"`` -- palette-path
layers charge their deployable layout bytes (lut + packed indices),
dense-path layers their 16-bit weight bytes, so compressed and
uncompressed scenarios are comparable at a glance.
"""

from __future__ import annotations

import threading
import time

from repro.core.compressor import ClusteredLinear
from repro.llm.tokenizer import WordTokenizer
from repro.memory.traffic import TrafficLedger, global_ledger
from repro.nn import Transformer
from repro.serving.batcher import ContinuousBatcher, SequenceState
from repro.serving.config import ServingConfig, get_default_serving_config
from repro.serving.palette import TileCache
from repro.serving.queue import (
    AdmissionError,
    RequestQueue,
    ServerClosed,
    ServerRequest,
)
from repro.serving.stats import (
    RequestRecord,
    ServerStats,
    StatsReport,
    request_tag,
)
from repro.tensor.device import Device

WEIGHT_TAG = "serve:weights"
"""Ledger tag of per-step weight-read records (``dst="flops"``)."""


class PaletteServer:
    """Concurrent generation server over a (possibly compressed) model.

    The model is switched to eval mode on construction; when
    ``config.eval_path == "palette"`` every :class:`ClusteredLinear` in
    it is routed through the palette executor with one shared
    :class:`TileCache` budgeted by ``config.tile_cache_bytes_limit``.
    Use as a context manager, or pair :meth:`start` with :meth:`close`.
    """

    def __init__(
        self,
        model: Transformer,
        tokenizer: WordTokenizer,
        config: ServingConfig | None = None,
        device: Device | None = None,
        ledger: TrafficLedger | None = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or get_default_serving_config()
        self.ledger = ledger if ledger is not None else global_ledger()
        self.stats_acc = ServerStats()
        self.queue = RequestQueue(self.config.max_queue_depth)
        self.tile_cache = TileCache(self.config.tile_cache_bytes_limit)
        self.batcher = ContinuousBatcher(
            model,
            tokenizer,
            self.config,
            device=device,
            stats=self.stats_acc,
            on_retire=self._on_retire,
        )
        self._palette_layers: list[tuple[str, ClusteredLinear]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._stopped_at: float | None = None
        model.eval()
        if self.config.eval_path == "palette":
            self._install_palette()
        # Dense-path clustered layers charge their full 16-bit weight per
        # step; the total is fixed, so compute it once.
        self._dense_weight_bytes = sum(
            2 * module.inner.weight.numel
            for _, module in model.named_modules()
            if isinstance(module, ClusteredLinear)
            and module.eval_path == "dense"
        )

    # ------------------------------------------------------------------
    # Palette installation
    # ------------------------------------------------------------------

    def _install_palette(self) -> None:
        for name, module in self.model.named_modules():
            if isinstance(module, ClusteredLinear):
                module.enable_palette_eval(
                    name=name,
                    tile_rows=self.config.palette_tile_rows,
                    cache=self.tile_cache,
                )
                self._palette_layers.append((name, module))

    def _uninstall_palette(self) -> None:
        for _, module in self._palette_layers:
            module.disable_palette_eval()
        self._palette_layers = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the scheduler thread is alive and accepting work."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "PaletteServer":
        """Start the scheduler thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        self.stats_acc.started_at = self._started_at
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="palette-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the scheduler; fail queued and in-flight requests."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._stopped_at = time.monotonic()
        self.stats_acc.stopped_at = self._stopped_at
        closed = ServerClosed("server stopped before completing this request")
        for request in self.queue.drain(closed):
            self.stats_acc.note_finished(RequestRecord.from_request(request, 0))
        self.batcher.abort_all(closed)

    def close(self) -> None:
        """Stop the server and restore the dense eval path."""
        self.stop()
        self._uninstall_palette()

    def __enter__(self) -> "PaletteServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
    ) -> ServerRequest:
        """Enqueue ``prompt``; returns the request future immediately.

        Raises :class:`AdmissionError` when the queue is at
        ``max_queue_depth`` and :class:`ServerClosed` when the server is
        not running.  ``deadline_s`` (or the config default) is measured
        from *submission* and covers queue wait plus decoding.
        """
        if not self.running:
            raise ServerClosed("submit() on a server that is not running")
        now = time.monotonic()
        budget = deadline_s if deadline_s is not None else self.config.default_deadline_s
        request = ServerRequest(
            prompt,
            max_new_tokens=max_new_tokens or self.config.max_new_tokens,
            deadline=None if budget is None else now + budget,
            now=now,
        )
        try:
            self.queue.submit(request)
        except AdmissionError:
            self.stats_acc.note_rejected_admission()
            raise
        self.stats_acc.note_submitted()
        self.ledger.record(
            "client",
            "server",
            len(prompt.encode("utf-8")),
            tag=request_tag(request.id),
        )
        return request

    def generate(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        timeout: float | None = 60.0,
    ) -> str:
        """Submit ``prompt`` and block for its completion text."""
        return self.submit(
            prompt, max_new_tokens=max_new_tokens, deadline_s=deadline_s
        ).result(timeout)

    def stats(self) -> StatsReport:
        """The aggregate report over the server's running window so far."""
        if self._started_at is None:
            wall = 0.0
        else:
            end = self._stopped_at if self._stopped_at is not None else time.monotonic()
            wall = end - self._started_at
        return self.stats_acc.report(wall, ledger=self.ledger)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            free = self.batcher.free_slots
            if free > 0:
                admitted, expired = self.queue.take(free, now)
                if expired:
                    self.stats_acc.note_rejected_deadline(len(expired))
                    for request in expired:
                        self.stats_acc.note_finished(
                            RequestRecord.from_request(request, 0)
                        )
                for request in admitted:
                    self.batcher.admit(request, now)
            if self.batcher.active:
                before = self._weight_block_snapshot()
                self.batcher.step(time.monotonic())
                self._record_step_weights(before)
            else:
                self.queue.wait_nonempty(self.config.poll_interval_s)

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------

    def _on_retire(self, seq: SequenceState) -> None:
        """Ledger the completion bytes of a retired sequence."""
        text = "" if seq.request.error is not None else self.tokenizer.decode(
            seq.generated
        )
        self.ledger.record(
            "server",
            "client",
            len(text.encode("utf-8")),
            tag=request_tag(seq.request.id),
        )

    def _weight_block_snapshot(self) -> dict[str, tuple[int, int]]:
        """Per-layer (palette_row_blocks, dense_row_blocks) counters now."""
        snapshot: dict[str, tuple[int, int]] = {}
        for name, module in self._palette_layers:
            exec_ = module.palette_exec
            if exec_ is not None:
                snapshot[name] = (
                    exec_.stats.palette_row_blocks,
                    exec_.stats.dense_row_blocks,
                )
        return snapshot

    def _record_step_weights(self, before: dict[str, tuple[int, int]]) -> None:
        """Ledger the weight bytes one decode step read.

        Palette blocks charge their share of the deployable layout (lut +
        packed indices); dense blocks charge the dequantized tile bytes.
        Layers still on the dense eval path (``eval_path == "dense"``)
        charge their full 16-bit weight each step.
        """
        nbytes = 0
        for name, module in self._palette_layers:
            exec_ = module.palette_exec
            if exec_ is None:
                continue
            layout = exec_.layout
            n_blocks = -(-layout.out_features // exec_.tile_rows)
            pal_before, dense_before = before.get(name, (0, 0))
            pal_blocks = exec_.stats.palette_row_blocks - pal_before
            dense_blocks = exec_.stats.dense_row_blocks - dense_before
            nbytes += pal_blocks * (layout.nbytes // max(1, n_blocks))
            nbytes += dense_blocks * exec_.tile_rows * layout.in_features * 4
        nbytes += self._dense_weight_bytes
        if nbytes:
            self.ledger.record("weights", "flops", nbytes, tag=WEIGHT_TAG)
