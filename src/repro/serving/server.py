"""The palette-aware inference server: queue + batcher + palette kernels.

:class:`PaletteServer` is the deployment-shaped front door the north
star names: clients :meth:`PaletteServer.submit` prompts from any
thread, a scheduler thread drains the admission-controlled
:class:`~repro.serving.queue.RequestQueue` into the
:class:`~repro.serving.batcher.ContinuousBatcher`, and eval-mode
:class:`~repro.core.compressor.ClusteredLinear` layers execute through
the palette kernels (:mod:`repro.serving.palette`) with a shared
hot-tile LRU.  Per-request bytes flow into
:mod:`repro.memory.traffic` under ``serve:`` tags, and
:meth:`PaletteServer.stats` renders everything into a
:class:`~repro.serving.stats.StatsReport`.

The scheduler is *supervised* (the serving counterpart of the
compression engine's chaos discipline, PR 6):

- **Crash boundary.**  A decode step that raises fails only that batch's
  requests -- each future gets a typed
  :class:`~repro.serving.queue.StepFailed` -- and the loop keeps
  serving.  :class:`~repro.serving.faults.TransientStepError` is retried
  in place with bounded backoff first.
- **Per-layer circuit breaker.**  Repeated palette-kernel or tile-digest
  failures on one layer trip exactly that layer to the dense eval path
  (bit-identical by construction), audited in the traffic ledger under
  :data:`~repro.serving.stats.DEGRADE_TAG`; after a probation of clean
  steps the palette path is re-enabled.
- **Step watchdog.**  With ``config.step_timeout_s`` set, a sidecar
  thread revokes the loop *generation* of a step that wedges: the stuck
  thread becomes a zombie whose late writes are discarded
  (:class:`ServerRequest` resolution is idempotent; the loop re-checks
  its generation after every sleep), its batch fails with
  ``StepFailed``, and a fresh loop is respawned under a bounded budget.
- **Lifecycle.**  :meth:`stop` joins with a deadline and escalates
  (warn, zombify, fail in-flight) instead of deadlocking on a hung
  step; ``stop(drain=True)`` closes admission and finishes in-flight
  work first; :meth:`health` snapshots loop liveness, queue depth, and
  breaker states, and :meth:`submit` consults it to shed load.

Byte accounting convention: prompt and completion text bytes are
recorded per request (``serve:req<id>`` tags, endpoints
``client <-> server``); weight bytes *read per decode step* are
recorded under ``serve:weights`` with ``dst="flops"`` -- palette-path
layers charge their deployable layout bytes (lut + packed indices),
dense-path layers (including breaker-tripped ones) their 16-bit weight
bytes, so compressed and uncompressed scenarios are comparable at a
glance.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field

from repro.core.compressor import ClusteredLinear
from repro.core.faults import RobustnessWarning, WatchdogTimeout
from repro.llm.tokenizer import WordTokenizer
from repro.memory.traffic import TrafficLedger, global_ledger
from repro.nn import Transformer
from repro.serving.batcher import ContinuousBatcher, SequenceState
from repro.serving.breaker import BreakerBoard, BreakerSnapshot
from repro.serving.config import ServingConfig, get_default_serving_config
from repro.serving.faults import (
    CorruptTileError,
    PaletteKernelError,
    ServingFaultInjector,
    TransientStepError,
)
from repro.serving.palette import TileCache
from repro.serving.queue import (
    AdmissionError,
    RequestQueue,
    ServerClosed,
    ServerRequest,
    StepFailed,
)
from repro.serving.stats import (
    DEGRADE_TAG,
    RequestRecord,
    ServerStats,
    StatsReport,
    request_tag,
)
from repro.tensor.device import Device

WEIGHT_TAG = "serve:weights"
"""Ledger tag of per-step weight-read records (``dst="flops"``)."""


class _StaleGeneration(Exception):
    """Internal: this scheduler loop's generation was revoked.

    Raised by :meth:`LoopSupervisor.check` inside a zombie loop (one the
    watchdog killed while it was wedged mid-step).  The loop unwinds
    without touching the server again; a fresh generation owns it now.
    """


@dataclass(frozen=True)
class ServerHealth:
    """Point-in-time server health (the :meth:`PaletteServer.health` shape).

    ``accepting`` is the admission verdict: the server is running, not
    draining, and its loop is not dead.  ``stalled`` means the current
    decode step has already overrun ``step_timeout_s`` but the watchdog
    has not yet revoked the loop -- :meth:`PaletteServer.submit` sheds
    load during that window instead of queueing behind a wedge.
    """

    running: bool
    accepting: bool
    draining: bool
    dead: bool
    stalled: bool
    generation: int
    loop_alive: bool
    respawns: int
    queue_depth: int
    active_requests: int
    last_step_age_s: float | None
    step_in_flight_s: float | None
    breakers: dict[str, BreakerSnapshot] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (breakers flattened to dicts)."""
        payload = {
            "running": self.running,
            "accepting": self.accepting,
            "draining": self.draining,
            "dead": self.dead,
            "stalled": self.stalled,
            "generation": self.generation,
            "loop_alive": self.loop_alive,
            "respawns": self.respawns,
            "queue_depth": self.queue_depth,
            "active_requests": self.active_requests,
            "last_step_age_s": self.last_step_age_s,
            "step_in_flight_s": self.step_in_flight_s,
            "breakers": {
                name: snap.to_dict() for name, snap in self.breakers.items()
            },
        }
        return payload


class LoopSupervisor:
    """Cross-thread source of truth for the scheduler loop's lifecycle.

    Tracks the loop *generation* (bumped on every watchdog revocation),
    whether a loop is alive, when the in-flight step started, and the
    drain/dead flags.  The scheduler thread calls :meth:`check` after
    every sleep and before touching shared state; once its generation is
    stale the call raises :class:`_StaleGeneration` and the zombie
    unwinds.  The watchdog and :meth:`PaletteServer.stop` are the only
    writers besides the loop itself.  ``_``-prefixed helpers expect the
    caller to hold the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._generation = 0
        self._loop_alive = False
        self._respawns = 0
        self._draining = False
        self._dead = False
        self._step_started_at: float | None = None
        self._last_step_at: float | None = None
        self._batcher: ContinuousBatcher | None = None

    # -- loop side ------------------------------------------------------

    def begin_generation(
        self, batcher: ContinuousBatcher, count_respawn: bool = False
    ) -> int:
        """Register a new loop generation (about to start); returns it."""
        with self._lock:
            self._generation += 1
            self._loop_alive = True
            self._step_started_at = None
            self._batcher = batcher
            if count_respawn:
                self._respawns += 1
            return self._generation

    def check(self, generation: int) -> None:
        """Raise :class:`_StaleGeneration` unless ``generation`` is current."""
        with self._lock:
            if generation != self._generation:
                raise _StaleGeneration(
                    f"loop generation {generation} was revoked "
                    f"(current is {self._generation})"
                )

    def note_step_start(self, generation: int, now: float) -> None:
        """Stamp the in-flight step's start (the watchdog's deadline base)."""
        with self._lock:
            if generation == self._generation:
                self._step_started_at = now

    def note_step_end(self, generation: int, now: float) -> None:
        """Clear the in-flight stamp; remember when a step last finished."""
        with self._lock:
            if generation == self._generation:
                self._step_started_at = None
                self._last_step_at = now

    def note_loop_exit(self, generation: int) -> None:
        """The loop thread is returning (cleanly or revoked)."""
        with self._lock:
            if generation == self._generation:
                self._loop_alive = False
                self._step_started_at = None

    # -- watchdog / stop side -------------------------------------------

    def revoke_hung(
        self, timeout_s: float, now: float
    ) -> "tuple[int, ContinuousBatcher | None] | None":
        """Revoke the current generation if its step overran ``timeout_s``.

        Returns ``(revoked_generation, its_batcher)`` when a hang was
        declared, else ``None``.  The revoked loop's next
        :meth:`check` raises and it unwinds as a zombie.
        """
        with self._lock:
            if not self._loop_alive or self._step_started_at is None:
                return None
            if now - self._step_started_at <= timeout_s:
                return None
            revoked = self._generation
            batcher = self._batcher
            self._generation += 1
            self._loop_alive = False
            self._step_started_at = None
            self._batcher = None
            return revoked, batcher

    def revoke_current(self) -> None:
        """Unconditionally zombify whatever loop is running (stop escalation)."""
        with self._lock:
            self._generation += 1
            self._loop_alive = False
            self._step_started_at = None
            self._batcher = None

    def start_draining(self) -> None:
        """Close admission; the loop exits once queue and batch are empty."""
        with self._lock:
            self._draining = True

    def mark_dead(self) -> None:
        """The respawn budget is spent; no loop will serve again."""
        with self._lock:
            self._dead = True
            self._loop_alive = False

    # -- observers ------------------------------------------------------

    def is_draining(self) -> bool:
        """Whether admission is closed pending a graceful shutdown."""
        with self._lock:
            return self._draining

    def is_dead(self) -> bool:
        """Whether the respawn budget is spent (no loop will serve again)."""
        with self._lock:
            return self._dead

    def respawns_used(self) -> int:
        """Watchdog respawns consumed so far."""
        with self._lock:
            return self._respawns

    def snapshot(self, now: float) -> dict:
        """Raw liveness numbers for :meth:`PaletteServer.health`."""
        with self._lock:
            return {
                "generation": self._generation,
                "loop_alive": self._loop_alive,
                "respawns": self._respawns,
                "draining": self._draining,
                "dead": self._dead,
                "last_step_age_s": (
                    None
                    if self._last_step_at is None
                    else now - self._last_step_at
                ),
                "step_in_flight_s": (
                    None
                    if self._step_started_at is None
                    else now - self._step_started_at
                ),
            }


class PaletteServer:
    """Concurrent generation server over a (possibly compressed) model.

    The model is switched to eval mode on construction; when
    ``config.eval_path == "palette"`` every :class:`ClusteredLinear` in
    it is routed through the palette executor with one shared
    :class:`TileCache` budgeted by ``config.tile_cache_bytes_limit``.
    Use as a context manager, or pair :meth:`start` with :meth:`close`.
    """

    def __init__(
        self,
        model: Transformer,
        tokenizer: WordTokenizer,
        config: ServingConfig | None = None,
        device: Device | None = None,
        ledger: TrafficLedger | None = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or get_default_serving_config()
        self.device = device
        self.ledger = ledger if ledger is not None else global_ledger()
        self.stats_acc = ServerStats()
        self.queue = RequestQueue(self.config.max_queue_depth)
        self.tile_cache = TileCache(
            self.config.tile_cache_bytes_limit,
            digest_checks=self.config.tile_digest_checks,
        )
        self.supervisor = LoopSupervisor()
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            probation_steps=self.config.breaker_probation_steps,
        )
        self.fault_injector = ServingFaultInjector.from_plan(
            self.config.fault_plan
        )
        self.batcher = self._make_batcher()
        self._palette_layers: list[tuple[str, ClusteredLinear]] = []
        self._thread: threading.Thread | None = None
        self._watchdog: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at: float | None = None
        self._stopped_at: float | None = None
        model.eval()
        if self.config.eval_path == "palette":
            self._install_palette()
        if self.fault_injector is not None:
            self.fault_injector.arm([name for name, _ in self._palette_layers])
        # Clustered layers on the dense eval path *from construction*
        # charge their full 16-bit weight per step; the total is fixed,
        # so compute it once.  Breaker-tripped palette layers are charged
        # dynamically in _record_step_weights (they flip back).
        self._dense_weight_bytes = sum(
            2 * module.inner.weight.numel
            for _, module in model.named_modules()
            if isinstance(module, ClusteredLinear)
            and module.eval_path == "dense"
        )

    # ------------------------------------------------------------------
    # Palette installation
    # ------------------------------------------------------------------

    def _make_batcher(self) -> ContinuousBatcher:
        return ContinuousBatcher(
            self.model,
            self.tokenizer,
            self.config,
            device=self.device,
            stats=self.stats_acc,
            on_retire=self._on_retire,
        )

    def _fault_hook(self):
        if self.fault_injector is None:
            return None
        return self.fault_injector.maybe_kernel_error

    def _enable_layer_palette(self, name: str, module: ClusteredLinear) -> None:
        module.enable_palette_eval(
            name=name,
            tile_rows=self.config.palette_tile_rows,
            cache=self.tile_cache,
            fault_hook=self._fault_hook(),
        )

    def _install_palette(self) -> None:
        for name, module in self.model.named_modules():
            if isinstance(module, ClusteredLinear):
                self._enable_layer_palette(name, module)
                self._palette_layers.append((name, module))

    def _uninstall_palette(self) -> None:
        for _, module in self._palette_layers:
            module.disable_palette_eval()
        self._palette_layers = []

    def _module_for(self, layer: str) -> ClusteredLinear | None:
        for name, module in self._palette_layers:
            if name == layer:
                return module
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the scheduler thread is alive and accepting work."""
        return (
            self._thread is not None
            and self._thread.is_alive()
            and not self.supervisor.is_dead()
        )

    def start(self) -> "PaletteServer":
        """Start the scheduler thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        self.stats_acc.started_at = self._started_at
        self._spawn_loop(count_respawn=False)
        if self.config.step_timeout_s is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="palette-server-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        return self

    def _spawn_loop(self, count_respawn: bool) -> None:
        batcher = self._make_batcher()
        self.batcher = batcher
        generation = self.supervisor.begin_generation(
            batcher, count_respawn=count_respawn
        )
        thread = threading.Thread(
            target=self._scheduler_loop,
            args=(generation, batcher),
            name=f"palette-server-gen{generation}",
            daemon=True,
        )
        self._thread = thread
        thread.start()

    def stop(self, drain: bool = False) -> None:
        """Stop the scheduler; fail queued and in-flight requests.

        With ``drain=True`` admission closes first and the loop is given
        ``config.drain_timeout_s`` to finish queued and in-flight work
        before the hard stop.  The hard stop joins the scheduler thread
        with ``config.join_timeout_s`` and *escalates* on overrun --
        emits a :class:`RobustnessWarning`, revokes the loop generation
        (zombifying the stuck thread), and fails whatever is still in
        flight -- instead of deadlocking the caller.
        """
        if self._thread is None:
            return
        if drain and not self.supervisor.is_dead():
            self.supervisor.start_draining()
            deadline = time.monotonic() + self.config.drain_timeout_s
            while time.monotonic() < deadline:
                thread = self._thread
                if thread is None or not thread.is_alive():
                    break
                thread.join(timeout=0.01)
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=self.config.join_timeout_s)
            if thread.is_alive():
                warnings.warn(
                    "scheduler thread did not exit within join_timeout_s="
                    f"{self.config.join_timeout_s}; revoking its generation "
                    "and failing in-flight requests",
                    RobustnessWarning,
                    stacklevel=2,
                )
                self.supervisor.revoke_current()
        self._thread = None
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout=self.config.join_timeout_s)
            self._watchdog = None
        self._stopped_at = time.monotonic()
        self.stats_acc.stopped_at = self._stopped_at
        closed = ServerClosed("server stopped before completing this request")
        for request in self.queue.drain(closed):
            self.stats_acc.note_finished(RequestRecord.from_request(request, 0))
        self._fail_active(self.batcher, closed)

    def close(self) -> None:
        """Stop the server and restore the dense eval path."""
        self.stop()
        self._uninstall_palette()

    def __enter__(self) -> "PaletteServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def health(self) -> ServerHealth:
        """Liveness snapshot: loop generation, queue depth, breakers.

        Cheap enough to call per-submit; :meth:`submit` uses it to shed
        load (``stalled``) and refuse dead or draining servers.
        """
        now = time.monotonic()
        snap = self.supervisor.snapshot(now)
        thread = self._thread
        running = (
            thread is not None and thread.is_alive() and not snap["dead"]
        )
        in_flight = snap["step_in_flight_s"]
        stalled = (
            self.config.step_timeout_s is not None
            and in_flight is not None
            and in_flight > self.config.step_timeout_s
        )
        return ServerHealth(
            running=running,
            accepting=running and not snap["draining"] and not snap["dead"],
            draining=snap["draining"],
            dead=snap["dead"],
            stalled=stalled,
            generation=snap["generation"],
            loop_alive=snap["loop_alive"],
            respawns=snap["respawns"],
            queue_depth=len(self.queue),
            active_requests=len(self.batcher.active),
            last_step_age_s=snap["last_step_age_s"],
            step_in_flight_s=in_flight,
            breakers=self.breakers.states(),
        )

    def submit(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
    ) -> ServerRequest:
        """Enqueue ``prompt``; returns the request future immediately.

        Raises :class:`AdmissionError` when the queue is at
        ``max_queue_depth`` *or* the current decode step has overrun the
        watchdog deadline (shedding load behind a wedge), and
        :class:`ServerClosed` when the server is not running, draining,
        or its scheduler loop is dead.  ``deadline_s`` (or the config
        default) is measured from *submission* and covers queue wait
        plus decoding.
        """
        health = self.health()
        if not health.running:
            raise ServerClosed("submit() on a server that is not running")
        if health.dead:
            raise ServerClosed(
                "submit() on a server whose scheduler loop is dead "
                "(respawn budget exhausted)"
            )
        if health.draining:
            raise ServerClosed("submit() on a draining server")
        if health.stalled:
            self.stats_acc.note_rejected_admission()
            raise AdmissionError(
                "decode step overran step_timeout_s and the loop is not yet "
                "respawned; shedding load"
            )
        now = time.monotonic()
        budget = deadline_s if deadline_s is not None else self.config.default_deadline_s
        request = ServerRequest(
            prompt,
            max_new_tokens=max_new_tokens or self.config.max_new_tokens,
            deadline=None if budget is None else now + budget,
            now=now,
        )
        try:
            self.queue.submit(request)
        except AdmissionError:
            self.stats_acc.note_rejected_admission()
            raise
        self.stats_acc.note_submitted()
        self.ledger.record(
            "client",
            "server",
            len(prompt.encode("utf-8")),
            tag=request_tag(request.id),
        )
        return request

    def generate(
        self,
        prompt: str,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        timeout: float | None = 60.0,
    ) -> str:
        """Submit ``prompt`` and block for its completion text."""
        return self.submit(
            prompt, max_new_tokens=max_new_tokens, deadline_s=deadline_s
        ).result(timeout)

    def stats(self) -> StatsReport:
        """The aggregate report over the server's running window so far."""
        if self._started_at is None:
            wall = 0.0
        else:
            end = self._stopped_at if self._stopped_at is not None else time.monotonic()
            wall = end - self._started_at
        return self.stats_acc.report(wall, ledger=self.ledger)

    # ------------------------------------------------------------------
    # Scheduler (one thread per loop generation)
    # ------------------------------------------------------------------

    def _scheduler_loop(
        self, generation: int, batcher: ContinuousBatcher
    ) -> None:
        """One loop generation.  ``batcher`` is generation-local: a
        revoked (zombie) loop must never touch ``self.batcher``, which a
        fresh generation may own by the time the zombie wakes up.
        """
        try:
            while not self._stop.is_set():
                self.supervisor.check(generation)
                now = time.monotonic()
                free = batcher.free_slots
                if free > 0:
                    admitted, expired = self.queue.take(free, now)
                    if expired:
                        self.stats_acc.note_rejected_deadline(len(expired))
                        for request in expired:
                            self.stats_acc.note_finished(
                                RequestRecord.from_request(request, 0)
                            )
                    for request in admitted:
                        self._admit_one(batcher, request, now)
                if batcher.active:
                    self._run_step(generation, batcher)
                elif self.supervisor.is_draining() and len(self.queue) == 0:
                    return  # drained: nothing in flight, nothing queued
                else:
                    self.queue.wait_nonempty(self.config.poll_interval_s)
        except _StaleGeneration:
            return  # revoked by the watchdog; a fresh loop owns the server
        finally:
            self.supervisor.note_loop_exit(generation)

    def _admit_one(
        self,
        batcher: ContinuousBatcher,
        request: ServerRequest,
        now: float,
    ) -> None:
        """Admit one request; a bad prompt fails only that request."""
        try:
            batcher.admit(request, now)
        except Exception as exc:  # noqa: BLE001 - crash boundary
            if request.fail(
                StepFailed(f"admission failed: {exc}", cause=exc), now=now
            ):
                self.stats_acc.note_finished(
                    RequestRecord.from_request(request, 0)
                )

    def _run_step(self, generation: int, batcher: ContinuousBatcher) -> None:
        """One supervised decode step: the crash boundary.

        Exception taxonomy (see :mod:`repro.serving.faults`):
        transient errors retry in place with backoff up to
        ``max_step_retries``; palette-kernel and corrupt-tile errors
        charge the layer's breaker and retry immediately (structurally
        bounded -- at the threshold the layer trips to dense and the
        failing path stops executing; a corrupt tile was already dropped
        by the digest check); anything else fails the batch with
        :class:`StepFailed`.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.begin_step()
        self.supervisor.note_step_start(generation, time.monotonic())
        transient_attempts = 0
        try:
            while True:
                self.supervisor.check(generation)
                try:
                    self._apply_step_faults(generation, injector)
                    before = self._weight_block_snapshot()
                    batcher.step(time.monotonic())
                    # A zombie waking from a genuine in-step hang must not
                    # ledger bytes or advance breaker probation.
                    self.supervisor.check(generation)
                    self._record_step_weights(before)
                    self._note_clean_step()
                    return
                except _StaleGeneration:
                    raise
                except TransientStepError as exc:
                    transient_attempts += 1
                    if transient_attempts > self.config.max_step_retries:
                        self._fail_batch(batcher, exc)
                        return
                    self.stats_acc.note_step_retry()
                    self._sleep_checked(
                        generation,
                        transient_attempts * self.config.step_retry_backoff_s,
                    )
                except (PaletteKernelError, CorruptTileError) as exc:
                    self.stats_acc.note_step_retry()
                    self._charge_breaker(exc.layer, exc)
                except Exception as exc:  # noqa: BLE001 - crash boundary
                    self._fail_batch(batcher, exc)
                    return
        finally:
            self.supervisor.note_step_end(generation, time.monotonic())

    def _apply_step_faults(
        self, generation: int, injector: ServingFaultInjector | None
    ) -> None:
        """Fire armed step-scoped faults for this step (and its retries)."""
        if injector is None:
            return
        injector.maybe_corrupt_tiles(self.tile_cache)
        seconds = injector.step_sleep()
        if seconds > 0:
            self._sleep_checked(generation, seconds)
        injector.maybe_transient()

    def _sleep_checked(self, generation: int, seconds: float) -> None:
        """Sleep in small slices, aborting the moment this loop is revoked.

        This is how a watchdog "kills" a hung step: Python threads
        cannot be interrupted, so the revoked loop discovers its own
        death at the next slice boundary and unwinds as a zombie.
        """
        deadline = time.monotonic() + seconds
        while True:
            self.supervisor.check(generation)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.01))

    def _fail_batch(
        self, batcher: ContinuousBatcher, cause: BaseException
    ) -> None:
        """Crash boundary: fail this batch's futures, keep the loop alive."""
        self.stats_acc.note_step_failure()
        batcher.abort_all(
            StepFailed(f"decode step failed: {cause}", cause=cause)
        )

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------

    def _charge_breaker(self, layer: str, cause: BaseException) -> None:
        action = self.breakers.note_failure(layer)
        if action in ("trip", "retrip"):
            self._trip_layer(layer, action, cause)

    def _trip_layer(
        self, layer: str, action: str, cause: BaseException
    ) -> None:
        """Flip ``layer`` to the dense eval path (bit-identical output)."""
        module = self._module_for(layer)
        if module is None:
            return
        dense_bytes = 2 * module.inner.weight.numel
        module.disable_palette_eval()
        self.stats_acc.note_breaker_trip()
        self.ledger.record(
            "server",
            "audit",
            dense_bytes,
            tag=DEGRADE_TAG,
        )
        warnings.warn(
            f"palette path for layer {layer!r} tripped to dense "
            f"({action}: {type(cause).__name__}); output is bit-identical, "
            "bandwidth is not",
            RobustnessWarning,
            stacklevel=3,
        )

    def _note_clean_step(self) -> None:
        """Breaker bookkeeping after a fault-free step (re-promotions)."""
        for layer in self.breakers.note_clean_step():
            module = self._module_for(layer)
            if module is None:
                continue
            self._enable_layer_palette(layer, module)
            self.stats_acc.note_breaker_repromotion()
            self.ledger.record("server", "audit", 0, tag=DEGRADE_TAG)

    # ------------------------------------------------------------------
    # Watchdog (sidecar thread)
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        timeout = self.config.step_timeout_s
        assert timeout is not None
        interval = max(0.002, min(timeout / 4, 0.05))
        while not self._stop.is_set():
            hung = self.supervisor.revoke_hung(timeout, time.monotonic())
            if hung is not None:
                _, batcher = hung
                self._handle_hang(batcher)
            self._stop.wait(interval)

    def _handle_hang(self, batcher: ContinuousBatcher | None) -> None:
        """A step overran its deadline: fail its batch, respawn or die."""
        self.stats_acc.note_watchdog_kill()
        error = StepFailed(
            "decode step exceeded "
            f"step_timeout_s={self.config.step_timeout_s}; loop revoked",
            cause=WatchdogTimeout("serving step watchdog fired"),
        )
        if (
            self._stop.is_set()
            or self.supervisor.respawns_used() >= self.config.max_loop_respawns
        ):
            self.supervisor.mark_dead()
            if batcher is not None:
                self._fail_active(batcher, error)
            closed = ServerClosed(
                "scheduler loop dead: watchdog respawn budget exhausted"
            )
            for request in self.queue.drain(closed):
                self.stats_acc.note_finished(
                    RequestRecord.from_request(request, 0)
                )
            return
        self.stats_acc.note_loop_respawn()
        warnings.warn(
            "scheduler loop revoked by the step watchdog; respawning "
            f"({self.supervisor.respawns_used() + 1}/"
            f"{self.config.max_loop_respawns})",
            RobustnessWarning,
            stacklevel=2,
        )
        self._spawn_loop(count_respawn=True)
        # Fail the orphaned futures only after the fresh loop is
        # installed: a client that wakes on StepFailed and immediately
        # resubmits must never observe the gap between the zombie
        # exiting and the respawn (running would read False).
        if batcher is not None:
            self._fail_active(batcher, error)

    def _fail_active(
        self, batcher: ContinuousBatcher, error: BaseException
    ) -> None:
        """Fail a batcher's in-flight futures without mutating its state.

        Used from *other* threads (watchdog, :meth:`stop` escalation)
        while the owning loop may still be wedged mid-step: resolution
        is idempotent, so whichever side lands first wins, and the
        zombie's late writes go nowhere.
        """
        for seq in list(batcher.active):
            if seq.request.fail(error):
                self.stats_acc.note_finished(
                    RequestRecord.from_request(seq.request, seq.prompt_tokens)
                )

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------

    def _on_retire(self, seq: SequenceState) -> None:
        """Ledger the completion bytes of a retired sequence."""
        text = "" if seq.request.error is not None else self.tokenizer.decode(
            seq.generated
        )
        self.ledger.record(
            "server",
            "client",
            len(text.encode("utf-8")),
            tag=request_tag(seq.request.id),
        )

    def _weight_block_snapshot(self) -> dict[str, tuple[int, int]]:
        """Per-layer (palette_row_blocks, dense_row_blocks) counters now."""
        snapshot: dict[str, tuple[int, int]] = {}
        for name, module in self._palette_layers:
            exec_ = module.palette_exec
            if exec_ is not None:
                snapshot[name] = (
                    exec_.stats.palette_row_blocks,
                    exec_.stats.dense_row_blocks,
                )
        return snapshot

    def _record_step_weights(self, before: dict[str, tuple[int, int]]) -> None:
        """Ledger the weight bytes one decode step read.

        Palette blocks charge their share of the deployable layout (lut +
        packed indices); dense blocks charge the dequantized tile bytes.
        Layers on the dense eval path -- from construction or because
        their breaker tripped -- charge their full 16-bit weight each
        step.
        """
        nbytes = 0
        for name, module in self._palette_layers:
            if module.eval_path == "dense":  # breaker-tripped
                nbytes += 2 * module.inner.weight.numel
                continue
            exec_ = module.palette_exec
            if exec_ is None:
                continue
            layout = exec_.layout
            n_blocks = -(-layout.out_features // exec_.tile_rows)
            pal_before, dense_before = before.get(name, (0, 0))
            pal_blocks = exec_.stats.palette_row_blocks - pal_before
            dense_blocks = exec_.stats.dense_row_blocks - dense_before
            nbytes += pal_blocks * (layout.nbytes // max(1, n_blocks))
            nbytes += dense_blocks * exec_.tile_rows * layout.in_features * 4
        nbytes += self._dense_weight_bytes
        if nbytes:
            self.ledger.record("weights", "flops", nbytes, tag=WEIGHT_TAG)
