"""Continuous batching: requests join and leave the decode batch per step.

:class:`ContinuousBatcher` owns the set of in-flight sequences.  Each
:meth:`ContinuousBatcher.step` aborts rows past their deadline, runs one
length-bucketed forward over the survivors
(:func:`repro.llm.generate.batched_last_logits`), appends one token per
row, and retires rows that hit EOS or their token budget -- freeing
their slots for the next :meth:`ContinuousBatcher.admit` without
stalling the rest of the batch.  Because decoding is bucketed rather
than padded, every row's token stream is bit-identical to a
single-prompt :func:`repro.llm.generate.generate` call regardless of
what other requests share its batch.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.llm.generate import _pick_next, batched_last_logits
from repro.llm.tokenizer import WordTokenizer
from repro.nn import Transformer
from repro.serving.config import ServingConfig
from repro.serving.queue import DeadlineExceeded, ServerRequest
from repro.serving.stats import RequestRecord, ServerStats
from repro.tensor.device import Device
from repro.tensor.random import default_rng


class SequenceState:
    """One admitted request's decode-loop state."""

    def __init__(
        self,
        request: ServerRequest,
        prompt_ids: list[int],
        budget: int,
        rng: np.random.Generator,
    ) -> None:
        self.request = request
        self.prompt_tokens = len(prompt_ids)
        self.ids = list(prompt_ids)
        self.generated: list[int] = []
        self.budget = budget
        self.rng = rng


class ContinuousBatcher:
    """Decode-step engine over at most ``config.max_batch_size`` sequences."""

    def __init__(
        self,
        model: Transformer,
        tokenizer: WordTokenizer,
        config: ServingConfig,
        device: Device | None = None,
        stats: ServerStats | None = None,
        on_retire: Callable[[SequenceState], None] | None = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.device = device or model.embed.weight.device
        self.stats = stats if stats is not None else ServerStats()
        self.on_retire = on_retire
        self.active: list[SequenceState] = []

    @property
    def free_slots(self) -> int:
        """Batch slots available for :meth:`admit` right now."""
        return self.config.max_batch_size - len(self.active)

    def admit(self, request: ServerRequest, now: float) -> None:
        """Add ``request`` to the running batch (a slot must be free)."""
        if self.free_slots <= 0:
            raise RuntimeError("admit() with no free batch slot")
        request.scheduled_at = now
        budget = request.max_new_tokens or self.config.max_new_tokens
        self.active.append(
            SequenceState(
                request,
                prompt_ids=self.tokenizer.encode(request.prompt, bos=True),
                budget=budget,
                rng=default_rng(0),
            )
        )

    def step(self, now: float) -> int:
        """Run one decode step over the active batch.

        Returns the number of requests retired this step (completed,
        or aborted by their deadline).  A no-op returning 0 when the
        batch is empty.
        """
        if not self.active:
            return 0
        retired = 0
        survivors: list[SequenceState] = []
        for seq in self.active:
            if seq.request.expired(now):
                self._abort_deadline(seq, now)
                retired += 1
            else:
                survivors.append(seq)
        self.active = survivors
        if not self.active:
            return retired
        windows = [seq.ids[-self.model.max_seq_len :] for seq in self.active]
        lasts = batched_last_logits(self.model, windows, device=self.device)
        self.stats.note_step(len(self.active))
        survivors = []
        for seq, last in zip(self.active, lasts):
            next_id = _pick_next(last, self.config.temperature, seq.rng)
            if next_id == self.tokenizer.eos_id:
                self._finish(seq)
                retired += 1
                continue
            seq.ids.append(next_id)
            seq.generated.append(next_id)
            seq.request.tokens_generated = len(seq.generated)
            if len(seq.generated) >= seq.budget:
                self._finish(seq)
                retired += 1
                continue
            survivors.append(seq)
        self.active = survivors
        return retired

    def abort_all(self, error: BaseException) -> int:
        """Fail every in-flight sequence (server shutdown); returns count.

        Only sequences whose request this call actually resolved are
        counted and recorded -- a request already failed by the step
        watchdog (idempotent futures, first resolution wins) is skipped.
        """
        aborted = 0
        for seq in self.active:
            if seq.request.fail(error):
                self.stats.note_finished(
                    RequestRecord.from_request(seq.request, seq.prompt_tokens)
                )
                aborted += 1
        self.active = []
        return aborted

    def _finish(self, seq: SequenceState) -> None:
        if not seq.request.complete(self.tokenizer.decode(seq.generated)):
            return  # already resolved elsewhere (watchdog); nothing to record
        self.stats.note_finished(
            RequestRecord.from_request(seq.request, seq.prompt_tokens)
        )
        if self.on_retire is not None:
            self.on_retire(seq)

    def _abort_deadline(self, seq: SequenceState, now: float) -> None:
        resolved = seq.request.fail(
            DeadlineExceeded(
                f"request {seq.request.id} missed its deadline mid-decode"
            ),
            now=now,
        )
        if not resolved:
            return
        self.stats.note_aborted_deadline()
        self.stats.note_finished(
            RequestRecord.from_request(seq.request, seq.prompt_tokens)
        )
        if self.on_retire is not None:
            self.on_retire(seq)
