"""Serving-engine configuration (the neural-compressor config idiom).

One keyword-only, validated dataclass plus a ``get_default_serving_config``
constructor, mirroring the ``RTNConfig`` / ``get_default_rtn_config`` shape
of Intel Neural Compressor's quantization front-end.  Every field is a
primitive, so a config round-trips exactly through
:meth:`ServingConfig.to_dict` / :meth:`ServingConfig.from_dict` -- the form
checkpoint manifests and CI benchmark artifacts embed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

EVAL_PATHS = ("palette", "dense")
"""Eval-mode execution paths for compressed layers: ``"palette"`` runs the
k-entry palette matmul (with the hot dequantized-tile LRU in front),
``"dense"`` reconstructs the full hard-assigned weight and runs the
ordinary gemm."""


@dataclass(kw_only=True)
class ServingConfig:
    """Knobs of the palette-aware inference server.

    Attributes:
        max_batch_size: upper bound on sequences decoded together in one
            continuous-batching step.  New requests join the running batch
            between steps whenever a slot is free.
        max_queue_depth: admission-control bound on *waiting* requests.
            A submit against a full queue is rejected immediately with
            :class:`~repro.serving.queue.AdmissionError` instead of
            growing an unbounded backlog.
        max_new_tokens: per-request generation budget used when a request
            does not carry its own.
        default_deadline_s: seconds after submission by which a request
            must have *completed*; requests past their deadline are
            rejected at schedule time (and aborted between decode steps)
            with :class:`~repro.serving.queue.DeadlineExceeded`.  ``None``
            (default) disables deadlines for requests that do not set one.
        eval_path: how eval-mode ``ClusteredLinear`` layers execute their
            matmul, one of :data:`EVAL_PATHS`.  ``"palette"`` (default)
            computes against the ``k``-entry palette -- multiplies scale
            with ``k``, not with dense out-features -- and fronts it with
            the dequantized-tile LRU; ``"dense"`` materializes the full
            hard-assigned weight (the pre-serving behavior).
        palette_tile_rows: output rows per dequantized tile -- the unit
            the tile LRU caches and the palette kernel processes.
        tile_cache_bytes_limit: soft cap on bytes of dequantized tiles
            resident across all served layers, governed exactly like
            ``CompressorConfig.worker_cache_bytes_limit``: least recently
            used tiles are evicted down to the budget and their rows fall
            back to the palette kernel.  ``0`` (default) means unlimited.
        temperature: sampling temperature for generation; ``0`` (default)
            is greedy decoding, which is what the bit-identity gates
            compare.
        poll_interval_s: how long the scheduler thread sleeps waiting for
            work when the queue is empty and no sequence is active.
    """

    max_batch_size: int = 8
    max_queue_depth: int = 64
    max_new_tokens: int = 16
    default_deadline_s: float | None = None
    eval_path: str = "palette"
    palette_tile_rows: int = 32
    tile_cache_bytes_limit: int = 0
    temperature: float = 0.0
    poll_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {self.max_new_tokens}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                "default_deadline_s must be positive or None, "
                f"got {self.default_deadline_s}"
            )
        if self.eval_path not in EVAL_PATHS:
            raise ValueError(
                f"unknown eval_path {self.eval_path!r}; expected one of {EVAL_PATHS}"
            )
        if self.palette_tile_rows < 1:
            raise ValueError(
                f"palette_tile_rows must be >= 1, got {self.palette_tile_rows}"
            )
        if self.tile_cache_bytes_limit < 0:
            raise ValueError(
                "tile_cache_bytes_limit must be >= 0 (0 = unlimited), "
                f"got {self.tile_cache_bytes_limit}"
            )
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )

    def to_dict(self) -> dict:
        """A plain-primitive dict that :meth:`from_dict` rebuilds exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ServingConfig":
        """Reconstruct a validated config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` (a misspelled knob in a
        checkpoint or CI manifest must fail loudly, not silently fall back
        to a default).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ServingConfig keys: {unknown}")
        return cls(**payload)


def get_default_serving_config(**overrides) -> ServingConfig:
    """A fresh :class:`ServingConfig`, with any field overridden by keyword.

    The neural-compressor constructor idiom: callers that only touch one
    knob write ``get_default_serving_config(max_batch_size=16)`` and still
    get full validation of the combination.
    """
    return ServingConfig(**overrides)
