"""Serving-engine configuration (the neural-compressor config idiom).

One keyword-only, validated dataclass plus a ``get_default_serving_config``
constructor, mirroring the ``RTNConfig`` / ``get_default_rtn_config`` shape
of Intel Neural Compressor's quantization front-end.  Every field is a
primitive, so a config round-trips exactly through
:meth:`ServingConfig.to_dict` / :meth:`ServingConfig.from_dict` -- the form
checkpoint manifests and CI benchmark artifacts embed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.faults import ServingFaultPlan

EVAL_PATHS = ("palette", "dense")
"""Eval-mode execution paths for compressed layers: ``"palette"`` runs the
k-entry palette matmul (with the hot dequantized-tile LRU in front),
``"dense"`` reconstructs the full hard-assigned weight and runs the
ordinary gemm."""


@dataclass(kw_only=True)
class ServingConfig:
    """Knobs of the palette-aware inference server.

    Attributes:
        max_batch_size: upper bound on sequences decoded together in one
            continuous-batching step.  New requests join the running batch
            between steps whenever a slot is free.
        max_queue_depth: admission-control bound on *waiting* requests.
            A submit against a full queue is rejected immediately with
            :class:`~repro.serving.queue.AdmissionError` instead of
            growing an unbounded backlog.
        max_new_tokens: per-request generation budget used when a request
            does not carry its own.
        default_deadline_s: seconds after submission by which a request
            must have *completed*; requests past their deadline are
            rejected at schedule time (and aborted between decode steps)
            with :class:`~repro.serving.queue.DeadlineExceeded`.  ``None``
            (default) disables deadlines for requests that do not set one.
        eval_path: how eval-mode ``ClusteredLinear`` layers execute their
            matmul, one of :data:`EVAL_PATHS`.  ``"palette"`` (default)
            computes against the ``k``-entry palette -- multiplies scale
            with ``k``, not with dense out-features -- and fronts it with
            the dequantized-tile LRU; ``"dense"`` materializes the full
            hard-assigned weight (the pre-serving behavior).
        palette_tile_rows: output rows per dequantized tile -- the unit
            the tile LRU caches and the palette kernel processes.
        tile_cache_bytes_limit: soft cap on bytes of dequantized tiles
            resident across all served layers, governed exactly like
            ``CompressorConfig.worker_cache_bytes_limit``: least recently
            used tiles are evicted down to the budget and their rows fall
            back to the palette kernel.  ``0`` (default) means unlimited.
        temperature: sampling temperature for generation; ``0`` (default)
            is greedy decoding, which is what the bit-identity gates
            compare.
        poll_interval_s: how long the scheduler thread sleeps waiting for
            work when the queue is empty and no sequence is active.
        step_timeout_s: per-decode-step watchdog deadline.  A step still
            running after this many seconds is declared hung: its batch's
            requests fail with :class:`~repro.serving.queue.StepFailed`,
            the loop generation is revoked (the stuck thread becomes a
            zombie whose late writes are discarded), and a fresh
            scheduler loop is respawned.  ``None`` (default) disables the
            watchdog.
        max_step_retries: bounded retries for a decode step that raised
            :class:`~repro.serving.faults.TransientStepError` before the
            batch is failed with ``StepFailed``.
        step_retry_backoff_s: base sleep between step retries; attempt
            ``n`` waits ``n * step_retry_backoff_s``.
        max_loop_respawns: watchdog kill budget.  After this many loop
            respawns the server stops respawning and fails over to
            rejecting work (dead-loop admission raises
            :class:`~repro.serving.queue.ServerClosed`).
        join_timeout_s: how long :meth:`PaletteServer.stop` waits for the
            scheduler thread to exit before escalating (warn, zombify the
            loop, fail whatever is still in flight) instead of
            deadlocking the caller.
        drain_timeout_s: deadline for ``stop(drain=True)`` to finish
            in-flight and queued work before falling back to a hard stop.
        breaker_threshold: consecutive palette-path failures (kernel
            errors or tile digest mismatches) on one layer before its
            circuit breaker trips that layer to the dense path.
        breaker_probation_steps: fault-free decode steps a tripped layer
            serves dense before the breaker re-enables its palette path
            (doubled on each re-trip, capped at 8x).
        tile_digest_checks: whether the tile LRU stamps and verifies a
            content digest on every cached tile, turning silent
            corruption into a typed
            :class:`~repro.serving.faults.CorruptTileError`.
        fault_plan: a :class:`~repro.serving.faults.ServingFaultPlan`
            arming the server's deterministic fault injector (chaos
            testing).  ``None`` (default) injects nothing.
    """

    max_batch_size: int = 8
    max_queue_depth: int = 64
    max_new_tokens: int = 16
    default_deadline_s: float | None = None
    eval_path: str = "palette"
    palette_tile_rows: int = 32
    tile_cache_bytes_limit: int = 0
    temperature: float = 0.0
    poll_interval_s: float = 0.005
    step_timeout_s: float | None = None
    max_step_retries: int = 2
    step_retry_backoff_s: float = 0.02
    max_loop_respawns: int = 4
    join_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    breaker_threshold: int = 2
    breaker_probation_steps: int = 16
    tile_digest_checks: bool = True
    fault_plan: "ServingFaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {self.max_new_tokens}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                "default_deadline_s must be positive or None, "
                f"got {self.default_deadline_s}"
            )
        if self.eval_path not in EVAL_PATHS:
            raise ValueError(
                f"unknown eval_path {self.eval_path!r}; expected one of {EVAL_PATHS}"
            )
        if self.palette_tile_rows < 1:
            raise ValueError(
                f"palette_tile_rows must be >= 1, got {self.palette_tile_rows}"
            )
        if self.tile_cache_bytes_limit < 0:
            raise ValueError(
                "tile_cache_bytes_limit must be >= 0 (0 = unlimited), "
                f"got {self.tile_cache_bytes_limit}"
            )
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.step_timeout_s is not None and self.step_timeout_s <= 0:
            raise ValueError(
                "step_timeout_s must be positive or None, "
                f"got {self.step_timeout_s}"
            )
        if self.max_step_retries < 0:
            raise ValueError(
                f"max_step_retries must be >= 0, got {self.max_step_retries}"
            )
        if self.step_retry_backoff_s < 0:
            raise ValueError(
                "step_retry_backoff_s must be >= 0, "
                f"got {self.step_retry_backoff_s}"
            )
        if self.max_loop_respawns < 0:
            raise ValueError(
                f"max_loop_respawns must be >= 0, got {self.max_loop_respawns}"
            )
        if self.join_timeout_s <= 0:
            raise ValueError(
                f"join_timeout_s must be positive, got {self.join_timeout_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_probation_steps < 1:
            raise ValueError(
                "breaker_probation_steps must be >= 1, "
                f"got {self.breaker_probation_steps}"
            )
        if self.fault_plan is not None:
            from repro.serving.faults import ServingFaultPlan

            if not isinstance(self.fault_plan, ServingFaultPlan):
                raise ValueError(
                    "fault_plan must be a ServingFaultPlan or None, "
                    f"got {type(self.fault_plan).__name__}"
                )

    def to_dict(self) -> dict:
        """A plain-primitive dict that :meth:`from_dict` rebuilds exactly.

        A config with an armed ``fault_plan`` refuses to serialize --
        the same contract as ``CompressorConfig``: fault plans are
        in-memory chaos-test instruments, not deployment state, and
        silently dropping one would make a persisted artifact claim a
        cleaner run than actually happened.
        """
        if self.fault_plan is not None:
            raise ValueError(
                "ServingConfig with an armed fault_plan cannot be "
                "serialized; disarm it first"
            )
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "fault_plan"
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServingConfig":
        """Reconstruct a validated config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` (a misspelled knob in a
        checkpoint or CI manifest must fail loudly, not silently fall back
        to a default).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ServingConfig keys: {unknown}")
        return cls(**payload)


def get_default_serving_config(**overrides) -> ServingConfig:
    """A fresh :class:`ServingConfig`, with any field overridden by keyword.

    The neural-compressor constructor idiom: callers that only touch one
    knob write ``get_default_serving_config(max_batch_size=16)`` and still
    get full validation of the combination.
    """
    return ServingConfig(**overrides)
