"""Deterministic fault injection for the serving engine (chaos harness).

The serving counterpart of :mod:`repro.core.faults`: the compression
engine's chaos discipline -- seeded plans, an append-only audit log, and
bit-identity gates over every recovery path -- applied to the layer that
actually faces traffic.  A serving process will see a palette kernel
raise on a bad layout, a cached dequantized tile rot in memory, and a
decode step wedge or stall long before it sees a clean crash; the
supervised scheduler in :mod:`repro.serving.server` recovers from all of
them, and this module is the trigger that proves it.

A :class:`ServingFaultPlan` extends the seeded
:class:`~repro.core.faults.FaultPlan` machinery with serving fault
kinds; each :class:`ServingFaultSpec` arms one ``kind`` at a 1-based
decode ``step`` (the ``sweep`` field, aliased :attr:`ServingFaultSpec.
step`).  Layer-scoped kinds (``kernel_error``, ``corrupt_tile``) resolve
``layer=None`` to a deterministic seeded pick over the served palette
layers, exactly like the compression injector resolves over a sweep's
layer list; step-scoped kinds (``hang_step``, ``delay_step``,
``transient_step``) target the scheduler step itself.  Arm a plan via
``ServingConfig.fault_plan``; every injection lands in the shared
:class:`~repro.core.faults.FaultLog` shape that
``benchmarks/bench_serving_faults.py`` reconciles against the recoveries
it observed.

Firing semantics differ from the compression injector in one deliberate
way: a spec fires at the *first opportunity at or after* its step rather
than at that step exactly.  A ``corrupt_tile`` can only poison a tile
that is resident, and a ``kernel_error`` only fires when its layer's
palette kernel actually runs -- "at step >= N" makes such plans
satisfiable without hand-tuning warm-up, while the seeded layer pick
keeps every run identical.

The exception taxonomy the supervisor keys on:

- :class:`TransientStepError` -- a decode-step failure worth retrying in
  place (backoff, same scheduler loop).
- :class:`PaletteKernelError` -- a layer's palette kernel failed; counts
  against that layer's circuit breaker (palette -> dense trip).
- :class:`CorruptTileError` -- a cached dequantized tile failed its
  digest; the poisoned entry is dropped and the failure counts against
  the layer's breaker.
- :class:`StepFailed` (in :mod:`repro.serving.queue`) -- the typed error
  delivered through every future of a batch whose step could not be
  completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.core.faults import (
    FaultEvent,
    FaultLog,
    FaultPlan,
    FaultSpec,
    _seeded_index,
)
from repro.serving.queue import ServingError

SERVING_FAULT_KINDS = (
    "kernel_error",
    "corrupt_tile",
    "hang_step",
    "delay_step",
    "transient_step",
)
"""Injectable serving fault classes: raise from a chosen layer's palette
matmul, poison a digest-checked cached tile, hang a decode step past the
step watchdog, delay it within the watchdog, or raise a retryable
scheduler exception."""

LAYER_FAULT_KINDS = ("kernel_error", "corrupt_tile")
"""The subset of :data:`SERVING_FAULT_KINDS` scoped to one served layer
(``layer=None`` resolves to a seeded pick over the palette layers)."""

STEP_TARGET = "<step>"
"""Resolved target of step-scoped specs -- the scheduler step itself,
not any layer."""

SERVING_FAULT_OP = "decode"
"""The ``op`` recorded on every serving :class:`FaultEvent`."""


class PaletteKernelError(ServingError):
    """A layer's palette matmul kernel failed mid-step.

    Carries the layer name so the supervisor can charge the failure to
    exactly that layer's circuit breaker.  Raised by the fault injector
    to exercise the breaker; real kernel code may raise it for genuine
    layout corruption.
    """

    def __init__(self, layer: str, detail: str = "injected"):
        super().__init__(f"palette kernel failed on layer {layer!r} ({detail})")
        self.layer = layer
        self.detail = detail


class CorruptTileError(ServingError):
    """A cached dequantized tile failed its blake2b digest check.

    Raised by :class:`~repro.serving.palette.TileCache.get` when a
    resident tile's bytes no longer match the digest stamped at ``put``
    time -- bit-rot or the fault injector.  The cache drops the poisoned
    entry before raising, so a retried step re-dequantizes cleanly.
    """

    def __init__(self, layer: str, detail: str = "digest mismatch"):
        super().__init__(f"corrupt cached tile for layer {layer!r}: {detail}")
        self.layer = layer
        self.detail = detail


class TransientStepError(ServingError):
    """A decode-step failure that is expected to succeed on retry."""

    def __init__(self, detail: str = "injected"):
        super().__init__(f"transient decode-step failure ({detail})")
        self.detail = detail


@dataclass(frozen=True)
class ServingFaultSpec(FaultSpec):
    """One armed serving fault: ``kind`` at decode step >= ``step``.

    Reuses the :class:`~repro.core.faults.FaultSpec` fields with serving
    semantics: ``sweep`` is the 1-based decode step the spec arms at
    (exposed as :attr:`step`), ``layer`` pins a layer-scoped kind to one
    served layer (``None`` = seeded pick), ``times`` re-fires on step
    retries, and ``seconds`` sizes ``hang_step``/``delay_step`` naps.
    """

    VALID_KINDS: ClassVar[tuple[str, ...]] = SERVING_FAULT_KINDS

    @property
    def step(self) -> int:
        """The 1-based decode step this spec arms at (alias of ``sweep``)."""
        return self.sweep


@dataclass(frozen=True)
class ServingFaultPlan(FaultPlan):
    """A seedable, deterministic set of :class:`ServingFaultSpec`.

    Attach to ``ServingConfig.fault_plan`` to arm the server's injector.
    ``ServingFaultPlan.single("hang_step", sweep=2, seconds=1.0)`` is the
    common chaos-benchmark shape.
    """

    SPEC_CLASS: ClassVar[type] = ServingFaultSpec


class ServingFaultInjector:
    """Stateful executor of a :class:`ServingFaultPlan` (one per server).

    Driven by the supervised scheduler: :meth:`arm` resolves
    ``layer=None`` specs against the served palette-layer names once,
    :meth:`begin_step` advances the decode-step counter (once per
    scheduler step -- retries of the same step re-query without
    advancing, consuming additional ``times`` exactly like the
    compression injector's retry re-fires), and the ``maybe_*`` probes
    answer "does a fault fire here, now?", consuming and logging on
    fire.  All methods run on the scheduler thread; the injector is
    deliberately lock-free and must not be shared across live loop
    generations (a revoked loop never touches it again -- see the
    stale-generation checks in :mod:`repro.serving.server`).
    """

    def __init__(self, plan: ServingFaultPlan) -> None:
        self.plan = plan
        self.log = FaultLog()
        self._step = 0
        self._fired: dict[int, int] = {}
        self._resolved: dict[int, str] = {}
        self._armed = False

    @classmethod
    def from_plan(
        cls, plan: "ServingFaultPlan | None"
    ) -> "ServingFaultInjector | None":
        """An injector for ``plan``, or ``None`` for a fault-free server."""
        return None if plan is None else cls(plan)

    def arm(self, layer_names: Sequence[str]) -> None:
        """Resolve every spec's target against the served layer list.

        Layer-scoped specs with ``layer=None`` pick deterministically via
        the plan seed; step-scoped specs always target
        :data:`STEP_TARGET`.  Idempotent -- the supervisor re-arms on
        loop respawn without moving any pick.
        """
        if self._armed:
            return
        names = list(layer_names)
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in LAYER_FAULT_KINDS:
                self._resolved[index] = STEP_TARGET
            elif spec.layer is not None:
                self._resolved[index] = spec.layer
            elif names:
                self._resolved[index] = names[
                    _seeded_index(self.plan.seed, index, spec.sweep, len(names))
                ]
        self._armed = True

    def begin_step(self) -> int:
        """Advance to the next decode step; returns the 1-based step."""
        self._step += 1
        return self._step

    @property
    def steps_begun(self) -> int:
        """Decode steps the scheduler has started so far."""
        return self._step

    def _consume(self, index: int, spec: ServingFaultSpec, target: str) -> None:
        self._fired[index] = self._fired.get(index, 0) + 1
        self.log.record(
            FaultEvent(
                sweep=self._step,
                layer=target,
                op=SERVING_FAULT_OP,
                kind=spec.kind,
                detail=(
                    f"{spec.seconds}s"
                    if spec.kind in ("hang_step", "delay_step")
                    else f"firing {spec.times} time(s)"
                ),
            )
        )

    def _candidates(
        self, kinds: tuple[str, ...], target: str | None = None
    ) -> "list[tuple[int, ServingFaultSpec]]":
        out = []
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in kinds or self._step < spec.sweep:
                continue
            if self._fired.get(index, 0) >= spec.times:
                continue
            if target is not None and self._resolved.get(index) != target:
                continue
            out.append((index, spec))
        return out

    # ------------------------------------------------------------------
    # Probes (scheduler thread)
    # ------------------------------------------------------------------

    def maybe_kernel_error(self, layer: str) -> None:
        """Raise :class:`PaletteKernelError` if one fires for ``layer`` now.

        Installed as the palette executor's ``fault_hook``, so the error
        genuinely originates inside the layer's kernel call during a
        decode forward -- the exact path the circuit breaker guards.
        """
        for index, spec in self._candidates(("kernel_error",), layer):
            self._consume(index, spec, layer)
            raise PaletteKernelError(layer)

    def maybe_corrupt_tiles(self, cache) -> int:
        """Poison one resident tile per armed ``corrupt_tile`` spec.

        Consumes and logs a spec only when a tile of its target layer is
        actually resident to corrupt (``cache.corrupt_one``); otherwise
        the spec stays armed for a later step.  Returns tiles poisoned.
        """
        if cache is None:
            return 0
        poisoned = 0
        for index, spec in self._candidates(("corrupt_tile",)):
            target = self._resolved.get(index)
            if target is None or target == STEP_TARGET:
                continue
            if cache.corrupt_one((target,)):
                self._consume(index, spec, target)
                poisoned += 1
        return poisoned

    def step_sleep(self) -> float:
        """Seconds the current step should nap (``hang_step``/``delay_step``).

        A hang is simply a nap the plan sized past the step watchdog
        deadline, so the supervisor revokes the loop mid-sleep.
        """
        seconds = 0.0
        for index, spec in self._candidates(
            ("hang_step", "delay_step"), STEP_TARGET
        ):
            self._consume(index, spec, STEP_TARGET)
            seconds += spec.seconds
        return seconds

    def maybe_transient(self) -> None:
        """Raise :class:`TransientStepError` if one fires for this step."""
        for index, spec in self._candidates(("transient_step",), STEP_TARGET):
            self._consume(index, spec, STEP_TARGET)
            raise TransientStepError()


__all__ = [
    "LAYER_FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "SERVING_FAULT_OP",
    "STEP_TARGET",
    "CorruptTileError",
    "PaletteKernelError",
    "ServingFaultInjector",
    "ServingFaultPlan",
    "ServingFaultSpec",
    "TransientStepError",
]
