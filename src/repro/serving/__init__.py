"""Palette-aware inference serving under concurrent traffic.

The deployment half of eDKM: once a model's weights are clustered, this
package serves it -- an admission-controlled request queue
(:mod:`repro.serving.queue`), continuous batching over length-bucketed
decode steps (:mod:`repro.serving.batcher`), palette-aware matmul with a
hot dequantized-tile LRU (:mod:`repro.serving.palette`), and per-request
latency/throughput/byte accounting (:mod:`repro.serving.stats`), all
fronted by :class:`~repro.serving.server.PaletteServer` (or the
top-level ``repro.serve()`` convenience).
"""

from repro.serving.batcher import ContinuousBatcher, SequenceState
from repro.serving.config import (
    EVAL_PATHS,
    ServingConfig,
    get_default_serving_config,
)
from repro.serving.palette import (
    PaletteLayout,
    PaletteLinearExec,
    TileCache,
    TileCacheStats,
    palette_matmul,
)
from repro.serving.queue import (
    AdmissionError,
    DeadlineExceeded,
    RequestQueue,
    ServerClosed,
    ServerRequest,
    ServingError,
)
from repro.serving.server import PaletteServer
from repro.serving.stats import (
    RequestRecord,
    ServerStats,
    StatsReport,
    percentile,
    request_tag,
)

__all__ = [
    "EVAL_PATHS",
    "AdmissionError",
    "ContinuousBatcher",
    "DeadlineExceeded",
    "PaletteLayout",
    "PaletteLinearExec",
    "PaletteServer",
    "RequestQueue",
    "RequestRecord",
    "SequenceState",
    "ServerClosed",
    "ServerRequest",
    "ServerStats",
    "ServingConfig",
    "ServingError",
    "StatsReport",
    "TileCache",
    "TileCacheStats",
    "get_default_serving_config",
    "palette_matmul",
    "percentile",
    "request_tag",
]
