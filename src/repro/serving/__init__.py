"""Palette-aware inference serving under concurrent traffic.

The deployment half of eDKM: once a model's weights are clustered, this
package serves it -- an admission-controlled request queue
(:mod:`repro.serving.queue`), continuous batching over length-bucketed
decode steps (:mod:`repro.serving.batcher`), palette-aware matmul with a
hot dequantized-tile LRU (:mod:`repro.serving.palette`), and per-request
latency/throughput/byte accounting (:mod:`repro.serving.stats`), all
fronted by :class:`~repro.serving.server.PaletteServer` (or the
top-level ``repro.serve()`` convenience).

The server is chaos-hardened (:mod:`repro.serving.faults`): a supervised
scheduler with a per-step crash boundary and watchdog, a per-layer
palette->dense circuit breaker (:mod:`repro.serving.breaker`), draining
shutdown, and a deterministic fault injector armed via
``ServingConfig.fault_plan``.
"""

from repro.serving.batcher import ContinuousBatcher, SequenceState
from repro.serving.breaker import BreakerBoard, BreakerSnapshot
from repro.serving.config import (
    EVAL_PATHS,
    ServingConfig,
    get_default_serving_config,
)
from repro.serving.faults import (
    LAYER_FAULT_KINDS,
    SERVING_FAULT_KINDS,
    CorruptTileError,
    PaletteKernelError,
    ServingFaultInjector,
    ServingFaultPlan,
    ServingFaultSpec,
    TransientStepError,
)
from repro.serving.palette import (
    PaletteLayout,
    PaletteLinearExec,
    TileCache,
    TileCacheStats,
    palette_matmul,
)
from repro.serving.queue import (
    AdmissionError,
    DeadlineExceeded,
    RequestQueue,
    ServerClosed,
    ServerRequest,
    ServingError,
    StepFailed,
)
from repro.serving.server import LoopSupervisor, PaletteServer, ServerHealth
from repro.serving.stats import (
    DEGRADE_TAG,
    RequestRecord,
    ServerStats,
    StatsReport,
    percentile,
    request_tag,
)

__all__ = [
    "DEGRADE_TAG",
    "EVAL_PATHS",
    "LAYER_FAULT_KINDS",
    "SERVING_FAULT_KINDS",
    "AdmissionError",
    "BreakerBoard",
    "BreakerSnapshot",
    "ContinuousBatcher",
    "CorruptTileError",
    "DeadlineExceeded",
    "LoopSupervisor",
    "PaletteKernelError",
    "PaletteLayout",
    "PaletteLinearExec",
    "PaletteServer",
    "RequestQueue",
    "RequestRecord",
    "SequenceState",
    "ServerClosed",
    "ServerHealth",
    "ServerRequest",
    "ServerStats",
    "ServingConfig",
    "ServingError",
    "ServingFaultInjector",
    "ServingFaultPlan",
    "ServingFaultSpec",
    "StatsReport",
    "StepFailed",
    "TileCache",
    "TileCacheStats",
    "TransientStepError",
    "get_default_serving_config",
    "palette_matmul",
    "percentile",
    "request_tag",
]
