"""Per-layer palette→dense circuit breaker for the serving engine.

When a layer's palette kernel keeps raising (:class:`PaletteKernelError`)
or its tile cache keeps failing digest checks
(:class:`~repro.serving.faults.CorruptTileError`), serving that layer
through the palette path is a liability -- but the *dense* eval path is
bit-identical by construction (both paths decode the same hard
centroid/assignment products; see ``docs/serving.md``), so degrading is
free in output terms.  :class:`BreakerBoard` tracks one breaker per
palette layer:

``closed``
    Healthy: the layer serves through the palette path.  Consecutive
    failures are counted; at ``threshold`` the breaker trips.
``open``
    Tripped: the server flips the layer to dense
    (``disable_palette_eval``) and starts a probation countdown.  Each
    fault-free step decrements it; a failure elsewhere does not reset
    other layers' countdowns.
``half_open``
    Probation served: the server re-enables the palette path.  One clean
    step closes the breaker; a failure while half-open re-trips it with
    a doubled probation (capped at 8x the configured base) so a flapping
    layer spends progressively longer dense.

The board is the cross-thread source of truth for breaker state (the
scheduler mutates it, ``health()`` snapshots it), so it owns its lock;
``_``-prefixed helpers expect the caller to hold it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Probation doubling stops at this multiple of the configured base.
MAX_PROBATION_FACTOR = 8


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of one layer's breaker (for ``health()``)."""

    layer: str
    state: str
    consecutive_failures: int
    probation_remaining: int
    trips: int
    repromotions: int

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for health snapshots and bench artifacts."""
        return {
            "layer": self.layer,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probation_remaining": self.probation_remaining,
            "trips": self.trips,
            "repromotions": self.repromotions,
        }


class _Breaker:
    """Mutable per-layer record; all access via the board's lock."""

    __slots__ = (
        "state",
        "consecutive_failures",
        "probation_remaining",
        "probation_steps",
        "trips",
        "repromotions",
    )

    def __init__(self, probation_steps: int) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.probation_remaining = 0
        self.probation_steps = probation_steps
        self.trips = 0
        self.repromotions = 0


class BreakerBoard:
    """Per-layer failure accounting and palette/dense routing decisions.

    The board never touches the model -- it only decides.  The server
    reacts to the returned actions: ``"trip"``/``"retrip"`` mean *flip
    this layer to dense now*, and layers returned from
    :meth:`note_clean_step` mean *re-enable the palette path for these*.
    """

    def __init__(self, threshold: int, probation_steps: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if probation_steps < 1:
            raise ValueError(
                f"probation_steps must be >= 1, got {probation_steps}"
            )
        self.threshold = threshold
        self.base_probation_steps = probation_steps
        self._lock = threading.Lock()
        self._breakers: dict[str, _Breaker] = {}

    # ------------------------------------------------------------------
    # Scheduler surface
    # ------------------------------------------------------------------

    def note_failure(self, layer: str) -> str:
        """Record a palette-path failure on ``layer``.

        Returns the action the server must take:

        - ``"count"``  -- below threshold; keep serving palette.
        - ``"trip"``   -- threshold reached while closed; flip to dense.
        - ``"retrip"`` -- failed while half-open; flip back to dense with
          a doubled probation.
        - ``"open"``   -- already dense; nothing to flip (late failure
          from a step that straddled the trip).
        """
        with self._lock:
            breaker = self._get(layer)
            if breaker.state == OPEN:
                return "open"
            if breaker.state == HALF_OPEN:
                breaker.state = OPEN
                breaker.trips += 1
                breaker.consecutive_failures = 0
                breaker.probation_steps = min(
                    breaker.probation_steps * 2,
                    self.base_probation_steps * MAX_PROBATION_FACTOR,
                )
                breaker.probation_remaining = breaker.probation_steps
                return "retrip"
            breaker.consecutive_failures += 1
            if breaker.consecutive_failures < self.threshold:
                return "count"
            breaker.state = OPEN
            breaker.trips += 1
            breaker.consecutive_failures = 0
            breaker.probation_remaining = breaker.probation_steps
            return "trip"

    def note_clean_step(self) -> list[str]:
        """Record one fault-free decode step.

        Decrements every open breaker's probation countdown and closes
        every half-open breaker (its probe step succeeded).  Returns the
        layers whose probation just expired -- the server must re-enable
        the palette path for them (they move to ``half_open`` until the
        next clean step confirms).
        """
        promoted: list[str] = []
        with self._lock:
            for layer, breaker in self._breakers.items():
                if breaker.state == HALF_OPEN:
                    breaker.state = CLOSED
                    breaker.repromotions += 1
                    breaker.probation_steps = self.base_probation_steps
                elif breaker.state == OPEN:
                    breaker.probation_remaining -= 1
                    if breaker.probation_remaining <= 0:
                        breaker.state = HALF_OPEN
                        promoted.append(layer)
                elif breaker.consecutive_failures:
                    breaker.consecutive_failures = 0
        return promoted

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def states(self) -> dict[str, BreakerSnapshot]:
        """Snapshot every tracked layer's breaker."""
        with self._lock:
            return {
                layer: BreakerSnapshot(
                    layer=layer,
                    state=breaker.state,
                    consecutive_failures=breaker.consecutive_failures,
                    probation_remaining=max(0, breaker.probation_remaining),
                    trips=breaker.trips,
                    repromotions=breaker.repromotions,
                )
                for layer, breaker in self._breakers.items()
            }

    def open_layers(self) -> list[str]:
        """Layers currently serving dense (tripped, probation running)."""
        with self._lock:
            return [
                layer
                for layer, breaker in self._breakers.items()
                if breaker.state == OPEN
            ]

    def total_trips(self) -> int:
        """Palette->dense trips across all layers since construction."""
        with self._lock:
            return sum(b.trips for b in self._breakers.values())

    def total_repromotions(self) -> int:
        """Breakers closed again (probation + probe step served clean)."""
        with self._lock:
            return sum(b.repromotions for b in self._breakers.values())

    # ------------------------------------------------------------------
    # Internals (caller holds the lock)
    # ------------------------------------------------------------------

    def _get(self, layer: str) -> _Breaker:
        breaker = self._breakers.get(layer)
        if breaker is None:
            breaker = _Breaker(self.base_probation_steps)
            self._breakers[layer] = breaker
        return breaker
